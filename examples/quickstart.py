#!/usr/bin/env python
"""Quickstart: train OmniMatch on one cross-domain scenario and evaluate
cold-start users.

Runs in about a minute on a laptop CPU. Walks the full pipeline:

1. generate an Amazon-style synthetic review corpus (books -> movies);
2. apply the paper's cold-start protocol (80 % train / 20 % cold users);
3. train OmniMatch (CNN extractors + SCL + domain adversarial training);
4. predict the hidden target-domain ratings of the cold-start test users;
5. compare against the global-mean and item-mean reference baselines.
"""

import numpy as np

from repro.core import ColdStartPredictor, OmniMatchConfig, OmniMatchTrainer
from repro.data import cold_start_split, generate_scenario
from repro.eval import make_predictor, mae, rmse


def main() -> None:
    print("1) generating the corpus ...")
    dataset = generate_scenario(
        "amazon", "books", "movies",
        num_users=260, num_items_per_domain=110, reviews_per_user_mean=7.0,
    )
    card = dataset.summary()
    print(f"   {card['scenario']}: {card['overlap_users']} overlapping users, "
          f"{card['source_reviews']} source / {card['target_reviews']} target reviews")

    print("2) cold-start split (paper §5.2) ...")
    split = cold_start_split(dataset, seed=0)
    print(f"   train={len(split.train_users)} valid={len(split.valid_users)} "
          f"test={len(split.test_users)} users")

    print("3) training OmniMatch ...")
    config = OmniMatchConfig(epochs=15, patience=4)
    result = OmniMatchTrainer(dataset, split, config).fit()
    for stats in result.history:
        marker = f" valid_rmse={stats.valid_rmse:.3f}" if stats.valid_rmse else ""
        print(f"   epoch {stats.epoch:>2d}: rating={stats.rating:.3f} "
              f"scl={stats.scl:.3f} domain={stats.domain:.3f}{marker}")

    print("4) predicting cold-start test users ...")
    predictor = ColdStartPredictor(result)
    test = split.eval_interactions(dataset, "test")
    predicted = predictor.predict_interactions(test)
    actual = np.array([r.rating for r in test])

    print("5) results (cold-start test set):")
    print(f"   OmniMatch    RMSE={rmse(actual, predicted):.3f} MAE={mae(actual, predicted):.3f}")
    for name in ("item-mean", "global-mean"):
        fitted = make_predictor(name, dataset, split)
        preds = fitted.predict_interactions(test)
        print(f"   {name:<12s} RMSE={rmse(actual, preds):.3f} MAE={mae(actual, preds):.3f}")


if __name__ == "__main__":
    main()
