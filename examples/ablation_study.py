#!/usr/bin/env python
"""Ablation study on OmniMatch's modules (a compact Table 5).

Trains the full model and three ablated variants — without the Supervised
Contrastive module, without Domain Adversarial training, and without the
Auxiliary Reviews Generation Module — in the paper's data-scarce setting
(20 % of the training users) and reports cold-start RMSE/MAE for each.
"""

import numpy as np

from repro.core import ColdStartPredictor, OmniMatchConfig, OmniMatchTrainer
from repro.data import cold_start_split, generate_scenario
from repro.eval import mae, rmse

VARIANTS = {
    "OmniMatch (full)": {},
    "w/o SCL": dict(use_scl=False),
    "w/o DA": dict(use_domain_adversarial=False),
    "w/o Aux Reviews": dict(use_auxiliary_reviews=False),
}


def main() -> None:
    dataset = generate_scenario(
        "amazon", "books", "movies",
        num_users=300, num_items_per_domain=130, reviews_per_user_mean=7.0,
    )
    # paper §5.7: ablations run with 20 % of the training users
    split = cold_start_split(dataset, seed=0, train_fraction=0.2)
    test = split.eval_interactions(dataset, "test")
    actual = np.array([r.rating for r in test])
    print(f"{dataset.scenario}, {len(split.train_users)} training users, "
          f"{len(test)} held-out cold interactions\n")

    print(f"{'variant':<20s} {'RMSE':>8s} {'MAE':>8s}")
    for name, flags in VARIANTS.items():
        config = OmniMatchConfig(epochs=15, patience=4, **flags)
        result = OmniMatchTrainer(dataset, split, config).fit()
        predicted = ColdStartPredictor(result).predict_interactions(test)
        print(f"{name:<20s} {rmse(actual, predicted):>8.3f} {mae(actual, predicted):>8.3f}")


if __name__ == "__main__":
    main()
