#!/usr/bin/env python
"""Case study: trace the Auxiliary Reviews Generation Module (paper §5.10).

The paper walks through cold-start user AKOHBSPLTYBYZ in the Books -> Movies
scenario, showing for each source-domain purchase which like-minded user was
chosen and which of their target-domain reviews was borrowed. This example
reproduces that trace on the synthetic corpus: pick a cold-start user, print
each Algorithm 1 step, and compare the assembled auxiliary document against
the user's (hidden) ground-truth target reviews.
"""

from repro.core import AuxiliaryReviewGenerator
from repro.data import cold_start_split, generate_scenario
from repro.text import REVIEW_SEPARATOR


def main() -> None:
    dataset = generate_scenario(
        "amazon", "books", "movies",
        num_users=260, num_items_per_domain=110, reviews_per_user_mean=7.0,
    )
    split = cold_start_split(dataset, seed=0)
    generator = AuxiliaryReviewGenerator(
        dataset, allowed_users=split.train_users, seed=0
    )

    # pick the test user with the richest source history, like the paper's
    # AKOHBSPLTYBYZ example
    user = max(
        split.test_users, key=lambda u: len(dataset.source.reviews_of_user(u))
    )
    print(f"Cold-start user: {user}  (scenario {dataset.scenario})")
    print(f"Source-domain purchases: {len(dataset.source.reviews_of_user(user))}\n")

    trace = generator.explain(user)
    for index, selection in enumerate(trace, start=1):
        print(f"({index}) item in source domain: {selection.source_item}")
        print(f"    cold-start user's rating and review: "
              f"{selection.source_rating:.1f}, \"{selection.source_review}\"")
        if selection.succeeded:
            print(f"    like-minded user: {selection.like_minded_user} "
                  f"(both ratings: {selection.source_rating:.1f})")
            print(f"    auxiliary review borrowed from the target domain: "
                  f"\"{selection.auxiliary_review}\"")
        else:
            print("    no eligible like-minded user -> record skipped")
        print()

    auxiliary_document = f" {REVIEW_SEPARATOR} ".join(generator.generate(user))
    print("Final auxiliary document for the cold-start user:")
    print(f"  \"{auxiliary_document}\"\n")

    truth = [r.summary for r in dataset.target.reviews_of_user(user)]
    print("Ground-truth (hidden) target-domain reviews of the same user:")
    print(f"  \"{f' {REVIEW_SEPARATOR} '.join(truth)}\"")


if __name__ == "__main__":
    main()
