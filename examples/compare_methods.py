#!/usr/bin/env python
"""Compare OmniMatch against all six paper baselines on one scenario.

Reproduces one row-group of Table 2 (Amazon, Books -> Movies) end to end:
every method is trained under the same cold-start visibility rules and
scored on the same held-out users, and the paper's Δ% (improvement over the
best baseline) is reported. Pass a different pair of domains on the command
line, e.g. ``python examples/compare_methods.py movies music``.
"""

import sys

import numpy as np

from repro.data import cold_start_split, generate_scenario
from repro.eval import (
    PAPER_METHODS,
    format_comparison,
    make_predictor,
    paired_bootstrap,
    run_scenario_methods,
)


def main() -> None:
    source = sys.argv[1] if len(sys.argv) > 2 else "books"
    target = sys.argv[2] if len(sys.argv) > 2 else "movies"
    print(f"Amazon {source} -> {target} | methods: {', '.join(PAPER_METHODS)}")
    print("(each method: fit on visible data, score cold-start test users)\n")

    world = dict(num_users=300, num_items_per_domain=130, reviews_per_user_mean=7.0)
    results = run_scenario_methods(
        list(PAPER_METHODS), "amazon", source, target, trials=1, **world
    )
    print(format_comparison(results))

    # Is the win over the strongest baseline statistically solid? Paired
    # bootstrap over the same held-out interactions answers that.
    best_baseline = min(
        (r for r in results if r.method != "OmniMatch"), key=lambda r: r.rmse
    ).method
    print(f"\npaired bootstrap: OmniMatch vs {best_baseline} ...")
    dataset = generate_scenario("amazon", source, target, **world)
    split = cold_start_split(dataset, seed=0)
    test = split.eval_interactions(dataset, "test")
    actual = np.array([r.rating for r in test])
    ours = make_predictor("OmniMatch", dataset, split).predict_interactions(test)
    theirs = make_predictor(best_baseline, dataset, split).predict_interactions(test)
    outcome = paired_bootstrap(actual, ours, theirs, num_samples=1000)
    print(f"  win rate {outcome.win_rate_a:.1%}, "
          f"ΔRMSE 95% CI [{outcome.delta_ci_low:+.3f}, {outcome.delta_ci_high:+.3f}] "
          f"({'significant' if outcome.significant_at_95 else 'not significant'} at 95%)")


if __name__ == "__main__":
    main()
