#!/usr/bin/env python
"""Run telemetry end to end: train with a sink, then inspect ``run.jsonl``.

A tiny seeded training run streams structured events — per-batch loss and
gradient norm, per-epoch throughput, checkpoint writes, health events, and
the closing span/metric summaries — to an append-only ``run.jsonl``. The
script then reads the file back, schema-validates every event, prints the
rendered report (the same output as ``python -m repro report``), and shows
how to slice the raw event stream for custom analysis.

Pass ``--out DIR`` to keep the telemetry directory around (the CI
observability job uses this to archive a trace as a build artifact);
otherwise a temp directory is used and cleaned up.
"""

import argparse
import tempfile
from pathlib import Path

from repro.core import OmniMatchConfig, OmniMatchTrainer
from repro.data import cold_start_split, generate_scenario
from repro.obs import (
    TelemetrySink,
    read_events,
    render_report,
    validate_run_file,
)

EPOCHS = 3


def run_traced_training(out_dir: Path) -> Path:
    """Train a toy model with telemetry streaming to ``out_dir``."""
    dataset = generate_scenario(
        "amazon", "books", "movies",
        num_users=60, num_items_per_domain=30, reviews_per_user_mean=4.0,
    )
    split = cold_start_split(dataset, seed=1)
    config = OmniMatchConfig(
        embed_dim=12, num_filters=3, kernel_sizes=(2, 3), invariant_dim=8,
        specific_dim=8, projection_dim=6, doc_len=16, vocab_size=200,
        epochs=EPOCHS, early_stopping=False, seed=7,
    )
    with TelemetrySink(out_dir, run_id="inspect-run-demo") as sink:
        trainer = OmniMatchTrainer(dataset, split, config, telemetry=sink)
        trainer.fit(EPOCHS, validate_every=1,
                    checkpoint_every=1, checkpoint_dir=out_dir / "ckpt")
        return sink.path


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="keep the telemetry directory here")
    args = parser.parse_args()

    scratch = None
    if args.out is None:
        scratch = tempfile.TemporaryDirectory()
        out_dir = Path(scratch.name)
    else:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)

    try:
        path = run_traced_training(out_dir)

        print("== schema validation ==")
        stats = validate_run_file(path)
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(stats["kinds"].items()))
        print(f"  {stats['events']} events, {stats['runs']} run(s): {kinds}")

        print("\n== rendered report (same as `python -m repro report`) ==")
        events = read_events(path)
        print(render_report(events))

        print("== custom slicing: loss trajectory from raw batch events ==")
        losses = [e["loss"] for e in events if e["kind"] == "batch"]
        print(f"  first batch loss {losses[0]:.4f} -> last {losses[-1]:.4f} "
              f"over {len(losses)} batches")
        if args.out is not None:
            print(f"\ntelemetry kept at {path}")
    finally:
        if scratch is not None:
            scratch.cleanup()


if __name__ == "__main__":
    main()
