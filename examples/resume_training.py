#!/usr/bin/env python
"""Fault-tolerant training: crash-safe checkpoints, resume, and recovery.

Three short acts on a toy scenario:

1. a checkpointed run is killed mid-epoch (a :class:`SimulatedCrash`
   injected by the fault harness stands in for SIGKILL);
2. a fresh trainer resumes from the newest valid checkpoint and finishes —
   and its final parameters are *bit-identical* to a never-interrupted run;
3. a NaN gradient is injected mid-training and the numerical-health guards
   roll back, back off the learning rate, and recover — every action
   visible in the structured run-health log.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import OmniMatchConfig, OmniMatchTrainer, find_latest_checkpoint
from repro.data import cold_start_split, generate_scenario
from repro.faults import CrashInjector, NonFiniteGradientInjector, SimulatedCrash

EPOCHS = 4


def make_trainer(dataset, split):
    config = OmniMatchConfig(
        embed_dim=12, num_filters=3, kernel_sizes=(2, 3), invariant_dim=8,
        specific_dim=8, projection_dim=6, doc_len=16, vocab_size=200,
        epochs=EPOCHS, early_stopping=False, seed=7,
    )
    return OmniMatchTrainer(dataset, split, config)


def main() -> None:
    dataset = generate_scenario(
        "amazon", "books", "movies",
        num_users=60, num_items_per_domain=30, reviews_per_user_mean=4.0,
    )
    split = cold_start_split(dataset, seed=1)

    print("== act 1: the uninterrupted run (our ground truth) ==")
    baseline = make_trainer(dataset, split).fit(EPOCHS)
    for stat in baseline.history:
        print(f"  epoch {stat.epoch}: loss {stat.total:.4f}")

    with tempfile.TemporaryDirectory() as scratch:
        run_dir = Path(scratch) / "run"
        print("\n== act 2: kill the run at epoch 3, then resume ==")
        doomed = make_trainer(dataset, split)
        try:
            doomed.fit(
                EPOCHS, checkpoint_every=1, checkpoint_dir=run_dir,
                fault_injector=CrashInjector(epoch=3, batch=1),
            )
        except SimulatedCrash as crash:
            print(f"  process died: {crash}")
        newest = find_latest_checkpoint(run_dir)
        print(f"  newest valid checkpoint: {newest.name}")
        resumed = make_trainer(dataset, split).fit(EPOCHS, resume_from=run_dir)
        identical = all(
            np.array_equal(a, b)
            for a, b in zip(
                baseline.model.state_dict().values(),
                resumed.model.state_dict().values(),
            )
        )
        print(f"  resumed run bit-identical to uninterrupted: {identical}")

    print("\n== act 3: survive a NaN gradient ==")
    recovered = make_trainer(dataset, split).fit(
        EPOCHS, fault_injector=NonFiniteGradientInjector(epoch=2, batch=0)
    )
    for event in recovered.health:
        where = f", batch {event.batch}" if event.batch is not None else ""
        extra = f" ({event.detail})" if event.detail else ""
        print(f"  epoch {event.epoch}{where}: {event.kind}{extra}")
    print(f"  completed {len(recovered.history)}/{EPOCHS} epochs after recovery")


if __name__ == "__main__":
    main()
