#!/usr/bin/env python
"""Real-data workflow: run OmniMatch from JSON-lines review dumps.

The paper evaluates on the public Amazon Review dump (JSON-lines with
``reviewerID`` / ``asin`` / ``overall`` / ``summary`` / ``reviewText``).
This example demonstrates the exact workflow for the real files without
needing them: it exports a synthetic scenario to that format, then runs the
ingest -> stats -> split -> train -> evaluate pipeline from the files alone.
Point ``SOURCE_PATH`` / ``TARGET_PATH`` at real dump files to reproduce the
paper's setting directly.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import ColdStartPredictor, OmniMatchConfig, OmniMatchTrainer
from repro.data import (
    cold_start_split,
    format_stats,
    generate_scenario,
    load_cross_domain_jsonl,
    save_domain_jsonl,
)
from repro.eval import mae, rmse


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="omnimatch-"))
    source_path = workdir / "books.jsonl"
    target_path = workdir / "movies.jsonl"

    print(f"1) exporting a synthetic scenario to {workdir} ...")
    synthetic = generate_scenario(
        "amazon", "books", "movies",
        num_users=240, num_items_per_domain=100, reviews_per_user_mean=6.0,
    )
    save_domain_jsonl(synthetic.source, source_path)
    save_domain_jsonl(synthetic.target, target_path)

    print("2) ingesting from JSON-lines (the real-data entry point) ...")
    dataset = load_cross_domain_jsonl(
        source_path, target_path, "books", "movies"
    )
    print(format_stats(dataset))

    print("\n3) protocol + training ...")
    split = cold_start_split(dataset, seed=0)
    config = OmniMatchConfig(epochs=12, patience=3)
    result = OmniMatchTrainer(dataset, split, config).fit()

    print("4) cold-start evaluation ...")
    predictor = ColdStartPredictor(result)
    test = split.eval_interactions(dataset, "test")
    predicted = predictor.predict_interactions(test)
    actual = np.array([r.rating for r in test])
    print(f"   RMSE={rmse(actual, predicted):.3f} MAE={mae(actual, predicted):.3f} "
          f"over {len(test)} hidden interactions")


if __name__ == "__main__":
    main()
