"""ASHA tuner benchmark: wall-clock vs exhaustive grid at matched quality.

Runs the same 9-trial search space through the exhaustive grid scheduler
(every trial trains the full epoch budget) and through successive halving
(losers killed at rung barriers, winners resuming from checkpoints), and
reports wall-clock, epochs trained, and the best validation RMSE of each.

Hard gates (full scale):

* **quality** — ASHA's best config scores within 1% of the exhaustive
  grid's best validation RMSE;
* **speed** — ASHA finishes in at most half the grid's wall-clock
  (the epoch census shows where the saving comes from);
* **no recomputation** — promoted trials resume: zero duplicated
  (trial, epoch) pairs in the telemetry stream, and exactly one ``resume``
  health event per promotion;
* **determinism** — two ASHA runs of the same (spec, seed), and an inline
  (workerless) run, produce **byte-identical** ``best_config.json``.

Results land in ``BENCH_tune.json``. ``REPRO_BENCH_FAST=1`` shrinks the
world and the budget for a harness smoke run (gates still asserted except
the wall-clock factor, which is noise at toy scale).
"""

from __future__ import annotations

from repro.core import OmniMatchConfig
from repro.data import generate_scenario
from repro.obs import read_events
from repro.perf import write_report
from repro.tune import run_tuning, trained_epoch_census

from conftest import FAST, SHAPE_ASSERTS, run_once

WORLD = (
    dict(num_users=120, num_items_per_domain=60, reviews_per_user_mean=5.0)
    if FAST
    else dict(num_users=220, num_items_per_domain=100, reviews_per_user_mean=6.0)
)

#: 3 x 3 grid — 9 trials, all enumerable by both schedulers.
SPACE = {
    "learning_rate": {"grid": [0.5, 1.0, 1.5]},
    "alpha": {"grid": [0.1, 0.2, 0.3]},
}
#: Rung 0 ranks at 3 epochs: the probe of this world's learning curves
#: shows rankings invert below that (low learning rates lead early, then
#: lose), stabilizing from epoch 3 — ASHA's core assumption needs the
#: first rung budget to sit past the crossing point.
MIN_EPOCHS = 1 if FAST else 3
MAX_EPOCHS = 4 if FAST else 12
ETA = 5
WORKERS = 2
SEED = 0

QUALITY_TOLERANCE = 1.01  # ASHA best RMSE within 1% of the grid best
SPEEDUP_GATE = 2.0        # ASHA at least 2x faster wall-clock


def bench_model() -> OmniMatchConfig:
    return OmniMatchConfig(
        embed_dim=24, num_filters=8, invariant_dim=16, specific_dim=16,
        projection_dim=12, doc_len=32, vocab_size=1000, batch_size=64,
    )


def _tune(dataset, out_dir, scheduler, workers):
    return run_tuning(
        SPACE, base_config=bench_model(), dataset=dataset, seed=SEED,
        scheduler=scheduler, min_epochs=MIN_EPOCHS, max_epochs=MAX_EPOCHS,
        eta=ETA, split_seed=SEED, workers=workers, out_dir=out_dir,
    )


def _arm_stats(result):
    total, duplicates = trained_epoch_census(result.telemetry_dir)
    return {
        "best_trial": result.best_trial,
        "best_rmse": result.best_rmse,
        "best_params": result.best_params,
        "wall_seconds": result.wall_seconds,
        "epochs_trained": total,
        "duplicated_epochs": duplicates,
        "rungs": [
            {"rung": d.rung, "budget": d.budget,
             "alive": len(d.ranked), "killed": len(d.killed)}
            for d in result.rungs
        ],
    }


def _run(tmp_path):
    dataset = generate_scenario("amazon", "books", "movies", seed=11, **WORLD)
    asha = _tune(dataset, tmp_path / "asha", "asha", WORKERS)
    grid = _tune(dataset, tmp_path / "grid", "grid", WORKERS)
    asha_repeat = _tune(dataset, tmp_path / "asha-repeat", "asha", WORKERS)
    asha_inline = _tune(dataset, tmp_path / "asha-inline", "asha", 0)
    return asha, grid, asha_repeat, asha_inline


def test_asha_vs_exhaustive_grid(benchmark, tmp_path):
    asha, grid, asha_repeat, asha_inline = run_once(
        benchmark, lambda: _run(tmp_path)
    )

    asha_stats = _arm_stats(asha)
    grid_stats = _arm_stats(grid)
    speedup = grid.wall_seconds / asha.wall_seconds
    epoch_reduction = grid_stats["epochs_trained"] / asha_stats["epochs_trained"]

    resumes = [
        e for e in read_events(asha.telemetry_dir / "run.jsonl")
        if e["kind"] == "health" and e.get("health_kind") == "resume"
    ]
    promotions = sum(len(d.promoted) for d in asha.rungs)

    print("\n=== ASHA vs exhaustive grid (9 trials, books -> movies) ===")
    print(f"{'arm':<12s} {'wall':>8s} {'epochs':>7s} {'best RMSE':>10s}  best params")
    for name, stats in (("asha", asha_stats), ("grid", grid_stats)):
        print(f"{name:<12s} {stats['wall_seconds']:>7.1f}s "
              f"{stats['epochs_trained']:>7d} {stats['best_rmse']:>10.4f}  "
              f"{stats['best_params']}")
    print(f"speedup {speedup:.2f}x wall-clock, {epoch_reduction:.2f}x fewer "
          f"epochs; {len(resumes)} resumes for {promotions} promotions, "
          f"{asha_stats['duplicated_epochs']} duplicated epochs")

    identical_repeat = (
        asha.artifact_path.read_bytes() == asha_repeat.artifact_path.read_bytes()
    )
    identical_inline = (
        asha.artifact_path.read_bytes() == asha_inline.artifact_path.read_bytes()
    )
    print(f"byte-identical artifacts: repeat={identical_repeat} "
          f"inline={identical_inline}")

    # Scale-independent gates: determinism and resume-no-recompute.
    assert identical_repeat, "same (spec, seed) must be byte-identical"
    assert identical_inline, "inline and pooled runs must be byte-identical"
    assert asha_stats["duplicated_epochs"] == 0, "promoted trials recomputed epochs"
    assert len(resumes) == promotions
    assert asha_stats["epochs_trained"] < grid_stats["epochs_trained"]
    if SHAPE_ASSERTS:
        # The winner trained to the full budget under both schedulers, so
        # its RMSE is bit-identical across arms; ASHA can only lose by
        # promoting the wrong trial — the quality gate bounds that regret.
        # (FAST worlds are below the scale where early-epoch rankings are
        # informative, so both gates apply at full scale only.)
        assert asha.best_rmse <= grid.best_rmse * QUALITY_TOLERANCE, (
            f"ASHA best {asha.best_rmse:.4f} worse than 1% over "
            f"grid best {grid.best_rmse:.4f}"
        )
        assert speedup >= SPEEDUP_GATE, (
            f"ASHA speedup {speedup:.2f}x below the {SPEEDUP_GATE}x gate"
        )

    write_report(
        "BENCH_tune.json",
        {
            "space": SPACE,
            "scheduler": {
                "min_epochs": MIN_EPOCHS, "max_epochs": MAX_EPOCHS, "eta": ETA,
            },
            "workers": WORKERS,
            "fast_mode": FAST,
            "arms": {
                "asha": asha_stats,
                "grid": grid_stats,
            },
            "speedup_wall_clock": speedup,
            "epoch_reduction": epoch_reduction,
            "resume_events": len(resumes),
            "promotions": promotions,
            "artifacts_byte_identical": {
                "repeat": identical_repeat,
                "inline_vs_workers": identical_inline,
            },
            "gates": {
                "quality_tolerance": QUALITY_TOLERANCE,
                "speedup_gate": SPEEDUP_GATE if SHAPE_ASSERTS else None,
            },
        },
    )
