"""Ablations of this reproduction's own design choices (DESIGN.md §6).

Beyond the paper's Table 5, DESIGN.md documents the scale-driven deltas this
reproduction introduced. Each is ablated here on Amazon Books -> Movies:

* pooling: ``max_mean`` (ours) vs ``max`` (paper-literal);
* cold inference: ``dual`` (ours) vs ``blend`` vs ``aux_only`` (paper-literal);
* alignment: ``grl`` (paper) vs ``mmd`` (§4.4 alternative);
* augmentation: with vs without the aux-mix / target-dropout curriculum.

Expected shape: the defaults chosen in ``OmniMatchConfig`` are no worse
than the paper-literal alternatives at this scale (that is *why* they are
the defaults), and the MMD variant is competitive with the GRL, matching
the paper's versatility claim.
"""

from __future__ import annotations

import numpy as np

from repro.data import generate_scenario
from repro.eval import run_experiment

from conftest import SHAPE_ASSERTS, WORLDS, bench_config, run_once

VARIANTS = {
    "default (dual, max_mean, grl, aug)": {},
    "pooling=max (paper)": dict(pooling="max"),
    "cold_inference=blend": dict(cold_inference="blend"),
    "cold_inference=aux_only (paper)": dict(cold_inference="aux_only"),
    "alignment=mmd": dict(alignment_method="mmd"),
    "no augmentation": dict(aux_mix_prob=0.0, target_dropout_prob=0.0),
}


def _run(trials: int):
    dataset = generate_scenario("amazon", "books", "movies", **WORLDS["amazon"])
    table = {}
    for variant, flags in VARIANTS.items():
        result = run_experiment(
            "OmniMatch", "amazon", "books", "movies",
            trials=trials, config=bench_config(**flags), dataset=dataset,
        )
        table[variant] = (result.rmse, result.mae)
    return table


def test_design_choice_ablations(benchmark, trials):
    table = run_once(benchmark, lambda: _run(trials))

    print("\n=== Reproduction design-choice ablations (books -> movies) ===")
    print(f"{'variant':<38s} {'RMSE':>8s} {'MAE':>8s}")
    for variant, (r, m) in table.items():
        print(f"{variant:<38s} {r:>8.3f} {m:>8.3f}")

    default_rmse = table["default (dual, max_mean, grl, aug)"][0]
    if SHAPE_ASSERTS:
        # the chosen defaults must not be clearly worse than any alternative
        for variant, (r, _) in table.items():
            assert default_rmse <= r + 0.05, variant
        # the MMD alternative stays competitive (paper §4.4 versatility)
        assert table["alignment=mmd"][0] < default_rmse * 1.15
