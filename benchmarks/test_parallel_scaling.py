"""Parallel-scaling benchmark: per-cell serial sweep vs the execution engine.

Three arms run the same method x scenario table (1 trial per cell, same
seeds) and must produce bit-identical metrics:

* serial — the pre-engine harness: one self-contained ``run_experiment``
  per cell, each call regenerating its world and rebuilding its document
  store from scratch;
* inline — ``run_table(workers=0)``: the engine's in-process path, which
  generates each world once and shares split/store work across the cells
  that need it;
* workers=2 / workers=4 — the multiprocess engine: worlds and document
  matrices published once via shared memory, cells fanned out to a
  supervised worker pool, telemetry merged from per-worker shards.

All arms stream telemetry (the engine's shards additionally yield the
per-worker utilization recorded in the report), so the speedup prices in
the observability overhead of a real instrumented run. Results go to
``BENCH_parallel.json``. The correctness half — every arm's RMSE/MAE
bit-identical to serial — is asserted at every scale; the performance gate
(>= 1.7x at 2 workers; on this container's single CPU core the win is
amortization of world generation and store builds, not extra cores — the
report records ``cpu_count`` so multi-core runs are legible) only at full
scale (``SHAPE_ASSERTS``).
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.eval import run_experiment
from repro.eval.protocol import run_table
from repro.obs import TelemetrySink, load_run_events, summarize_run

from conftest import FAST, SCENARIOS, SHAPE_ASSERTS, WORLDS, bench_config, run_once

#: One trial per cell, like the timing sweep of Table 6.
TRIALS = 1
SEED = 0

#: PTUPCDR is excluded: its meta-network fit dominates every other method
#: combined, which would measure one model's training time rather than the
#: harness overhead this benchmark isolates.
BENCH_METHODS = (
    ("item-mean", "CMF", "OmniMatch")
    if FAST
    else ("NGCF", "LIGHTGCN", "CMF", "EMCDR", "HeroGraph", "DeepCoNN",
          "item-mean", "OmniMatch")
)
BENCH_SCENARIOS = SCENARIOS[:2] if FAST else SCENARIOS

#: Short OmniMatch budget: the benchmark measures harness scaling, not
#: model quality, so two epochs per cell keep the sweep in minutes.
CONFIG = bench_config(epochs=2, patience=1)


def _cell_key(result):
    return (result.method, result.scenario, result.rmse, result.mae,
            result.rmse_per_trial, result.mae_per_trial)


def _serial_sweep() -> dict:
    results = []
    with tempfile.TemporaryDirectory() as sink_dir:
        sink = TelemetrySink(sink_dir, run_id="serial")
        start = time.perf_counter()
        for source, target in BENCH_SCENARIOS:
            for method in BENCH_METHODS:
                results.append(run_experiment(
                    method, "amazon", source, target, trials=TRIALS,
                    seed=SEED, config=CONFIG, telemetry=sink,
                    **WORLDS["amazon"],
                ))
        seconds = time.perf_counter() - start
        sink.close()
    return {"results": results, "seconds": seconds}


def _engine_sweep(workers: int) -> dict:
    with tempfile.TemporaryDirectory() as sink_dir:
        start = time.perf_counter()
        results = run_table(
            BENCH_METHODS, "amazon", scenarios=BENCH_SCENARIOS, trials=TRIALS,
            seed=SEED, config=CONFIG, workers=workers, telemetry_dir=sink_dir,
            **WORLDS["amazon"],
        )
        seconds = time.perf_counter() - start
        summary = summarize_run(load_run_events(sink_dir))
    arm = {"results": results, "seconds": seconds}
    if summary["workers"]:
        arm["workers"] = {
            str(worker): stats for worker, stats in summary["workers"].items()
        }
    return arm


def _run_suite() -> dict:
    cells = len(BENCH_METHODS) * len(BENCH_SCENARIOS)
    arms = {"serial": _serial_sweep(), "inline": _engine_sweep(0)}
    for workers in (2, 4):
        arms[f"workers{workers}"] = _engine_sweep(workers)

    serial_seconds = arms["serial"]["seconds"]
    report = {
        "world": "amazon" + (" (FAST)" if FAST else ""),
        "methods": list(BENCH_METHODS),
        "scenarios": [f"{s} -> {t}" for s, t in BENCH_SCENARIOS],
        "trials": TRIALS,
        "cells": cells,
        "cpu_count": os.cpu_count(),
        "arms": {},
        "speedups": {},
    }
    serial_keys = [_cell_key(r) for r in arms["serial"]["results"]]
    for name, arm in arms.items():
        entry = {
            "seconds": arm["seconds"],
            "seconds_per_cell": arm["seconds"] / cells,
            "identical_to_serial": (
                [_cell_key(r) for r in arm["results"]] == serial_keys
            ),
        }
        if "workers" in arm:
            entry["workers"] = arm["workers"]
        report["arms"][name] = entry
        if name != "serial":
            report["speedups"][name] = serial_seconds / arm["seconds"]
    return report


def test_parallel_scaling(benchmark):
    from repro.perf import write_report

    report = run_once(benchmark, _run_suite)
    write_report("BENCH_parallel.json", report)

    print(f"\n=== Parallel scaling ({report['world']}, "
          f"{report['cells']} cells, cpu_count={report['cpu_count']}) ===")
    header = "arm".ljust(10) + "seconds".rjust(10) + "s/cell".rjust(10)
    header += "speedup".rjust(10) + "identical".rjust(11)
    print(header)
    for name, arm in report["arms"].items():
        speedup = report["speedups"].get(name)
        row = name.ljust(10)
        row += f"{arm['seconds']:>10.2f}{arm['seconds_per_cell']:>10.3f}"
        row += f"{speedup:>9.2f}x" if speedup else " " * 10
        row += f"{str(arm['identical_to_serial']):>11}"
        print(row)

    # Correctness holds at every scale: the engine — inline or fanned out —
    # must reproduce the serial sweep bit for bit.
    for name, arm in report["arms"].items():
        assert arm["identical_to_serial"], f"{name} diverged from serial"
    for name in ("workers2", "workers4"):
        assert report["arms"][name]["workers"], f"{name} recorded no workers"
    if SHAPE_ASSERTS:
        assert report["speedups"]["workers2"] >= 1.7, (
            f"2-worker engine is only {report['speedups']['workers2']:.2f}x "
            "the per-cell serial sweep"
        )
