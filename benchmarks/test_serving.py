"""Serving-daemon benchmark: latency, throughput and chaos robustness.

Drives the multi-worker :class:`RecommendDaemon` with zipf-skewed traffic
twice — once healthy, once with scripted worker kills mid-run — and
reports p50/p99 latency, request throughput, shed/timeout census, and
kill-to-recovery time. The hard gates are the robustness envelope, not
absolute speed (which is hardware-bound): **zero** responses may deviate
from the single-process reference engine, the failed fraction stays
inside the error budget, and the fleet recovers from every kill within
the recovery gate. Results are printed and written to
``BENCH_serving.json``. ``REPRO_BENCH_FAST=1`` shrinks the world for a
harness smoke run.
"""

from __future__ import annotations

from repro.core import OmniMatchTrainer
from repro.data import cold_start_split, generate_scenario, scale_target_catalog
from repro.perf import write_report
from repro.serve import (
    DaemonConfig,
    InferenceEngine,
    LoadTestConfig,
    RecommendDaemon,
    run_loadtest,
)

from conftest import FAST, WORLDS, bench_config, run_once

EPOCHS = 2 if FAST else 3
#: Catalog size after post-training growth (what the fleet shards).
CATALOG = 1_000 if FAST else 20_000
WORKERS = 2 if FAST else 4
REQUESTS = 80 if FAST else 400
CONCURRENCY = 4
K = 10
NLIST = 32 if FAST else 128
NPROBE = 8
#: Robustness gates (the point of this benchmark).
ERROR_BUDGET = 0.1
RECOVERY_GATE_S = 20.0


def _daemon_config(telemetry_dir=None) -> DaemonConfig:
    return DaemonConfig(
        workers=WORKERS,
        max_batch=8,
        max_delay_ms=2.0,
        queue_limit=4 * REQUESTS,  # latency run should never shed
        max_retries=3,
        nlist=NLIST,
        nprobe=NPROBE,
        ann_seed=0,
        telemetry_dir=telemetry_dir,
    )


def _run_suite() -> dict:
    dataset = generate_scenario("amazon", "books", "movies", **WORLDS["amazon"])
    split = cold_start_split(dataset, seed=0)
    config = bench_config(epochs=EPOCHS, early_stopping=False)
    result = OmniMatchTrainer(dataset, split, config).fit()

    grown = scale_target_catalog(
        dataset, CATALOG - len(dataset.target.items), seed=1
    )
    store = result.store.with_dataset(grown)
    reference = InferenceEngine(
        result, store=store, nlist=NLIST, nprobe=NPROBE, ann_seed=0
    )
    users = sorted(split.test_users) + sorted(split.train_users)
    items = sorted(grown.target.items)[:50]

    report: dict = {
        "fast": FAST,
        "catalog": CATALOG,
        "workers": WORKERS,
        "requests": REQUESTS,
    }

    # Phase 1 — healthy traffic: latency and throughput envelope.
    daemon = RecommendDaemon(result, _daemon_config(), store=store)
    daemon.start()
    assert daemon.wait_ready(timeout=120)
    try:
        healthy = run_loadtest(
            daemon,
            users,
            items,
            reference=reference,
            config=LoadTestConfig(
                requests=REQUESTS, concurrency=CONCURRENCY, k=K, seed=5
            ),
        )
    finally:
        daemon.stop()
    report["healthy"] = healthy.summary()

    # Phase 2 — same traffic while workers are killed mid-run.
    daemon = RecommendDaemon(result, _daemon_config(), store=store)
    daemon.start()
    assert daemon.wait_ready(timeout=120)
    kill_at = {REQUESTS // 4: 0, REQUESTS // 2: WORKERS - 1}
    try:
        chaos = run_loadtest(
            daemon,
            users,
            items,
            reference=reference,
            config=LoadTestConfig(
                requests=REQUESTS, concurrency=CONCURRENCY, k=K, seed=6
            ),
            kill_at=kill_at,
        )
        chaos_stats = daemon.stats()
    finally:
        daemon.stop()
    report["chaos"] = chaos.summary()
    report["chaos"]["deaths"] = chaos_stats["deaths"]
    report["chaos"]["retries"] = chaos_stats["retries"]
    report["mismatches"] = healthy.mismatches + chaos.mismatches
    return report


def test_serving_daemon(benchmark):
    report = run_once(benchmark, _run_suite)

    print()
    print(
        f"serving daemon — catalog {report['catalog']}, "
        f"{report['workers']} workers, {report['requests']} requests/phase"
    )
    for phase in ("healthy", "chaos"):
        s = report[phase]
        print(
            f"  {phase:8s}  p50 {s['latency_p50_ms']:8.2f} ms   "
            f"p99 {s['latency_p99_ms']:8.2f} ms   "
            f"{s['requests_per_sec']:7.1f} req/s   "
            f"ok {s['ok']}/{s['sent']}  shed {s['shed']}  "
            f"timeouts {s['timeouts']}  errors {s['errors']}"
        )
    print(
        f"  chaos: deaths {report['chaos']['deaths']}  "
        f"retries {report['chaos']['retries']}  "
        f"recovery max {report['chaos']['recovery_max_s']:.2f}s  "
        f"mismatches {len(report['mismatches'])}"
    )

    write_report("BENCH_serving.json", report)

    # Robustness gates hold at every scale, FAST included: correctness and
    # recovery are not allowed to be hardware-dependent.
    assert report["mismatches"] == []
    assert report["healthy"]["failed_fraction"] == 0.0
    assert report["chaos"]["failed_fraction"] <= ERROR_BUDGET
    assert report["chaos"]["deaths"] >= 2
    assert report["chaos"]["recovery_max_s"] <= RECOVERY_GATE_S
    assert report["healthy"]["latency_p99_ms"] > 0.0
