"""Training-throughput benchmark: fast path vs the legacy reference path.

Both sides train the same model on the same amazon-profile world from the
same seed; the only differences are the fast-path switches this benchmark
exists to measure:

* legacy — float64, ``legacy_path=True``: per-sample batch assembly,
  unfused kernels, ``np.add.at`` scatter (the pre-optimization code path);
* fast — float32, vectorized document-matrix gathers, fused
  softmax-cross-entropy / linear+relu, im2col conv with cached workspaces,
  plus the tape-level graph optimizer (automatic chain fusion + arena
  buffer reuse — ``OmniMatchConfig.graph_opt``, default on).

A third *coverage arm* trains models the hand-written kernels never
touched — the BERT-ablation transformer extractor and the DeepCoNN
baseline — under the graph optimizer, to show the automatic pass reaches
them with zero per-kernel code.

Each variant also runs a short *untimed* fit with ``REPRO_TENSOR_STATS``
counting enabled to record its allocation profile (fresh graph/backward
bytes, arena hit rate, fused tape nodes); the deltas land in
``BENCH_throughput.json`` without taxing the timed ratio. Both main variants train with telemetry enabled
(a sink streaming to a temp directory), so the speedup ratio prices in the
observability overhead it would pay in a real instrumented run. At full
scale the fast path must deliver >= 3.5x the legacy samples/sec (ratcheted
from 3x when the graph optimizer landed); at ``REPRO_BENCH_FAST=1`` scale
the run is a smoke test and only the report plumbing is asserted.
"""

from __future__ import annotations

import tempfile
import time

from repro import nn
from repro.baselines import DeepCoNN
from repro.core import OmniMatchTrainer
from repro.data import cold_start_split, generate_scenario
from repro.obs import TelemetrySink
from repro.perf import throughput, write_report

from conftest import FAST, SHAPE_ASSERTS, WORLDS, bench_config, run_once

EPOCHS = 2 if FAST else 5
#: Timed runs per variant; the fastest is reported (timeit-style min, which
#: strips scheduler / frequency-scaling noise from the single-run ratio).
RUNS = 1 if FAST else 2
PHASES = ("batch_assembly", "forward", "backward", "optimizer")

VARIANTS = {
    "legacy": dict(dtype="float64", legacy_path=True),
    "fast": dict(dtype="float32", legacy_path=False),
}


#: Allocation counters copied into each variant's ``alloc`` entry.
ALLOC_KEYS = ("graph_bytes", "backward_bytes", "peak_bytes",
              "arena_hits", "arena_misses", "fused_ops")


def _alloc_snapshot() -> dict:
    stats = nn.tensor_stats()
    alloc = {key: stats[key] for key in ALLOC_KEYS}
    requests = alloc["arena_hits"] + alloc["arena_misses"]
    alloc["arena_hit_rate"] = alloc["arena_hits"] / requests if requests else 0.0
    return alloc


def _alloc_profile(dataset, split, flags) -> dict:
    """Allocation counters from a short *untimed* instrumented fit.

    Kept separate from the timed runs so the per-node stats counting does
    not tax the speedup ratio it reports next to.
    """
    config = bench_config(epochs=min(2, EPOCHS), early_stopping=False, **flags)
    trainer = OmniMatchTrainer(dataset, split, config)
    was_stats = nn.set_tensor_stats(True)
    nn.reset_tensor_stats()
    try:
        trainer.fit()
        return _alloc_snapshot()
    finally:
        nn.set_tensor_stats(was_stats)
        nn.reset_tensor_stats()


def _train_variant(dataset, split, flags) -> dict:
    alloc = _alloc_profile(dataset, split, flags)
    best = None
    for run_index in range(RUNS):
        config = bench_config(epochs=EPOCHS, early_stopping=False, **flags)
        with tempfile.TemporaryDirectory() as sink_dir:
            sink = TelemetrySink(sink_dir, run_id=f"bench-{run_index}")
            trainer = OmniMatchTrainer(dataset, split, config, telemetry=sink)
            samples = len(split.train_interactions(dataset)) * EPOCHS
            start = time.perf_counter()
            result = trainer.fit()
            seconds = time.perf_counter() - start
            sink.close()
        if best is not None and seconds >= best["seconds"]:
            continue
        phase_summary = trainer.perf.summary()
        best = {
            "samples": samples,
            "seconds": seconds,
            "samples_per_sec": throughput(samples, seconds),
            "epoch_seconds": [stat.seconds for stat in result.history],
            "phases": {
                name: phase_summary[name]["seconds"]
                for name in PHASES
                if name in phase_summary
            },
            "trace": trainer.tracer.summary(),
            "alloc": alloc,
        }
    return best


def _train_coverage_arm(dataset, split) -> dict:
    """Models the hand-written kernels never covered, under the graph pass.

    The transformer (BERT-ablation) extractor and the DeepCoNN baseline
    route through generic tensor ops, so their speed and allocation profile
    come entirely from the automatic fusion + arena passes.
    """
    arm = {}

    config = bench_config(
        epochs=EPOCHS, early_stopping=False, dtype="float32",
        legacy_path=False, extractor="transformer",
    )
    trainer = OmniMatchTrainer(dataset, split, config)
    samples = len(split.train_interactions(dataset)) * EPOCHS
    was_stats = nn.set_tensor_stats(True)
    nn.reset_tensor_stats()
    start = time.perf_counter()
    trainer.fit()
    seconds = time.perf_counter() - start
    arm["transformer_extractor"] = {
        "samples": samples,
        "seconds": seconds,
        "samples_per_sec": throughput(samples, seconds),
        "alloc": _alloc_snapshot(),
    }

    nn.reset_tensor_stats()
    baseline = DeepCoNN(
        embed_dim=16 if FAST else 32, num_filters=8 if FAST else 16,
        doc_len=24 if FAST else 48, epochs=1 if FAST else 2,
    )
    samples = len(split.train_interactions(dataset))
    start = time.perf_counter()
    baseline.fit(dataset, split)
    seconds = time.perf_counter() - start
    arm["deepconn"] = {
        "samples": samples,
        "seconds": seconds,
        "samples_per_sec": throughput(samples, seconds),
        "alloc": _alloc_snapshot(),
    }
    nn.set_tensor_stats(was_stats)
    nn.reset_tensor_stats()
    return arm


def _run_suite() -> dict:
    dataset = generate_scenario("amazon", "books", "movies", **WORLDS["amazon"])
    split = cold_start_split(dataset, seed=0)
    report = {
        "world": "amazon books->movies" + (" (FAST)" if FAST else ""),
        "epochs": EPOCHS,
        "runs_per_variant": RUNS,
        "variants": {},
    }
    for name, flags in VARIANTS.items():
        report["variants"][name] = _train_variant(dataset, split, flags)
    report["speedup"] = (
        report["variants"]["fast"]["samples_per_sec"]
        / report["variants"]["legacy"]["samples_per_sec"]
    )
    report["coverage"] = _train_coverage_arm(dataset, split)
    return report


def test_throughput(benchmark):
    report = run_once(benchmark, _run_suite)
    write_report("BENCH_throughput.json", report)

    print(f"\n=== Training throughput ({report['world']}, {EPOCHS} epochs) ===")
    header = "variant".ljust(10) + "samples/s".rjust(12) + "seconds".rjust(10)
    header += "".join(phase.rjust(16) for phase in PHASES)
    print(header)
    for name, stats in report["variants"].items():
        row = name.ljust(10)
        row += f"{stats['samples_per_sec']:>12.1f}{stats['seconds']:>10.2f}"
        for phase in PHASES:
            row += f"{stats['phases'].get(phase, 0.0):>16.3f}"
        print(row)
    print(f"speedup (fast vs legacy): {report['speedup']:.2f}x")
    for name, stats in report["variants"].items():
        alloc = stats["alloc"]
        print(
            f"alloc[{name}]: fwd={alloc['graph_bytes']}B "
            f"bwd={alloc['backward_bytes']}B peak={alloc['peak_bytes']}B/step "
            f"arena={alloc['arena_hit_rate']:.0%} hit "
            f"fused={alloc['fused_ops']} ops"
        )
    for name, stats in report["coverage"].items():
        alloc = stats["alloc"]
        print(
            f"coverage[{name}]: {stats['samples_per_sec']:.1f} samples/s "
            f"arena={alloc['arena_hit_rate']:.0%} hit fused={alloc['fused_ops']} ops"
        )

    for stats in report["variants"].values():
        assert stats["samples_per_sec"] > 0
        assert set(stats["phases"]) == set(PHASES)
        assert set(ALLOC_KEYS) <= set(stats["alloc"])  # counters recorded
        # Span trace and flat registry are fed from one measurement, so the
        # per-phase totals must agree (the trace nests them under epoch/).
        trace_totals = {
            path.rsplit("/", 1)[-1]: entry["inclusive_seconds"]
            for path, entry in stats["trace"].items()
        }
        for phase in PHASES:
            assert abs(trace_totals[phase] - stats["phases"][phase]) <= (
                0.01 * max(trace_totals[phase], stats["phases"][phase])
            )
    # The graph pass is live on the fast arm and reaches the coverage
    # models (transformer extractor + DeepCoNN) with zero per-kernel code.
    assert report["variants"]["fast"]["alloc"]["fused_ops"] > 0
    assert report["variants"]["fast"]["alloc"]["arena_hits"] > 0
    assert report["variants"]["legacy"]["alloc"]["fused_ops"] == 0
    for stats in report["coverage"].values():
        assert stats["alloc"]["fused_ops"] > 0
        assert stats["alloc"]["arena_hits"] > 0
    if SHAPE_ASSERTS:
        # Ratcheted from 3.0x when the tape-level graph optimizer landed.
        assert report["speedup"] >= 3.5, (
            f"fast path is only {report['speedup']:.2f}x the legacy path"
        )
