"""Training-throughput benchmark: fast path vs the legacy reference path.

Both sides train the same model on the same amazon-profile world from the
same seed; the only differences are the fast-path switches this benchmark
exists to measure:

* legacy — float64, ``legacy_path=True``: per-sample batch assembly,
  unfused kernels, ``np.add.at`` scatter (the pre-optimization code path);
* fast — float32, vectorized document-matrix gathers, fused
  softmax-cross-entropy / linear+relu, im2col conv with cached workspaces.

Results (overall samples/sec, per-phase breakdown from ``trainer.perf``,
a hierarchical span trace from the telemetry layer, and the speedup ratio)
are printed and written to ``BENCH_throughput.json`` in the working
directory. Both variants train with telemetry enabled (a sink streaming to
a temp directory), so the speedup ratio prices in the observability
overhead it would pay in a real instrumented run. At full scale the fast
path must deliver >= 3x the legacy samples/sec; at ``REPRO_BENCH_FAST=1``
scale the run is a smoke test and only the report plumbing is asserted.
"""

from __future__ import annotations

import tempfile
import time

from repro.core import OmniMatchTrainer
from repro.data import cold_start_split, generate_scenario
from repro.obs import TelemetrySink
from repro.perf import throughput, write_report

from conftest import FAST, SHAPE_ASSERTS, WORLDS, bench_config, run_once

EPOCHS = 2 if FAST else 5
#: Timed runs per variant; the fastest is reported (timeit-style min, which
#: strips scheduler / frequency-scaling noise from the single-run ratio).
RUNS = 1 if FAST else 2
PHASES = ("batch_assembly", "forward", "backward", "optimizer")

VARIANTS = {
    "legacy": dict(dtype="float64", legacy_path=True),
    "fast": dict(dtype="float32", legacy_path=False),
}


def _train_variant(dataset, split, flags) -> dict:
    best = None
    for run_index in range(RUNS):
        config = bench_config(epochs=EPOCHS, early_stopping=False, **flags)
        with tempfile.TemporaryDirectory() as sink_dir:
            sink = TelemetrySink(sink_dir, run_id=f"bench-{run_index}")
            trainer = OmniMatchTrainer(dataset, split, config, telemetry=sink)
            samples = len(split.train_interactions(dataset)) * EPOCHS
            start = time.perf_counter()
            result = trainer.fit()
            seconds = time.perf_counter() - start
            sink.close()
        if best is not None and seconds >= best["seconds"]:
            continue
        phase_summary = trainer.perf.summary()
        best = {
            "samples": samples,
            "seconds": seconds,
            "samples_per_sec": throughput(samples, seconds),
            "epoch_seconds": [stat.seconds for stat in result.history],
            "phases": {
                name: phase_summary[name]["seconds"]
                for name in PHASES
                if name in phase_summary
            },
            "trace": trainer.tracer.summary(),
        }
    return best


def _run_suite() -> dict:
    dataset = generate_scenario("amazon", "books", "movies", **WORLDS["amazon"])
    split = cold_start_split(dataset, seed=0)
    report = {
        "world": "amazon books->movies" + (" (FAST)" if FAST else ""),
        "epochs": EPOCHS,
        "runs_per_variant": RUNS,
        "variants": {},
    }
    for name, flags in VARIANTS.items():
        report["variants"][name] = _train_variant(dataset, split, flags)
    report["speedup"] = (
        report["variants"]["fast"]["samples_per_sec"]
        / report["variants"]["legacy"]["samples_per_sec"]
    )
    return report


def test_throughput(benchmark):
    report = run_once(benchmark, _run_suite)
    write_report("BENCH_throughput.json", report)

    print(f"\n=== Training throughput ({report['world']}, {EPOCHS} epochs) ===")
    header = "variant".ljust(10) + "samples/s".rjust(12) + "seconds".rjust(10)
    header += "".join(phase.rjust(16) for phase in PHASES)
    print(header)
    for name, stats in report["variants"].items():
        row = name.ljust(10)
        row += f"{stats['samples_per_sec']:>12.1f}{stats['seconds']:>10.2f}"
        for phase in PHASES:
            row += f"{stats['phases'].get(phase, 0.0):>16.3f}"
        print(row)
    print(f"speedup (fast vs legacy): {report['speedup']:.2f}x")

    for stats in report["variants"].values():
        assert stats["samples_per_sec"] > 0
        assert set(stats["phases"]) == set(PHASES)
        # Span trace and flat registry are fed from one measurement, so the
        # per-phase totals must agree (the trace nests them under epoch/).
        trace_totals = {
            path.rsplit("/", 1)[-1]: entry["inclusive_seconds"]
            for path, entry in stats["trace"].items()
        }
        for phase in PHASES:
            assert abs(trace_totals[phase] - stats["phases"][phase]) <= (
                0.01 * max(trace_totals[phase], stats["phases"][phase])
            )
    if SHAPE_ASSERTS:
        assert report["speedup"] >= 3.0, (
            f"fast path is only {report['speedup']:.2f}x the legacy path"
        )
