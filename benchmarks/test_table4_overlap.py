"""Table 4 — varying the proportion of overlapping training users.

EMCDR and PTUPCDR vs OmniMatch at 100 / 80 / 50 / 20 % of the training
users, on three Amazon scenarios. Paper shape: mapping-based methods degrade
steadily as the overlap shrinks, while OmniMatch's RMSE barely moves and it
is best at every proportion — review-derived representations need less
supervision than a mapping function.
"""

from __future__ import annotations

import numpy as np

from repro.data import generate_scenario
from repro.eval import run_experiment

from conftest import SHAPE_ASSERTS, WORLDS, bench_config, run_once

FRACTIONS = (1.0, 0.8, 0.5, 0.2)
METHODS = ("EMCDR", "PTUPCDR", "OmniMatch")
SCENARIOS4 = [("books", "movies"), ("movies", "music"), ("books", "music")]


def _run_table(trials: int):
    table: dict[tuple[str, str, float], float] = {}
    for source, target in SCENARIOS4:
        dataset = generate_scenario("amazon", source, target, **WORLDS["amazon"])
        for method in METHODS:
            for fraction in FRACTIONS:
                result = run_experiment(
                    method, "amazon", source, target,
                    trials=trials, train_fraction=fraction,
                    config=bench_config(), dataset=dataset,
                )
                table[(f"{source}->{target}", method, fraction)] = (
                    result.rmse, result.mae,
                )
    return table


def test_table4_overlap_proportions(benchmark, trials):
    table = run_once(benchmark, lambda: _run_table(trials))

    print("\n=== Table 4: RMSE by proportion of training users ===")
    scenarios = sorted({k[0] for k in table})
    for scenario in scenarios:
        print(f"\n{scenario}")
        header = "method".ljust(10) + "".join(f"{int(f*100):>7d}%" for f in FRACTIONS)
        print(header)
        for method in METHODS:
            row = method.ljust(10)
            for fraction in FRACTIONS:
                row += f"{table[(scenario, method, fraction)][0]:>8.3f}"
            print(row)

    # Shape assertions, averaged over the three scenarios:
    def mean_rmse(method, fraction):
        return np.mean([table[(s, method, fraction)][0] for s in scenarios])

    # 1) OmniMatch best at every proportion
    for fraction in FRACTIONS:
        ours = mean_rmse("OmniMatch", fraction)
        if SHAPE_ASSERTS:
            assert ours < mean_rmse("EMCDR", fraction)
        if SHAPE_ASSERTS:
            assert ours < mean_rmse("PTUPCDR", fraction)

    # 2) OmniMatch's degradation from 100% to 20% is flatter than EMCDR's
    ours_delta = mean_rmse("OmniMatch", 0.2) - mean_rmse("OmniMatch", 1.0)
    emcdr_delta = mean_rmse("EMCDR", 0.2) - mean_rmse("EMCDR", 1.0)
    print(f"\ndegradation 100%->20%: ours={ours_delta:+.3f} EMCDR={emcdr_delta:+.3f}")
    if SHAPE_ASSERTS:
        assert ours_delta < emcdr_delta + 0.05
