"""Inference-throughput benchmark: the serving engine vs naive re-encoding.

Both sides score the same cold-user x catalog pair workload from the same
trained model; the only difference is the serving architecture this
benchmark exists to measure:

* naive — ``repro.serve.reference.naive_score_pairs``: every pass re-runs
  both CNN extractor towers over the full token documents of every pair
  (what ``ColdStartPredictor`` did before the engine);
* cached — one :class:`repro.serve.InferenceEngine` across all passes:
  each user and item is encoded exactly once, steady-state passes are a
  single batched rating-head MLP over cached vectors.

Because both paths encode through the canonical blocked encoder and chunk
the rating head identically, their predictions must be **bit-identical**
— asserted on every run, at every scale, before any timing is trusted.
The report (per-pass timings, steady-state throughput, cache counters, a
full-catalog ``recommend`` measurement, and the speedup ratio) is printed
and written to ``BENCH_inference.json``. At full scale the cached engine
must deliver >= 5x the naive pair-scoring throughput; at
``REPRO_BENCH_FAST=1`` scale the run is a smoke test and only bit-identity
and the report plumbing are asserted.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import OmniMatchTrainer
from repro.data import cold_start_split, generate_scenario
from repro.perf import throughput, write_report
from repro.serve import InferenceEngine, naive_score_pairs

from conftest import FAST, SHAPE_ASSERTS, WORLDS, bench_config, run_once

EPOCHS = 2 if FAST else 3
#: Scoring passes over the workload. Pass 1 pays the engine's encode cost;
#: the rest are steady state. The naive path re-encodes on every pass. The
#: overall ratio deliberately prices in the cold start — a serving process
#: pays it once and then lives in steady state, so more passes only favor
#: the engine; 5 keeps the cold pass at a visible ~20% weight.
PASSES = 5
BATCH = 64 if FAST else 256
MAX_USERS = 8 if FAST else 32
MAX_ITEMS = 25 if FAST else 120


def _build_workload(dataset, split):
    """Cold users crossed with a catalog slice — the recommendation-serving
    traffic shape: every user needs a score against many items."""
    users = sorted(split.test_users)[:MAX_USERS]
    items = sorted(dataset.target.items)[:MAX_ITEMS]
    return [(user, item) for user in users for item in items]


def _run_suite() -> dict:
    dataset = generate_scenario("amazon", "books", "movies", **WORLDS["amazon"])
    split = cold_start_split(dataset, seed=0)
    config = bench_config(epochs=EPOCHS, early_stopping=False)
    result = OmniMatchTrainer(dataset, split, config).fit()
    pairs = _build_workload(dataset, split)

    naive_seconds = []
    for _ in range(PASSES):
        start = time.perf_counter()
        naive_out = naive_score_pairs(result, pairs, batch_size=BATCH)
        naive_seconds.append(time.perf_counter() - start)

    engine = InferenceEngine(result, batch_size=BATCH)
    cached_seconds = []
    for _ in range(PASSES):
        start = time.perf_counter()
        cached_out = engine.score_pairs(pairs)
        cached_seconds.append(time.perf_counter() - start)

    # Correctness precedes every timing claim.
    np.testing.assert_array_equal(cached_out, naive_out)

    user = pairs[0][0]
    start = time.perf_counter()
    recs = engine.recommend(user, k=10)
    recommend_seconds = time.perf_counter() - start
    brute = engine.score_pairs([(user, i) for i in engine.items.item_ids])
    order = np.lexsort((np.arange(len(brute)), -brute))[: len(recs)]
    assert [r.item_id for r in recs] == [engine.items.item_ids[s] for s in order]

    naive_total = sum(naive_seconds)
    cached_total = sum(cached_seconds)
    steady = cached_seconds[1:]
    return {
        "world": "amazon books->movies" + (" (FAST)" if FAST else ""),
        "pairs": len(pairs),
        "users": len({u for u, _ in pairs}),
        "items": len({i for _, i in pairs}),
        "passes": PASSES,
        "batch_size": BATCH,
        "naive": {
            "seconds_per_pass": naive_seconds,
            "total_seconds": naive_total,
            "pairs_per_sec": throughput(len(pairs) * PASSES, naive_total),
        },
        "cached": {
            "seconds_per_pass": cached_seconds,
            "total_seconds": cached_total,
            "pairs_per_sec": throughput(len(pairs) * PASSES, cached_total),
            "steady_state_pairs_per_sec": throughput(
                len(pairs) * len(steady), sum(steady)
            ),
            "cache": {
                "hits": engine.users.hits,
                "misses": engine.users.misses,
                "evictions": engine.users.evictions,
                "hit_rate": engine.users.hit_rate,
                "items_encoded": engine.items.encoded_count,
            },
        },
        "recommend": {
            "catalog": len(engine.items),
            "seconds": recommend_seconds,
            "items_per_sec": throughput(len(engine.items), recommend_seconds),
        },
        "speedup": naive_total / cached_total,
        "steady_state_speedup": (
            (naive_total / PASSES) / (sum(steady) / len(steady))
        ),
        "bit_identical": True,
    }


def test_inference_throughput(benchmark):
    report = run_once(benchmark, _run_suite)
    write_report("BENCH_inference.json", report)

    print(f"\n=== Inference throughput ({report['world']}) ===")
    print(f"workload: {report['users']} cold users x {report['items']} items "
          f"= {report['pairs']} pairs, {report['passes']} passes, "
          f"batch {report['batch_size']}")
    header = "path".ljust(8) + "pairs/s".rjust(12) + "total_s".rjust(10)
    header += "per-pass seconds".rjust(34)
    print(header)
    for name in ("naive", "cached"):
        stats = report[name]
        per_pass = ", ".join(f"{s:.2f}" for s in stats["seconds_per_pass"])
        print(name.ljust(8) + f"{stats['pairs_per_sec']:>12.1f}"
              f"{stats['total_seconds']:>10.2f}" + f"[{per_pass}]".rjust(34))
    cache = report["cached"]["cache"]
    print(f"cache: {cache['hits']} hits / {cache['misses']} misses "
          f"({cache['hit_rate']:.1%}); {cache['items_encoded']} items encoded")
    print(f"steady-state: "
          f"{report['cached']['steady_state_pairs_per_sec']:.1f} pairs/s")
    print(f"recommend: top-10 of {report['recommend']['catalog']} items in "
          f"{report['recommend']['seconds']:.3f}s "
          f"({report['recommend']['items_per_sec']:.1f} items/s)")
    print(f"speedup (cached vs naive): {report['speedup']:.2f}x overall, "
          f"{report['steady_state_speedup']:.2f}x steady-state")

    assert report["bit_identical"]
    assert report["cached"]["pairs_per_sec"] > 0
    assert report["cached"]["cache"]["misses"] == report["users"]
    if SHAPE_ASSERTS:
        assert report["speedup"] >= 5.0, (
            f"cached engine is only {report['speedup']:.2f}x the naive path"
        )
