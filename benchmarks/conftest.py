"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
section (§5) and prints the same rows/series the paper reports. Absolute
values differ from the paper (synthetic corpus, CPU-scaled models — see
DESIGN.md §2); the asserted properties are the *shapes*: who wins, rough
factors, and degradation trends.

Scale knobs: set ``REPRO_BENCH_FAST=1`` to run on smaller worlds / fewer
epochs (for smoke-testing the harness itself).
"""

from __future__ import annotations

import os

import pytest

from repro.core import OmniMatchConfig

FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"

#: Shape assertions only apply at full scale — the FAST worlds are below the
#: size where the paper's orderings stabilize; FAST is a harness smoke test.
SHAPE_ASSERTS = not FAST

#: Generator overrides per dataset profile used by the benches.
WORLDS = {
    "amazon": (
        dict(num_users=220, num_items_per_domain=100, reviews_per_user_mean=6.0)
        if FAST
        else {}
    ),
    "douban": (
        dict(num_users=220, num_items_per_domain=120, reviews_per_user_mean=6.0)
        if FAST
        else {}
    ),
}

#: The six cross-domain scenarios of Tables 2-3.
SCENARIOS = [
    ("books", "movies"),
    ("movies", "books"),
    ("books", "music"),
    ("music", "books"),
    ("movies", "music"),
    ("music", "movies"),
]


def bench_config(**overrides) -> OmniMatchConfig:
    """OmniMatch config used by the benchmark harness.

    Epoch budget is trimmed relative to the library default (40 with
    patience 6) so the full table sweep finishes in tens of minutes on one
    CPU core; early stopping picks the best epoch within the budget.
    """
    base = dict(epochs=8 if FAST else 18, patience=2 if FAST else 3)
    base.update(overrides)
    return OmniMatchConfig(**base)


def run_once(benchmark, fn):
    """pytest-benchmark adapter: these are minutes-long macro-benchmarks, so
    run exactly one round and return the function's result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture()
def trials() -> int:
    return 1
