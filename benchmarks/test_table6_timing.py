"""Table 6 — training time with individual modules removed.

Paper shape (A100 minutes; ours: CPU seconds): the full model is the
slowest; removing the Domain Adversarial module saves more time than
removing the Supervised Contrastive module (paper: 20 -> 16 vs 17 min).
We reproduce the *relative* cost: full > w/o SCL and full > w/o DA.
"""

from __future__ import annotations

from repro.core import OmniMatchTrainer
from repro.data import cold_start_split, generate_scenario

from conftest import SHAPE_ASSERTS, WORLDS, bench_config, run_once

SCENARIOS6 = [("books", "music"), ("movies", "music")]

VARIANTS = {
    "Full Model": {},
    "w/o DA": dict(use_domain_adversarial=False),
    "w/o SCL": dict(use_scl=False),
}


def _run_table():
    table: dict[tuple[str, str], float] = {}
    for source, target in SCENARIOS6:
        dataset = generate_scenario("amazon", source, target, **WORLDS["amazon"])
        split = cold_start_split(dataset, seed=0)
        for variant, flags in VARIANTS.items():
            # fixed epoch count (no early stopping) for a fair timing comparison
            config = bench_config(epochs=5, early_stopping=False, **flags)
            result = OmniMatchTrainer(dataset, split, config).fit()
            table[(variant, f"{source}->{target}")] = result.train_seconds
    return table


def test_table6_training_time(benchmark):
    table = run_once(benchmark, _run_table)

    scenarios = [f"{s}->{t}" for s, t in SCENARIOS6]
    print("\n=== Table 6: training time (seconds, 5 epochs) ===")
    print("variant".ljust(14) + "".join(s.rjust(18) for s in scenarios))
    for variant in VARIANTS:
        row = variant.ljust(14)
        for scenario in scenarios:
            row += f"{table[(variant, scenario)]:>18.1f}"
        print(row)

    for scenario in scenarios:
        full = table[("Full Model", scenario)]
        if SHAPE_ASSERTS:
            assert table[("w/o DA", scenario)] < full
        if SHAPE_ASSERTS:
            assert table[("w/o SCL", scenario)] < full
