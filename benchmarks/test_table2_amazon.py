"""Table 2 — Amazon: RMSE/MAE for all methods across six scenarios.

Paper shape: OmniMatch achieves the best RMSE and MAE in every scenario,
with single-digit-to-low-double-digit Δ% over the second-best method
(paper: 1.7 %-14.6 % RMSE). Here we assert OmniMatch wins on average and is
never far behind the best baseline in any single scenario.
"""

from __future__ import annotations

import numpy as np

from repro.eval import PAPER_METHODS, format_comparison, run_scenario_methods

from conftest import SHAPE_ASSERTS, SCENARIOS, WORLDS, bench_config, run_once


def _run_table(trials: int):
    all_results = []
    for source, target in SCENARIOS:
        results = run_scenario_methods(
            list(PAPER_METHODS), "amazon", source, target,
            trials=trials, config=bench_config(), **WORLDS["amazon"],
        )
        print(f"\n=== Amazon {source} -> {target} ===")
        print(format_comparison(results))
        all_results.append(results)
    return all_results


def test_table2_amazon(benchmark, trials):
    tables = run_once(benchmark, lambda: _run_table(trials))

    wins = 0
    ours_all, best_other_all = [], []
    for results in tables:
        ours = next(r.rmse for r in results if r.method == "OmniMatch")
        best_other = min(r.rmse for r in results if r.method != "OmniMatch")
        ours_all.append(ours)
        best_other_all.append(best_other)
        if ours < best_other:
            wins += 1

    print(f"\nOmniMatch wins {wins}/{len(tables)} scenarios (RMSE)")
    print(f"mean RMSE ours={np.mean(ours_all):.3f} best-baseline={np.mean(best_other_all):.3f}")

    # Shape assertions: wins on average, and per-scenario never clearly loses.
    if SHAPE_ASSERTS:
        assert np.mean(ours_all) < np.mean(best_other_all)
    if SHAPE_ASSERTS:
        assert all(o < b * 1.05 for o, b in zip(ours_all, best_other_all))
