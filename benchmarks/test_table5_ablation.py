"""Table 5 — ablation study on each OmniMatch component.

Run in the paper's data-scarce setting (20 % of training users) on three
Amazon scenarios. Variants:

* w/o SCL — supervised contrastive module disabled;
* w/o DA — domain adversarial module disabled;
* w/o Aux Reviews — no auxiliary documents: cold users fall back to their
  source document (the §4.1 failure mode);
* OmniMatch — the full model;
* OmniMatch-ReviewText — full review bodies instead of summaries;
* OmniMatch-BERT — transformer encoder instead of the CNN.

Paper shape: the full model is best; removing auxiliary reviews hurts the
most; ReviewText and BERT variants underperform the summary + CNN default.
"""

from __future__ import annotations

import numpy as np

from repro.data import generate_scenario
from repro.eval import run_experiment

from conftest import SHAPE_ASSERTS, WORLDS, bench_config, run_once

SCENARIOS5 = [("books", "movies"), ("books", "music"), ("movies", "music")]

VARIANTS = {
    "w/o SCL": dict(use_scl=False),
    "w/o DA": dict(use_domain_adversarial=False),
    "w/o Aux Reviews": dict(use_auxiliary_reviews=False),
    "OmniMatch": {},
    "OmniMatch-ReviewText": dict(field="text"),
    "OmniMatch-BERT": dict(extractor="transformer", embed_dim=48,
                           transformer_layers=2, transformer_heads=4),
}


def _run_table(trials: int):
    table: dict[tuple[str, str], tuple[float, float]] = {}
    for source, target in SCENARIOS5:
        dataset = generate_scenario("amazon", source, target, **WORLDS["amazon"])
        for variant, flags in VARIANTS.items():
            result = run_experiment(
                "OmniMatch", "amazon", source, target,
                trials=trials, train_fraction=0.2,
                config=bench_config(**flags), dataset=dataset,
            )
            table[(variant, f"{source}->{target}")] = (result.rmse, result.mae)
    return table


def test_table5_ablation(benchmark, trials):
    table = run_once(benchmark, lambda: _run_table(trials))

    scenarios = [f"{s}->{t}" for s, t in SCENARIOS5]
    print("\n=== Table 5: ablation (20% training users), RMSE / MAE ===")
    header = "variant".ljust(22) + "".join(s.rjust(18) for s in scenarios)
    print(header)
    for variant in VARIANTS:
        row = variant.ljust(22)
        for scenario in scenarios:
            r, m = table[(variant, scenario)]
            row += f"{r:>9.3f}/{m:<8.3f}"
        print(row)

    def mean_rmse(variant):
        return np.mean([table[(variant, s)][0] for s in scenarios])

    full = mean_rmse("OmniMatch")
    print(f"\nmean RMSE: full={full:.3f} "
          + " ".join(f"{v}={mean_rmse(v):.3f}" for v in VARIANTS if v != "OmniMatch"))

    # Shape: the full model is best on average (small tolerance for split
    # noise), and every module ablation costs accuracy. Divergence note: in
    # the paper, removing auxiliary reviews is the single most damaging
    # ablation; here the 'dual' inference path partially cushions it with
    # the user's source document, so the worst ablation varies by scenario
    # (recorded in EXPERIMENTS.md).
    module_ablations = ["w/o SCL", "w/o DA", "w/o Aux Reviews"]
    if SHAPE_ASSERTS:
        for variant in VARIANTS:
            if variant != "OmniMatch":
                assert full <= mean_rmse(variant) + 0.03, variant
        assert full < np.mean([mean_rmse(v) for v in module_ablations])
