"""Figure 4 — sensitivity of OmniMatch to the loss weights alpha and beta.

Movies -> Music, sweeping alpha in {0.1 ... 0.7} with beta = 0.1, then beta
in {0.1 ... 0.7} with alpha = 0.2 (the paper's protocol, §5.8). Paper shape:
the RMSE/MAE curves are nearly flat — the method does not hinge on precise
hyperparameter tuning. We assert the spread across the sweep stays small
relative to the mean.
"""

from __future__ import annotations

import numpy as np

from repro.data import generate_scenario
from repro.eval import run_experiment

from conftest import SHAPE_ASSERTS, WORLDS, bench_config, run_once

VALUES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)


def _run_sweeps(trials: int):
    dataset = generate_scenario("amazon", "movies", "music", **WORLDS["amazon"])
    curves = {"alpha": {}, "beta": {}}
    for alpha in VALUES:
        result = run_experiment(
            "OmniMatch", "amazon", "movies", "music", trials=trials,
            config=bench_config(alpha=alpha, beta=0.1), dataset=dataset,
        )
        curves["alpha"][alpha] = (result.rmse, result.mae)
    for beta in VALUES:
        result = run_experiment(
            "OmniMatch", "amazon", "movies", "music", trials=trials,
            config=bench_config(alpha=0.2, beta=beta), dataset=dataset,
        )
        curves["beta"][beta] = (result.rmse, result.mae)
    return curves


def test_figure4_hyperparameter_sensitivity(benchmark, trials):
    curves = run_once(benchmark, lambda: _run_sweeps(trials))

    for name, curve in curves.items():
        print(f"\n=== Figure 4: sweep over {name} (movies -> music) ===")
        print("value   RMSE    MAE")
        for value in VALUES:
            r, m = curve[value]
            print(f"{value:>5.1f} {r:>7.3f} {m:>7.3f}")

    # Shape: curves are flat — relative spread of RMSE stays small (the
    # paper's Figure 4 varies by ~2 %; we allow 12 % to absorb the extra
    # variance of single-trial training on the smaller corpus).
    for name, curve in curves.items():
        rmses = np.array([curve[v][0] for v in VALUES])
        spread = (rmses.max() - rmses.min()) / rmses.mean()
        print(f"{name}: relative RMSE spread {spread:.1%}")
        if SHAPE_ASSERTS:
            assert spread < 0.12, name
