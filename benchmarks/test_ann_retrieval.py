"""ANN retrieval benchmark: IVF probe + exact re-rank vs the exact oracle.

The serving engine's exact ``recommend`` pushes every catalog item through
the rating head per query — linear in the catalog, hopeless at millions of
items. This benchmark scales the *catalog* (not the training corpus: items
are appended after training via ``scale_target_catalog``, the production
pattern the retriever exists for) and measures the IVF path against the
exact oracle on identical queries:

* **recall@10** — fraction of the oracle's top-10 the IVF shortlist
  retains, averaged over cold users, at the smallest ``nprobe`` from a
  small sweep that clears the quality gate;
* **speedup** — median per-query latency ratio, exact / IVF;
* **memory** — float32 vs int8 routing-store bytes;
* **exactness** — ``nprobe = nlist`` must reproduce the exact ranking bit
  for bit (both stores), asserted at every scale before timings matter.

Full-scale gates: recall@10 >= 0.95 at >= 20x item throughput on a 100k
catalog, int8 store >= 3.5x smaller than float32. At ``REPRO_BENCH_FAST=1``
the catalog shrinks to 3k items and only the recall gate and the exactness
contract are asserted (latency ratios are noise at that size). The report
is printed and written to ``BENCH_ann.json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import OmniMatchTrainer
from repro.data import cold_start_split, generate_scenario, scale_target_catalog
from repro.perf import throughput, write_report
from repro.serve import InferenceEngine

from conftest import FAST, SHAPE_ASSERTS, WORLDS, bench_config, run_once

EPOCHS = 2 if FAST else 3
#: Catalog size after post-training growth (the retrieval workload).
CATALOG = 3_000 if FAST else 100_000
NLIST = 64 if FAST else 512
#: Probe sweep: the chosen operating point is the smallest nprobe clearing
#: the recall gate; larger probes trade latency for recall monotonically.
NPROBE_SWEEP = (4, 8, 16, 32)
RECALL_GATE = 0.95
SPEEDUP_GATE = 20.0
MEMORY_GATE = 3.5
K = 10
EVAL_USERS = 6 if FAST else 10


def _rank_ids(recs):
    return [r.item_id for r in recs]


def _median_seconds(fn, repeats=3):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def _run_suite() -> dict:
    dataset = generate_scenario("amazon", "books", "movies", **WORLDS["amazon"])
    split = cold_start_split(dataset, seed=0)
    config = bench_config(epochs=EPOCHS, early_stopping=False)
    result = OmniMatchTrainer(dataset, split, config).fit()

    grown = scale_target_catalog(
        dataset, CATALOG - len(dataset.target.items), seed=1
    )
    store = result.store.with_dataset(grown)
    engine = InferenceEngine(result, store=store, nlist=NLIST, ann_seed=0)
    users = sorted(split.test_users)[:EVAL_USERS]
    engine.warm(users)

    encode_start = time.perf_counter()
    engine.build_index()
    encode_seconds = time.perf_counter() - encode_start
    build_start = time.perf_counter()
    index = engine.ann_index()
    build_seconds = time.perf_counter() - build_start

    # Exact oracle rankings (cached: the recall sweep reuses them).
    oracle = {
        u: _rank_ids(engine.recommend(u, k=K, retrieval="exact")) for u in users
    }

    # nprobe sweep: recall@K against the oracle per operating point.
    sweep = []
    for nprobe in NPROBE_SWEEP:
        recalls = [
            len(
                set(oracle[u])
                & set(_rank_ids(engine.recommend(u, k=K, retrieval="ivf",
                                                 nprobe=nprobe)))
            )
            / len(oracle[u])
            for u in users
        ]
        sweep.append({"nprobe": nprobe, "recall": float(np.mean(recalls))})
    chosen = next(
        (p for p in sweep if p["recall"] >= RECALL_GATE), sweep[-1]
    )

    # Latency at the chosen operating point (steady state: index built,
    # users warm; median of repeats per user, then median across users).
    probe = chosen["nprobe"]
    exact_seconds = float(np.median([
        _median_seconds(lambda u=u: engine.recommend(u, k=K, retrieval="exact"))
        for u in users
    ]))
    ivf_seconds = float(np.median([
        _median_seconds(
            lambda u=u: engine.recommend(u, k=K, retrieval="ivf", nprobe=probe)
        )
        for u in users
    ]))

    # Exactness contract: full probe == brute force, bit for bit.
    witness = users[0]
    exact_full = engine.recommend(witness, k=K, retrieval="exact")
    ivf_full = engine.recommend(
        witness, k=K, retrieval="ivf", nprobe=index.nlist
    )
    exact_degradation = [
        (r.item_id, r.score) for r in exact_full
    ] == [(r.item_id, r.score) for r in ivf_full]

    # Int8 routing arm: same ItemIndex matrix (no re-encode), new coarse
    # index routed over quantized codes.
    engine.set_retrieval(ann_store="int8")
    int8_index = engine.ann_index()
    int8_stats = int8_index.stats
    int8_recalls = [
        len(
            set(oracle[u])
            & set(_rank_ids(engine.recommend(u, k=K, retrieval="ivf",
                                             nprobe=probe)))
        )
        / len(oracle[u])
        for u in users
    ]
    ivf8_full = engine.recommend(
        witness, k=K, retrieval="ivf", nprobe=int8_index.nlist
    )
    int8_exact_degradation = [
        (r.item_id, r.score) for r in exact_full
    ] == [(r.item_id, r.score) for r in ivf8_full]

    return {
        "world": "amazon books->movies" + (" (FAST)" if FAST else ""),
        "catalog": len(engine.items),
        "users": len(users),
        "k": K,
        "nlist": index.nlist,
        "encode_seconds": encode_seconds,
        "build_seconds": build_seconds,
        "build_iters": index.stats.iters_run,
        "sweep": sweep,
        "chosen_nprobe": probe,
        "recall": chosen["recall"],
        "exact": {
            "seconds": exact_seconds,
            "items_per_sec": throughput(len(engine.items), exact_seconds),
        },
        "ivf": {
            "seconds": ivf_seconds,
            "items_per_sec": throughput(len(engine.items), ivf_seconds),
        },
        "speedup": exact_seconds / ivf_seconds if ivf_seconds > 0 else 0.0,
        "exact_degradation_bit_identical": exact_degradation,
        "int8": {
            "recall": float(np.mean(int8_recalls)),
            "store_bytes": int8_stats.store_bytes,
            "float32_bytes": int8_stats.float32_bytes,
            "memory_ratio": int8_stats.float32_bytes / int8_stats.store_bytes,
            "exact_degradation_bit_identical": int8_exact_degradation,
        },
    }


def test_ann_retrieval(benchmark):
    report = run_once(benchmark, _run_suite)
    write_report("BENCH_ann.json", report)

    print(f"\n=== ANN retrieval ({report['world']}) ===")
    print(f"catalog: {report['catalog']} items  nlist: {report['nlist']}  "
          f"encode {report['encode_seconds']:.1f}s  "
          f"k-means build {report['build_seconds']:.2f}s "
          f"({report['build_iters']} iters)")
    print("nprobe sweep: " + "  ".join(
        f"{p['nprobe']}->{p['recall']:.3f}" for p in report["sweep"]
    ))
    print(f"operating point: nprobe={report['chosen_nprobe']} "
          f"recall@{report['k']}={report['recall']:.3f}")
    print(f"exact : {report['exact']['seconds'] * 1e3:8.2f}ms/query  "
          f"{report['exact']['items_per_sec']:12.0f} items/s")
    print(f"ivf   : {report['ivf']['seconds'] * 1e3:8.2f}ms/query  "
          f"{report['ivf']['items_per_sec']:12.0f} items/s  "
          f"({report['speedup']:.1f}x)")
    int8 = report["int8"]
    print(f"int8  : recall {int8['recall']:.3f}  "
          f"store {int8['store_bytes']} bytes "
          f"({int8['memory_ratio']:.1f}x smaller than float32)")

    # The exactness contract holds at every scale, both stores.
    assert report["exact_degradation_bit_identical"]
    assert int8["exact_degradation_bit_identical"]
    # The recall gate is asserted even in the FAST smoke run (satellite CI
    # gate); latency and memory ratios only at full scale.
    assert report["recall"] >= RECALL_GATE, (
        f"recall@{report['k']} {report['recall']:.3f} below {RECALL_GATE}"
    )
    if SHAPE_ASSERTS:
        assert report["speedup"] >= SPEEDUP_GATE, (
            f"IVF is only {report['speedup']:.1f}x the exact oracle"
        )
        assert int8["memory_ratio"] >= MEMORY_GATE
