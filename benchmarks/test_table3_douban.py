"""Table 3 — Douban: RMSE/MAE for all methods across six scenarios.

Paper shape: same ordering as Amazon but with larger margins for OmniMatch
(paper: 18 %-33 % over the second best) and catastrophic CMF / EMCDR /
PTUPCDR rows (their MF factors overfit the noisier, bias-heavy data).
"""

from __future__ import annotations

import numpy as np

from repro.eval import PAPER_METHODS, format_comparison, run_scenario_methods

from conftest import SHAPE_ASSERTS, SCENARIOS, WORLDS, bench_config, run_once


def _run_table(trials: int):
    all_results = []
    for source, target in SCENARIOS:
        results = run_scenario_methods(
            list(PAPER_METHODS), "douban", source, target,
            trials=trials, config=bench_config(), **WORLDS["douban"],
        )
        print(f"\n=== Douban {source} -> {target} ===")
        print(format_comparison(results))
        all_results.append(results)
    return all_results


def test_table3_douban(benchmark, trials):
    tables = run_once(benchmark, lambda: _run_table(trials))

    ours_all, best_other_all, cmf_all = [], [], []
    for results in tables:
        ours_all.append(next(r.rmse for r in results if r.method == "OmniMatch"))
        best_other_all.append(min(r.rmse for r in results if r.method != "OmniMatch"))
        cmf_all.append(next(r.rmse for r in results if r.method == "CMF"))

    wins = sum(o < b for o, b in zip(ours_all, best_other_all))
    print(f"\nOmniMatch wins {wins}/{len(tables)} scenarios (RMSE)")
    print(f"mean RMSE ours={np.mean(ours_all):.3f} best-baseline={np.mean(best_other_all):.3f}")

    if SHAPE_ASSERTS:
        assert np.mean(ours_all) < np.mean(best_other_all)
    if SHAPE_ASSERTS:
        assert all(o < b * 1.05 for o, b in zip(ours_all, best_other_all))
    # CMF is far off the pace, as in the paper's Douban table
    if SHAPE_ASSERTS:
        assert np.mean(cmf_all) > np.mean(ours_all) * 1.1
