"""Run-summary rendering: turn a ``run.jsonl`` into a human-readable report.

This backs the ``repro report`` CLI subcommand. The summary is computed
purely from the telemetry stream — nothing else about the run needs to be
on disk — so a report can be rendered on a different machine than the one
that trained, straight from the CI artifact.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .telemetry import DEFAULT_FILENAME, read_events

__all__ = ["load_run_events", "summarize_run", "render_report"]


def load_run_events(path: str | os.PathLike) -> list[dict]:
    """Events from a telemetry file, or from a run directory.

    A directory is resolved to its ``run.jsonl``; when that is absent but
    per-worker shards (``run-*.jsonl``) are present — a parallel run that
    was never merged, e.g. because it crashed — the shards are merged in
    memory so the report still renders.
    """
    path = Path(path)
    if path.is_dir():
        merged = path / DEFAULT_FILENAME
        if not merged.exists():
            from .merge import merged_events

            return merged_events(path)
        path = merged
    if not path.exists():
        raise FileNotFoundError(f"{path}: no telemetry file")
    return read_events(path)


def summarize_run(events: list[dict]) -> dict:
    """Aggregate a run's events into one summary dict.

    Keys: ``run`` / ``status`` / ``epochs`` (count) / ``samples`` /
    ``seconds`` / ``samples_per_sec`` / ``phases`` (per-phase totals from
    the final span summary) / ``health`` (counts by health kind) /
    ``final`` (last epoch's metrics) / ``alloc`` (summed per-epoch
    allocation counters from the graph optimizer, when the run emitted
    them) / ``trials`` (evaluation results) / ``checkpoints`` (written
    count).
    """
    summary: dict = {
        "run": None,
        "status": None,
        "epochs": 0,
        "samples": 0.0,
        "seconds": 0.0,
        "samples_per_sec": 0.0,
        "phases": {},
        "spans": {},
        "health": {},
        "final": {},
        "alloc": None,
        "metrics": {},
        "trials": [],
        "experiments": [],
        "checkpoints": 0,
        "workers": {},
        "tasks": {"ok": 0, "error": 0},
        "serving": {
            "score_calls": 0,
            "pairs": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "hit_rate": 0.0,
            "score_seconds": [],
            "score_p50": 0.0,
            "score_p95": 0.0,
            "pairs_per_sec": 0.0,
            "recommend_calls": 0,
            "items_ranked": 0,
            "items_per_sec": 0.0,
            "index_items": 0,
            "users_encoded": 0,
        },
        "daemon": {
            "started": False,
            "workers": 0,
            "catalog": 0,
            "received": 0,
            "completed": 0,
            "shed": 0,
            "timeouts": 0,
            "errors": 0,
            "deaths": 0,
            "requeues": 0,
            "stall_kills": 0,
            "degrades": 0,
            "max_level": 0,
            "truncated_shards": [],
            "dropped_lines": 0,
        },
        "tune": {
            "trials": {},
            "rungs": [],
            "best_trial": None,
            "best_rmse": None,
        },
        "ann": {
            "builds": 0,
            "nlist": 0,
            "store": None,
            "store_bytes": 0,
            "float32_bytes": 0,
            "build_seconds": 0.0,
            "probes": 0,
            "candidates": 0,
            "catalog_scanned": 0,
            "probe_seconds": [],
            "probe_p50": 0.0,
            "probe_p95": 0.0,
            "scan_fraction": 0.0,
            "recall": None,
            "recall_k": None,
        },
    }
    for event in events:
        kind = event.get("kind")
        if summary["run"] is None and "run" in event:
            summary["run"] = event["run"]
        if kind == "epoch":
            summary["epochs"] += 1
            summary["samples"] += event.get("samples", 0)
            summary["seconds"] += event.get("seconds", 0.0)
            summary["final"] = {
                key: event[key]
                for key in ("epoch", "total", "rating", "scl", "domain",
                            "valid_rmse", "samples_per_sec", "rng")
                if key in event
            }
            alloc = event.get("alloc")
            if isinstance(alloc, dict):
                totals = summary["alloc"] or {}
                for key, value in alloc.items():
                    if key == "peak_bytes":
                        # Running per-step high-water mark, not a delta.
                        totals[key] = max(totals.get(key, 0), value)
                    else:
                        totals[key] = totals.get(key, 0) + value
                summary["alloc"] = totals
        elif kind == "health":
            name = event.get("health_kind", "unknown")
            summary["health"][name] = summary["health"].get(name, 0) + 1
        elif kind == "span_summary":
            summary["phases"] = event.get("totals", {})
            summary["spans"] = event.get("spans", {})
        elif kind == "metrics_summary":
            summary["metrics"] = {
                "counters": event.get("counters", {}),
                "gauges": event.get("gauges", {}),
                "histograms": event.get("histograms", {}),
            }
        elif kind == "run_end":
            summary["status"] = event.get("status")
        elif kind == "checkpoint_write":
            summary["checkpoints"] += 1
        elif kind == "trial":
            summary["trials"].append(
                {
                    key: event[key]
                    for key in ("method", "trial", "seed", "rmse", "mae")
                    if key in event
                }
            )
        elif kind == "experiment":
            summary["experiments"].append(
                {
                    key: event[key]
                    for key in ("method", "scenario", "rmse", "mae", "trials")
                    if key in event
                }
            )
        elif kind == "worker_end":
            worker = event.get("worker", "?")
            busy = float(event.get("busy_seconds", 0.0))
            idle = float(event.get("idle_seconds", 0.0))
            total = busy + idle
            summary["workers"][worker] = {
                "busy_seconds": busy,
                "idle_seconds": idle,
                "tasks_done": event.get("tasks_done", 0),
                "utilization": busy / total if total > 0 else 0.0,
            }
        elif kind in ("task", "pool_task"):
            status = event.get("status", "ok")
            summary["tasks"][status] = summary["tasks"].get(status, 0) + 1
        elif kind == "serve_score":
            serving = summary["serving"]
            serving["score_calls"] += 1
            serving["pairs"] += event.get("pairs", 0)
            serving["cache_hits"] += event.get("cache_hits", 0)
            serving["cache_misses"] += event.get("cache_misses", 0)
            serving["score_seconds"].append(float(event.get("seconds", 0.0)))
        elif kind == "serve_recommend":
            serving = summary["serving"]
            serving["recommend_calls"] += 1
            serving["items_ranked"] += event.get("catalog", 0)
            serving["score_seconds"].append(float(event.get("seconds", 0.0)))
        elif kind == "serve_index":
            summary["serving"]["index_items"] += event.get("items", 0)
        elif kind == "serve_encode_users":
            summary["serving"]["users_encoded"] += event.get("users", 0)
        elif kind == "serve_ann_build":
            ann = summary["ann"]
            ann["builds"] += 1
            ann["nlist"] = event.get("nlist", 0)
            ann["store"] = event.get("store")
            ann["store_bytes"] = event.get("store_bytes", 0)
            ann["float32_bytes"] = event.get("float32_bytes", 0)
            ann["build_seconds"] += float(event.get("seconds", 0.0))
        elif kind == "serve_ann_probe":
            ann = summary["ann"]
            ann["probes"] += 1
            ann["candidates"] += event.get("candidates", 0)
            ann["catalog_scanned"] += event.get("catalog", 0)
            ann["probe_seconds"].append(float(event.get("seconds", 0.0)))
        elif kind == "serve_ann_recall":
            summary["ann"]["recall"] = event.get("recall")
            summary["ann"]["recall_k"] = event.get("k")
        elif kind == "daemon_start":
            daemon = summary["daemon"]
            daemon["started"] = True
            daemon["workers"] = event.get("workers", 0)
            daemon["catalog"] = event.get("catalog", 0)
        elif kind == "daemon_worker_death":
            summary["daemon"]["deaths"] += 1
            summary["daemon"]["requeues"] += event.get("requeued", 0)
        elif kind == "daemon_stall_kill":
            summary["daemon"]["stall_kills"] += 1
        elif kind == "daemon_degrade":
            daemon = summary["daemon"]
            daemon["degrades"] += 1
            daemon["max_level"] = max(daemon["max_level"], event.get("level", 0))
        elif kind in ("daemon_stats", "daemon_stop"):
            # Counters are cumulative: the latest event wins.
            daemon = summary["daemon"]
            daemon["started"] = True
            for key in ("received", "completed", "shed", "timeouts", "errors"):
                daemon[key] = event.get(key, daemon[key])
        elif kind == "tune_trial":
            tune = summary["tune"]
            entry = tune["trials"].setdefault(
                event.get("trial"),
                {"params": {}, "rungs": {}, "epochs": 0, "killed_at": None},
            )
            if event.get("status") == "defined":
                entry["params"] = event.get("params", {})
            else:
                rmse = event.get("valid_rmse")
                entry["rungs"][event.get("rung")] = rmse
                entry["epochs"] = max(entry["epochs"], event.get("epochs", 0))
        elif kind == "tune_rung":
            tune = summary["tune"]
            tune["rungs"].append(
                {
                    key: event[key]
                    for key in ("rung", "budget", "trials", "promoted", "killed")
                    if key in event
                }
            )
            for trial_id in event.get("killed", []):
                entry = tune["trials"].setdefault(
                    trial_id,
                    {"params": {}, "rungs": {}, "epochs": 0, "killed_at": None},
                )
                entry["killed_at"] = event.get("rung")
        elif kind == "tune_result":
            summary["tune"]["best_trial"] = event.get("best_trial")
            summary["tune"]["best_rmse"] = event.get("best_rmse")
        elif kind == "merge":
            summary["daemon"]["truncated_shards"] = event.get(
                "truncated_shards", []
            )
            summary["daemon"]["dropped_lines"] = event.get("dropped_lines", 0)
    if summary["seconds"] > 0:
        summary["samples_per_sec"] = summary["samples"] / summary["seconds"]
    serving = summary["serving"]
    lookups = serving["cache_hits"] + serving["cache_misses"]
    if lookups:
        serving["hit_rate"] = serving["cache_hits"] / lookups
    if serving["score_seconds"]:
        latencies = np.asarray(serving["score_seconds"], dtype=np.float64)
        serving["score_p50"] = float(np.percentile(latencies, 50))
        serving["score_p95"] = float(np.percentile(latencies, 95))
        total_seconds = float(latencies.sum())
        if total_seconds > 0:
            serving["pairs_per_sec"] = serving["pairs"] / total_seconds
            serving["items_per_sec"] = serving["items_ranked"] / total_seconds
    ann = summary["ann"]
    if ann["probe_seconds"]:
        latencies = np.asarray(ann["probe_seconds"], dtype=np.float64)
        ann["probe_p50"] = float(np.percentile(latencies, 50))
        ann["probe_p95"] = float(np.percentile(latencies, 95))
    if ann["catalog_scanned"]:
        ann["scan_fraction"] = ann["candidates"] / ann["catalog_scanned"]
    return summary


def _format_seconds(seconds: float) -> str:
    return f"{seconds:8.3f}s"


def _format_bytes(count: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(count) < 1024 or unit == "GiB":
            return f"{count:.1f} {unit}" if unit != "B" else f"{count:.0f} B"
        count /= 1024
    return f"{count:.1f} GiB"


def render_report(events: list[dict]) -> str:
    """Render the run summary as the plain-text report the CLI prints."""
    summary = summarize_run(events)
    lines = [
        f"run {summary['run'] or '<unknown>'} — "
        f"status: {summary['status'] or 'in progress'}",
        f"epochs: {summary['epochs']}  samples: {summary['samples']:.0f}  "
        f"wall-clock: {summary['seconds']:.2f}s  "
        f"throughput: {summary['samples_per_sec']:.1f} samples/s",
    ]

    if summary["phases"]:
        # Share is relative to total traced wall-clock (the sum of top-level
        # spans), so a parent like ``epoch`` reads ~100% and its nested
        # phases read as fractions of it — not a double-counting sum.
        top_level = [
            entry["inclusive_seconds"]
            for path, entry in summary["spans"].items()
            if "/" not in path
        ]
        total = sum(top_level) if top_level else sum(summary["phases"].values())
        lines.append("")
        lines.append("phase time breakdown")
        width = max(len(name) for name in summary["phases"])
        for name, seconds in sorted(
            summary["phases"].items(), key=lambda kv: -kv[1]
        ):
            share = 100.0 * seconds / total if total > 0 else 0.0
            lines.append(
                f"  {name:<{width}s} {_format_seconds(seconds)} {share:5.1f}%"
            )

    if summary["health"]:
        lines.append("")
        lines.append("health events")
        for name, count in sorted(summary["health"].items()):
            lines.append(f"  {name:<16s} {count}")

    if summary["final"]:
        lines.append("")
        final = summary["final"]
        parts = [f"epoch {final.get('epoch', '?')}"]
        if "total" in final:
            parts.append(f"loss {final['total']:.4f}")
        if final.get("valid_rmse") is not None:
            parts.append(f"valid RMSE {final['valid_rmse']:.4f}")
        if "samples_per_sec" in final:
            parts.append(f"{final['samples_per_sec']:.1f} samples/s")
        if "rng" in final:
            parts.append(f"rng {final['rng']}")
        lines.append("final metrics: " + "  ".join(parts))

    if summary["alloc"]:
        alloc = summary["alloc"]
        hits = alloc.get("arena_hits", 0)
        misses = alloc.get("arena_misses", 0)
        requests = hits + misses
        hit_rate = hits / requests if requests else 0.0
        parts = [
            f"peak {_format_bytes(alloc.get('peak_bytes', 0))}/step",
            f"arena {hit_rate:.1%} hit ({hits}/{requests})",
            f"fused {alloc.get('fused_ops', 0)} ops",
            f"fwd {_format_bytes(alloc.get('graph_bytes', 0))}",
            f"bwd {_format_bytes(alloc.get('backward_bytes', 0))}",
        ]
        lines.append("allocation: " + "  ".join(parts))

    if summary["trials"]:
        lines.append("")
        lines.append("evaluation trials")
        for trial in summary["trials"]:
            lines.append(
                f"  {trial.get('method', '?'):<12s} trial {trial.get('trial', '?')} "
                f"(seed {trial.get('seed', '?')}): "
                f"RMSE {trial.get('rmse', float('nan')):.3f}  "
                f"MAE {trial.get('mae', float('nan')):.3f}"
            )

    if summary["workers"]:
        lines.append("")
        total_tasks = sum(summary["tasks"].values())
        lines.append(
            f"worker utilization ({len(summary['workers'])} workers, "
            f"{total_tasks} tasks, {summary['tasks'].get('error', 0)} errors)"
        )
        for worker, stats in sorted(summary["workers"].items(), key=lambda kv: str(kv[0])):
            lines.append(
                f"  worker {worker}: busy {stats['busy_seconds']:.2f}s  "
                f"idle {stats['idle_seconds']:.2f}s  "
                f"tasks {stats['tasks_done']}  "
                f"utilization {100.0 * stats['utilization']:.1f}%"
            )

    serving = summary["serving"]
    if serving["score_calls"] or serving["recommend_calls"]:
        lines.append("")
        lookups = serving["cache_hits"] + serving["cache_misses"]
        lines.append(
            f"serving engine ({serving['score_calls']} score calls, "
            f"{serving['recommend_calls']} recommend calls)"
        )
        lines.append(
            f"  pairs scored {serving['pairs']}  "
            f"cache hits {serving['cache_hits']}/{lookups} "
            f"({100.0 * serving['hit_rate']:.1f}%)"
        )
        lines.append(
            f"  latency p50 {serving['score_p50'] * 1000.0:.1f}ms  "
            f"p95 {serving['score_p95'] * 1000.0:.1f}ms  "
            f"throughput {serving['pairs_per_sec']:.0f} pairs/s"
        )
        if serving["recommend_calls"]:
            lines.append(
                f"  catalog ranking: {serving['items_ranked']} items "
                f"({serving['items_per_sec']:.0f} items/s)  "
                f"index encodes {serving['index_items']}"
            )
        if serving["users_encoded"]:
            lines.append(f"  users pre-encoded: {serving['users_encoded']}")

    tune = summary["tune"]
    if tune["trials"]:
        lines.append("")
        best = tune["best_trial"]
        header = f"hyperparameter tuning ({len(tune['trials'])} trials"
        if tune["rungs"]:
            header += f", {len(tune['rungs'])} rungs"
        if best is not None and tune["best_rmse"] is not None:
            header += f"; best trial {best} @ RMSE {tune['best_rmse']:.4f}"
        lines.append(header + ")")
        for rung in tune["rungs"]:
            lines.append(
                f"  rung {rung.get('rung', '?')} "
                f"(budget {rung.get('budget', '?')} epochs): "
                f"{len(rung.get('trials', []))} trials -> "
                f"promoted {len(rung.get('promoted', []))}, "
                f"killed {len(rung.get('killed', []))}"
            )
        # Figure-4-style sensitivity table: hyperparameter assignments
        # against validation RMSE at each rung budget.
        param_names = sorted(
            {name for entry in tune["trials"].values() for name in entry["params"]}
        )
        rung_ids = sorted(
            {r for entry in tune["trials"].values() for r in entry["rungs"]}
        )

        def _cell(value) -> str:
            if value is None:
                return "-"
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        rows = []
        for trial_id in sorted(tune["trials"]):
            entry = tune["trials"][trial_id]
            if best is not None and trial_id == best:
                status = "best"
            elif entry["killed_at"] is not None:
                status = f"killed@r{entry['killed_at']}"
            else:
                status = "finalist"
            rows.append(
                [str(trial_id)]
                + [_cell(entry["params"].get(name)) for name in param_names]
                + [_cell(entry["rungs"].get(r)) for r in rung_ids]
                + [status]
            )
        columns = ["trial"] + param_names + [f"r{r}" for r in rung_ids] + ["status"]
        widths = [
            max(len(columns[i]), *(len(row[i]) for row in rows))
            for i in range(len(columns))
        ]
        lines.append("  sensitivity table (validation RMSE per rung budget)")
        lines.append(
            "  " + "  ".join(col.rjust(w) for col, w in zip(columns, widths))
        )
        for row in rows:
            lines.append(
                "  " + "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )

    ann = summary["ann"]
    if ann["builds"] or ann["probes"]:
        lines.append("")
        lines.append(
            f"ann retrieval ({ann['builds']} index builds, "
            f"{ann['probes']} probes)"
        )
        if ann["builds"]:
            ratio = (
                ann["float32_bytes"] / ann["store_bytes"]
                if ann["store_bytes"]
                else 0.0
            )
            lines.append(
                f"  coarse index: nlist {ann['nlist']}  "
                f"store {ann['store'] or '?'} "
                f"({ann['store_bytes']} bytes, {ratio:.1f}x vs float32)  "
                f"build {ann['build_seconds']:.2f}s"
            )
        if ann["probes"]:
            lines.append(
                f"  candidates scored: {ann['candidates']}/"
                f"{ann['catalog_scanned']} catalog rows "
                f"({100.0 * ann['scan_fraction']:.1f}% scanned)  "
                f"probe p50 {ann['probe_p50'] * 1000.0:.1f}ms  "
                f"p95 {ann['probe_p95'] * 1000.0:.1f}ms"
            )
        if ann["recall"] is not None:
            lines.append(
                f"  measured recall@{ann['recall_k']}: {ann['recall']:.3f}"
            )

    daemon = summary["daemon"]
    if daemon["started"]:
        lines.append("")
        lines.append(
            f"serving daemon ({daemon['workers']} workers, "
            f"catalog {daemon['catalog']})"
        )
        lines.append(
            f"  requests {daemon['received']}  ok {daemon['completed']}  "
            f"shed {daemon['shed']}  timeouts {daemon['timeouts']}  "
            f"errors {daemon['errors']}"
        )
        if daemon["deaths"] or daemon["stall_kills"] or daemon["degrades"]:
            lines.append(
                f"  chaos absorbed: deaths {daemon['deaths']} "
                f"(requeued {daemon['requeues']})  "
                f"stall kills {daemon['stall_kills']}  "
                f"degrades {daemon['degrades']} "
                f"(max level {daemon['max_level']})"
            )
    if daemon["dropped_lines"]:
        shards = ", ".join(daemon["truncated_shards"])
        prefix = "  " if daemon["started"] else ""
        if not daemon["started"]:
            lines.append("")
        lines.append(
            f"{prefix}telemetry loss: {daemon['dropped_lines']} torn "
            f"line(s) dropped from {shards}"
        )

    if summary["checkpoints"]:
        lines.append("")
        lines.append(f"checkpoints written: {summary['checkpoints']}")
    return "\n".join(lines)
