"""Hierarchical tracing spans: nested wall-clock with exclusive time.

:class:`SpanTracer` subsumes the flat ``repro.perf.PerfRegistry``: where the
registry keeps one ``(seconds, calls)`` pair per name, the tracer keeps a
*tree* keyed by the span path (e.g. ``epoch/forward``), so a run summary can
show both how long each phase took in total and where inside the run it was
spent. Exclusive time — a span's inclusive wall-clock minus its children's —
is derived at summary time, which keeps the enter/exit hot path to a couple
of dict operations.

Re-entrant spans are handled the way the fixed ``PerfRegistry.section`` is:
per-name totals accumulate only at nesting depth 0, so ``span("forward")``
inside ``span("forward")`` never double-counts the same wall-clock.

The trainer times each phase once and feeds the *same* measured duration to
both the tracer (:meth:`SpanTracer.enter` / :meth:`SpanTracer.exit`) and the
legacy registry, so their per-phase totals agree exactly.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["SpanTracer"]

#: Separator for rendering span paths ("epoch/forward").
PATH_SEP = "/"


class SpanTracer:
    """Accumulates a tree of ``{span path: (inclusive seconds, calls)}``."""

    def __init__(self) -> None:
        self._stack: list[str] = []
        self._inclusive: dict[tuple[str, ...], float] = {}
        self._calls: dict[tuple[str, ...], int] = {}
        self._depth: dict[str, int] = {}
        self._totals: dict[str, float] = {}
        self._total_calls: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def enter(self, name: str) -> tuple[str, ...]:
        """Open a span named ``name`` under the currently-open spans.

        Returns the span's path token; pass it (with the measured duration)
        to :meth:`exit`. Use this two-call form when the caller owns the
        timing — e.g. to feed one measurement to several consumers — and
        :meth:`span` when the tracer should time the block itself.
        """
        self._stack.append(name)
        self._depth[name] = self._depth.get(name, 0) + 1
        return tuple(self._stack)

    def exit(self, token: tuple[str, ...], elapsed: float) -> None:
        """Close the span opened as ``token``, crediting ``elapsed`` seconds."""
        if not self._stack or tuple(self._stack) != token:
            raise RuntimeError(
                f"span exit out of order: closing {PATH_SEP.join(token)!r} but "
                f"open stack is {PATH_SEP.join(self._stack)!r}"
            )
        name = self._stack.pop()
        depth = self._depth[name] - 1
        self._depth[name] = depth
        self._inclusive[token] = self._inclusive.get(token, 0.0) + elapsed
        self._calls[token] = self._calls.get(token, 0) + 1
        self._total_calls[name] = self._total_calls.get(name, 0) + 1
        if depth == 0:
            self._totals[name] = self._totals.get(name, 0.0) + elapsed

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time the enclosed block as a child of the currently-open spans."""
        token = self.enter(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            self.exit(token, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def totals(self) -> dict[str, float]:
        """Per-name wall-clock totals, depth-0 only (PerfRegistry-comparable)."""
        return dict(self._totals)

    def call_counts(self) -> dict[str, int]:
        """Per-name call counts (every entry, including re-entrant ones)."""
        return dict(self._total_calls)

    def summary(self) -> dict[str, dict[str, float]]:
        """``{path: {"calls", "inclusive_seconds", "exclusive_seconds"}}``.

        ``exclusive_seconds`` is the path's inclusive time minus the
        inclusive time of its direct children — the time spent in the span
        itself rather than in any traced sub-phase.
        """
        children_total: dict[tuple[str, ...], float] = {}
        for path, seconds in self._inclusive.items():
            if len(path) > 1:
                parent = path[:-1]
                children_total[parent] = children_total.get(parent, 0.0) + seconds
        return {
            PATH_SEP.join(path): {
                "calls": self._calls[path],
                "inclusive_seconds": seconds,
                "exclusive_seconds": seconds - children_total.get(path, 0.0),
            }
            for path, seconds in sorted(self._inclusive.items())
        }

    def tree(self) -> dict:
        """Nested ``{name: {"seconds", "calls", "children": {...}}}`` view."""
        root: dict = {}
        for path, seconds in sorted(self._inclusive.items()):
            level = root
            for part in path[:-1]:
                level = level.setdefault(
                    part, {"seconds": 0.0, "calls": 0, "children": {}}
                )["children"]
            node = level.setdefault(
                path[-1], {"seconds": 0.0, "calls": 0, "children": {}}
            )
            node["seconds"] += seconds
            node["calls"] += self._calls[path]
        return root

    def reset(self) -> None:
        """Drop all spans (any open spans are abandoned)."""
        self._stack.clear()
        self._inclusive.clear()
        self._calls.clear()
        self._depth.clear()
        self._totals.clear()
        self._total_calls.clear()
