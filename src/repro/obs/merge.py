"""Merge per-worker telemetry shards into one schema-valid ``run.jsonl``.

The parallel engine gives every worker process its own shard —
``run-w<worker>g<generation>.jsonl`` — because concurrent appends to one
file would interleave torn lines. After a run, :func:`merge_shards`
folds the shards into the single ``run.jsonl`` that
:func:`repro.obs.validate_run_file` and ``repro report`` expect.

Ordering contract: events are merged by timestamp for readability, but
the *schema* invariant — ``seq`` strictly increasing per run id — only
needs per-shard order to be preserved, since every run id lives in
exactly one shard (worker run ids encode worker + generation). Worker
clocks can be slightly non-monotone across processes, so each shard's
timestamps are monotonicized (running max) for the merge key; ties break
by shard order then position, keeping the merge deterministic.

The merged file ends with one ``merge`` event (run id ``merge``)
recording the census, so a report can tell a merged stream from a native
single-process one.

Crashed workers: a worker killed mid-append (SIGKILL, an injected death,
a chaos run) leaves a torn final line in its shard. The merge must not
fail on it — and must not hide it either: the torn tail is dropped with a
``UserWarning``, and the ``merge`` event carries ``truncated_shards`` and
``dropped_lines`` so downstream reports can state exactly what telemetry
was lost. Malformed lines anywhere *else* in a shard are still corruption
and still raise.
"""

from __future__ import annotations

import heapq
import json
import os
import time
import warnings
from pathlib import Path

from ..atomicio import LineAppender
from .telemetry import DEFAULT_FILENAME, read_events

__all__ = [
    "SHARD_GLOB",
    "find_shards",
    "merged_events",
    "merge_shards",
    "shard_truncation",
]

#: Shard filenames written by ``repro.parallel.engine`` workers.
SHARD_GLOB = "run-*.jsonl"


def find_shards(directory: str | os.PathLike) -> list[Path]:
    """Worker telemetry shards in ``directory``, in stable name order."""
    directory = Path(directory)
    return sorted(
        path for path in directory.glob(SHARD_GLOB)
        if path.name != DEFAULT_FILENAME
    )


def shard_truncation(path: str | os.PathLike) -> int:
    """Torn trailing lines in a shard's active segment (0 or 1).

    A worker killed mid-append leaves at most one partial line at the end
    of the file it was writing; :func:`read_events` silently skips it, and
    this reports whether it did so the merge can account for the loss.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for line in reversed(lines):
        if not line.strip():
            continue
        try:
            json.loads(line)
            return 0
        except json.JSONDecodeError:
            return 1
    return 0


def _monotonic_events(path: Path, shard_index: int):
    """Yield (merge_key, event) with per-shard running-max timestamps."""
    running = float("-inf")
    for position, event in enumerate(read_events(path)):
        running = max(running, float(event.get("ts", running)))
        yield (running, shard_index, position), event


def merged_events(directory: str | os.PathLike) -> list[dict]:
    """The time-merged event stream of every shard in ``directory``.

    Raises ``FileNotFoundError`` when the directory holds no shards.
    This is the in-memory form of :func:`merge_shards` — ``repro report``
    uses it to summarize a shard directory that was never merged (e.g.
    a run that crashed before the merge step).
    """
    directory = Path(directory)
    shards = find_shards(directory)
    if not shards:
        raise FileNotFoundError(f"{directory}: no telemetry shards ({SHARD_GLOB})")
    streams = [
        _monotonic_events(path, index) for index, path in enumerate(shards)
    ]
    return [event for _, event in heapq.merge(*streams)]


def merge_shards(
    directory: str | os.PathLike,
    output: str | os.PathLike | None = None,
) -> Path:
    """Merge every shard in ``directory`` into one ``run.jsonl``.

    Returns the output path. Raises ``FileNotFoundError`` when the
    directory holds no shards — merging nothing would otherwise emit an
    empty file that downstream validation rejects confusingly.
    """
    directory = Path(directory)
    shards = find_shards(directory)
    output_path = Path(output) if output is not None else directory / DEFAULT_FILENAME
    merged = merged_events(directory)
    truncated = [path for path in shards if shard_truncation(path)]
    for path in truncated:
        warnings.warn(
            f"{path}: dropped a torn final line (worker died mid-append); "
            f"its last telemetry event is lost",
            UserWarning,
            stacklevel=2,
        )

    output_path.unlink(missing_ok=True)  # re-merge replaces, never appends
    appender = LineAppender(output_path, max_bytes=None)
    try:
        for event in merged:
            appender.append(json.dumps(event, sort_keys=True))
        appender.append(
            json.dumps(
                {
                    "seq": 0,
                    "ts": time.time(),
                    "run": "merge",
                    "kind": "merge",
                    "shards": [path.name for path in shards],
                    "events": len(merged),
                    "truncated_shards": [path.name for path in truncated],
                    "dropped_lines": len(truncated),
                },
                sort_keys=True,
            )
        )
    finally:
        appender.close()
    return output_path
