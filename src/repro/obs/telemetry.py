"""Per-run telemetry sink: structured events streamed to ``run.jsonl``.

One :class:`TelemetrySink` owns one run's event stream. Every event is a
single JSON object on its own line with four base fields — ``seq`` (dense,
monotone), ``ts`` (unix seconds), ``run`` (the run id), and ``kind`` — plus
kind-specific payload fields (see :mod:`repro.obs.schema`). Lines go through
:class:`repro.atomicio.LineAppender`, so a crash tears at most the final
line and size-based rotation keeps unbounded runs bounded on disk.

Emitters do not take a sink parameter through every call chain. Instead a
process-local *active sink* stack (:func:`use_sink` / :func:`emit_event`)
lets leaf code — checkpoint writers, dataset loaders, the experiment
protocol — publish events whenever some enclosing scope installed a sink,
and stay silent (one list lookup) otherwise.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

import numpy as np

__all__ = [
    "TelemetrySink",
    "emit_event",
    "get_active_sink",
    "read_events",
    "use_sink",
]

DEFAULT_FILENAME = "run.jsonl"
#: Rotation threshold for the active segment (8 MiB).
DEFAULT_MAX_BYTES = 8 * 1024 * 1024


def _json_default(value):
    """Make numpy scalars/arrays and paths JSON-serializable in events."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, os.PathLike):
        return str(value)
    raise TypeError(f"cannot serialize {type(value).__name__} in a telemetry event")


class TelemetrySink:
    """Appends structured run events to ``<directory>/run.jsonl``."""

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        filename: str = DEFAULT_FILENAME,
        run_id: str | None = None,
        max_bytes: int | None = DEFAULT_MAX_BYTES,
        max_files: int = 3,
    ) -> None:
        from ..atomicio import LineAppender  # local import: keep module light

        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / filename
        self.run_id = run_id if run_id is not None else f"run-{os.getpid():05d}"
        self._appender = LineAppender(
            self.path, max_bytes=max_bytes, max_files=max_files
        )
        self._seq = 0
        self._closed = False

    @property
    def event_count(self) -> int:
        """Events emitted through this sink so far."""
        return self._seq

    def emit(self, kind: str, **fields) -> dict:
        """Append one event; returns the event dict as written."""
        if self._closed:
            raise RuntimeError(f"telemetry sink for {self.path} is closed")
        event = {"seq": self._seq, "ts": time.time(), "run": self.run_id, "kind": kind}
        event.update(fields)
        self._appender.append(
            json.dumps(event, sort_keys=True, default=_json_default)
        )
        self._seq += 1
        return event

    def flush(self, fsync: bool = False) -> None:
        """Flush buffered events to the OS (and optionally to disk)."""
        self._appender.flush(fsync=fsync)

    def close(self) -> None:
        """Durably flush and close the stream (idempotent)."""
        self._appender.close()
        self._closed = True

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Active-sink stack (ambient emission for leaf modules)
# ----------------------------------------------------------------------
_ACTIVE_SINKS: list[TelemetrySink] = []


def get_active_sink() -> TelemetrySink | None:
    """Innermost sink installed by :func:`use_sink` (None when none is)."""
    return _ACTIVE_SINKS[-1] if _ACTIVE_SINKS else None


@contextmanager
def use_sink(sink: TelemetrySink | None) -> Iterator[TelemetrySink | None]:
    """Install ``sink`` as the active sink for the block (None is a no-op)."""
    if sink is None:
        yield None
        return
    _ACTIVE_SINKS.append(sink)
    try:
        yield sink
    finally:
        _ACTIVE_SINKS.pop()


def emit_event(kind: str, **fields) -> dict | None:
    """Emit to the active sink, if any; returns the event or None."""
    sink = get_active_sink()
    if sink is None:
        return None
    return sink.emit(kind, **fields)


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
def read_events(
    path: str | os.PathLike, include_rotated: bool = True
) -> list[dict]:
    """Parse a ``run.jsonl`` (plus rotated segments, oldest first).

    A torn *final* line of the active segment — the one partial write a
    crash can leave behind — is skipped. A malformed line anywhere else
    raises ``ValueError``: that is corruption, not a torn tail.
    """
    path = Path(path)
    segments: list[Path] = []
    if include_rotated:
        index = 1
        rotated = []
        while True:
            candidate = path.with_name(f"{path.name}.{index}")
            if not candidate.exists():
                break
            rotated.append(candidate)
            index += 1
        segments.extend(reversed(rotated))  # highest suffix = oldest
    segments.append(path)

    events: list[dict] = []
    for segment in segments:
        lines = segment.read_text(encoding="utf-8").splitlines()
        is_active = segment == path
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as error:
                if is_active and number == len(lines):
                    break  # torn tail from a crash mid-append: tolerated
                raise ValueError(
                    f"{segment}:{number}: malformed telemetry event ({error})"
                ) from error
    return events
