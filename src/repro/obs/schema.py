"""Telemetry event schema: the contract a ``run.jsonl`` must honor.

Every event carries the base fields written by
:class:`repro.obs.TelemetrySink` — ``seq`` (int, strictly increasing per
run id), ``ts`` (number), ``run`` (str), ``kind`` (str) — and each known
kind additionally requires the payload fields listed in :data:`EVENT_FIELDS`.
Extra fields are always allowed (events are forward-extensible); unknown
kinds and missing required fields are not.

:func:`validate_run_file` is what the CI observability job (and the
integration tests) run against an emitted telemetry file: it parses every
event, checks each against the schema, verifies the per-run ``seq``
ordering, and returns a small census of what the run contained.
"""

from __future__ import annotations

import os
from collections import Counter

from .telemetry import read_events

__all__ = [
    "EVENT_FIELDS",
    "TelemetrySchemaError",
    "validate_event",
    "validate_run_file",
]


class TelemetrySchemaError(ValueError):
    """An event (or a run file) violates the telemetry schema."""


#: Required payload fields per event kind (base fields are always required).
EVENT_FIELDS: dict[str, tuple[str, ...]] = {
    # Run lifecycle (trainer)
    "run_start": ("seed", "epochs", "train_interactions"),
    "batch": ("epoch", "batch", "loss", "grad_norm", "lr"),
    "epoch": ("epoch", "seconds", "samples", "samples_per_sec", "total"),
    "health": ("epoch", "health_kind"),
    "span_summary": ("totals", "spans"),
    "metrics_summary": ("counters", "gauges", "histograms"),
    "run_end": ("status", "epochs_trained"),
    # Checkpoint lifecycle (repro.core.checkpoint)
    "checkpoint_write": ("path", "epoch"),
    "checkpoint_read": ("path", "epoch"),
    "checkpoint_prune": ("removed",),
    # Evaluation protocol (repro.eval.protocol)
    "trial": ("method", "trial", "seed", "rmse", "mae"),
    "experiment": ("method", "scenario", "rmse", "mae", "trials"),
    # Dataset I/O (repro.data.io)
    "dataset_load": ("path", "domain", "records"),
    "dataset_save": ("path", "domain", "records"),
    # Parallel engine (repro.parallel.engine / repro.obs.merge)
    "worker_start": ("worker", "generation"),
    "worker_end": ("worker", "busy_seconds", "idle_seconds", "tasks_done"),
    "task": ("task", "worker", "method", "scenario", "status", "seconds"),
    "merge": ("shards", "events"),
    # Generic preemptible task pool (repro.parallel.pool)
    "pool_task": ("task", "worker", "status", "seconds"),
    # Hyperparameter tuner (repro.tune)
    "tune_trial": ("trial", "rung", "status"),
    "tune_rung": ("rung", "budget", "trials", "promoted", "killed"),
    "tune_result": ("best_trial", "best_rmse", "trials"),
    # Serving engine (repro.serve.engine)
    "serve_index": ("items", "catalog", "seconds"),
    "serve_encode_users": ("users", "seconds"),
    "serve_score": ("pairs", "seconds", "cache_hits", "cache_misses"),
    "serve_recommend": ("user", "k", "catalog", "seconds"),
    # Approximate retrieval (repro.serve.ann via the engine)
    "serve_ann_build": ("items", "nlist", "iters", "store", "seconds"),
    "serve_ann_probe": ("user", "k", "nprobe", "candidates", "catalog", "seconds"),
    "serve_ann_recall": ("users", "k", "recall"),
    # Serving daemon (repro.serve.daemon)
    "daemon_start": ("workers", "catalog", "port"),
    "daemon_worker_ready": ("slot", "generation"),
    "daemon_worker_death": ("slot", "generation", "exitcode", "requeued"),
    "daemon_requeue": ("job", "slot", "attempt"),
    "daemon_stall_kill": ("slot", "generation", "age_seconds"),
    "daemon_degrade": ("level", "previous", "depth"),
    "daemon_stats": ("received", "completed", "shed", "timeouts", "errors", "depth", "level"),
    "daemon_stop": ("received", "completed", "shed", "timeouts", "errors", "deaths"),
}

_BASE_FIELDS = ("seq", "ts", "run", "kind")


def validate_event(event: object) -> dict:
    """Check one event against the schema; returns it on success."""
    if not isinstance(event, dict):
        raise TelemetrySchemaError(f"event is not a JSON object: {event!r}")
    for name in _BASE_FIELDS:
        if name not in event:
            raise TelemetrySchemaError(f"event missing base field {name!r}: {event!r}")
    if not isinstance(event["seq"], int) or isinstance(event["seq"], bool):
        raise TelemetrySchemaError(f"seq must be an integer: {event['seq']!r}")
    if event["seq"] < 0:
        raise TelemetrySchemaError(f"seq must be non-negative: {event['seq']!r}")
    if not isinstance(event["ts"], (int, float)) or isinstance(event["ts"], bool):
        raise TelemetrySchemaError(f"ts must be a number: {event['ts']!r}")
    if not isinstance(event["run"], str) or not event["run"]:
        raise TelemetrySchemaError(f"run must be a non-empty string: {event['run']!r}")
    kind = event["kind"]
    if kind not in EVENT_FIELDS:
        raise TelemetrySchemaError(
            f"unknown event kind {kind!r} (known: {', '.join(sorted(EVENT_FIELDS))})"
        )
    missing = [name for name in EVENT_FIELDS[kind] if name not in event]
    if missing:
        raise TelemetrySchemaError(
            f"event kind {kind!r} missing required field(s): {', '.join(missing)}"
        )
    return event


def validate_run_file(path: str | os.PathLike) -> dict:
    """Validate every event in a telemetry file (plus rotated segments).

    Returns ``{"events": total, "runs": n, "kinds": {kind: count}}``.
    Raises :class:`TelemetrySchemaError` on any schema violation, including
    a non-increasing ``seq`` within one run id, and ``ValueError`` on a
    malformed line that is not the tolerated torn tail.
    """
    events = read_events(path)
    if not events:
        raise TelemetrySchemaError(f"{path}: no telemetry events")
    last_seq: dict[str, int] = {}
    kinds: Counter[str] = Counter()
    for position, event in enumerate(events):
        try:
            validate_event(event)
        except TelemetrySchemaError as error:
            raise TelemetrySchemaError(f"{path}: event {position}: {error}") from None
        run = event["run"]
        if run in last_seq and event["seq"] <= last_seq[run]:
            raise TelemetrySchemaError(
                f"{path}: event {position}: seq {event['seq']} not increasing "
                f"for run {run!r} (previous {last_seq[run]})"
            )
        last_seq[run] = event["seq"]
        kinds[event["kind"]] += 1
    return {"events": len(events), "runs": len(last_seq), "kinds": dict(kinds)}
