"""``repro.obs`` — structured observability for training and evaluation.

Four pieces, composable but separable:

* :class:`MetricsRegistry` — counters / gauges / histograms updated on the
  training hot path (batch loss, grad norm, learning rate, samples/s,
  RNG-stream checksums);
* :class:`SpanTracer` — hierarchical wall-clock spans with inclusive and
  exclusive time, subsuming the flat ``repro.perf.PerfRegistry``;
* :class:`TelemetrySink` — one run's append-only ``run.jsonl`` event
  stream (crash-tolerant line appends, size-based rotation), with an
  ambient active-sink stack (:func:`use_sink` / :func:`emit_event`) so
  leaf modules can publish without plumbing;
* the schema (:func:`validate_event` / :func:`validate_run_file`) and the
  report renderer (:func:`render_report`) behind ``repro report``.
"""

from .merge import find_shards, merge_shards, merged_events
from .metrics import MetricsRegistry
from .report import load_run_events, render_report, summarize_run
from .schema import (
    EVENT_FIELDS,
    TelemetrySchemaError,
    validate_event,
    validate_run_file,
)
from .telemetry import (
    TelemetrySink,
    emit_event,
    get_active_sink,
    read_events,
    use_sink,
)
from .tracing import SpanTracer

__all__ = [
    "MetricsRegistry",
    "SpanTracer",
    "TelemetrySink",
    "emit_event",
    "get_active_sink",
    "use_sink",
    "read_events",
    "EVENT_FIELDS",
    "TelemetrySchemaError",
    "validate_event",
    "validate_run_file",
    "load_run_events",
    "summarize_run",
    "render_report",
    "find_shards",
    "merged_events",
    "merge_shards",
]
