"""Run metrics: counters, gauges, and streaming histograms.

The :class:`MetricsRegistry` is the in-memory side of the observability
layer. The trainer feeds it per-batch (loss, gradient norm, learning rate)
and per-epoch (throughput, validation RMSE, RNG-stream checksum) values;
at run end its :meth:`~MetricsRegistry.snapshot` is emitted into the
telemetry stream as one ``metrics_summary`` event.

Design constraints, in order: updates must be cheap enough to sit on the
training hot path (a dict lookup and a couple of float ops), the state must
be JSON-serializable as-is, and histograms must stay bounded — they keep
exact streaming aggregates (count/sum/min/max/last) plus a fixed-size
window of recent observations for percentile estimates.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["MetricsRegistry"]

#: Observations retained per histogram for percentile estimation.
_WINDOW = 512


class _Histogram:
    """Streaming aggregate of one observed series."""

    __slots__ = ("count", "total", "minimum", "maximum", "last", "recent")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.last = float("nan")
        self.recent: deque[float] = deque(maxlen=_WINDOW)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.last = value
        self.recent.append(value)

    def summary(self) -> dict[str, float]:
        window = np.asarray(self.recent, dtype=np.float64)
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.total / self.count,
            "last": self.last,
            "p50": float(np.percentile(window, 50)),
            "p95": float(np.percentile(window, 95)),
        }


class MetricsRegistry:
    """Named counters (monotone), gauges (last value), and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float | str] = {}
        self._histograms: dict[str, _Histogram] = {}

    # ------------------------------------------------------------------
    # Updates (hot path)
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` (non-negative) to counter ``name``."""
        if value < 0:
            raise ValueError(f"counter {name!r} increment must be non-negative")
        self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float | str) -> None:
        """Record the current value of ``name`` (numbers, or short strings
        for identity-style gauges like RNG-stream checksums)."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Add one observation to histogram ``name``."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = _Histogram()
        hist.observe(float(value))

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current counter value (0.0 when never incremented)."""
        return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> float | str | None:
        """Current gauge value (None when never set)."""
        return self._gauges.get(name)

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready state: ``{"counters", "gauges", "histograms"}``."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: hist.summary() for name, hist in self._histograms.items()
            },
        }

    def reset(self) -> None:
        """Drop all recorded state."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
