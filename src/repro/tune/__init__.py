"""Deterministic distributed hyperparameter tuning (``repro tune``).

The tuner searches over :class:`~repro.core.config.OmniMatchConfig`
fields with rung-synchronous successive halving (the deterministic
flavour of ASHA): a declarative search space (:mod:`~repro.tune.space`)
expands into an ordered trial list, rungs fan over the
:class:`~repro.parallel.pool.TaskPool`, the scheduler
(:mod:`~repro.tune.scheduler`) ranks each rung from the validation-RMSE
stream in the telemetry shards, losing trials are killed at the barrier,
and promoted trials resume from their checkpoints — never recomputing an
epoch. Same spec + seed ⇒ same schedule, same kills, byte-identical
``best_config.json``.
"""

from .runner import TuneError, TuneResult, run_tuning, trained_epoch_census
from .scheduler import (
    GridScheduler,
    RungDecision,
    SuccessiveHalving,
    make_scheduler,
)
from .space import SearchSpaceError, TrialSpec, enumerate_trials, parse_space
from .worker import TrialTaggedSink, run_rung

__all__ = [
    "GridScheduler",
    "RungDecision",
    "SearchSpaceError",
    "SuccessiveHalving",
    "TrialSpec",
    "TrialTaggedSink",
    "TuneError",
    "TuneResult",
    "enumerate_trials",
    "make_scheduler",
    "parse_space",
    "run_rung",
    "run_tuning",
    "trained_epoch_census",
]
