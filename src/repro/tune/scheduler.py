"""Rung-synchronous successive halving (the deterministic core of ASHA).

Budgets grow geometrically — ``min_epochs * eta^k``, capped at
``max_epochs`` — and every trial alive at rung *r* trains to the same
cumulative epoch budget before any decision is made. At the rung barrier
the scheduler ranks trials by validation RMSE and promotes the top
``max(1, n // eta)``; the rest are killed (their checkpoints stay on disk,
so a killed trial can always be resumed by a later, wider search).

The *asynchronous* variant of ASHA promotes as soon as enough results
arrive, which makes the promotion set depend on worker timing. We
deliberately run rung-synchronously instead: trials within a rung still
execute concurrently across the pool, but decisions happen only at
barriers, so the same ``(spec, seed)`` always produces the same schedule,
the same kills, and the same best config — the repo-wide bit-determinism
contract. Ties rank by ``(rmse, trial_id)`` and a NaN RMSE ranks last, so
even pathological trials order deterministically.

``GridScheduler`` is the degenerate one-rung case (every trial trains the
full budget, nothing is killed): the exhaustive-search baseline that
``benchmarks/test_tuning.py`` compares ASHA against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

__all__ = ["GridScheduler", "RungDecision", "SuccessiveHalving", "make_scheduler"]


@dataclass(frozen=True)
class RungDecision:
    """Outcome of one rung barrier.

    ``ranked`` lists the rung's trials best-first; ``promoted`` is its
    prefix that advances to the next rung, ``killed`` the suffix that
    stops. On the final rung nothing is promoted or killed — ``ranked[0]``
    is the winner.
    """

    rung: int
    budget: int
    ranked: tuple[int, ...]
    promoted: tuple[int, ...]
    killed: tuple[int, ...]


def _rank(scores: Mapping[int, float]) -> tuple[int, ...]:
    """Trial ids best-first: (NaN last, RMSE asc, trial id asc)."""

    def key(trial_id: int):
        rmse = scores[trial_id]
        bad = rmse is None or math.isnan(rmse)
        return (bad, float("inf") if bad else float(rmse), trial_id)

    return tuple(sorted(scores, key=key))


class SuccessiveHalving:
    """Budget ladder + promotion rule (see module docstring)."""

    name = "asha"

    def __init__(self, min_epochs: int = 1, max_epochs: int = 9, eta: int = 3):
        if min_epochs < 1:
            raise ValueError("min_epochs must be >= 1")
        if max_epochs < min_epochs:
            raise ValueError("max_epochs must be >= min_epochs")
        if eta < 2:
            raise ValueError("eta must be >= 2")
        self.min_epochs = min_epochs
        self.max_epochs = max_epochs
        self.eta = eta
        budgets = []
        budget = min_epochs
        while budget < max_epochs:
            budgets.append(budget)
            budget = min(budget * eta, max_epochs)
        budgets.append(max_epochs)
        #: Cumulative epoch budget per rung (strictly increasing).
        self.budgets: tuple[int, ...] = tuple(budgets)

    @property
    def num_rungs(self) -> int:
        return len(self.budgets)

    def decide(self, rung: int, scores: Mapping[int, float]) -> RungDecision:
        """Rank a completed rung and split it into promoted / killed."""
        if not 0 <= rung < self.num_rungs:
            raise ValueError(f"rung {rung} out of range [0, {self.num_rungs})")
        if not scores:
            raise ValueError(f"rung {rung}: no trial scores to rank")
        ranked = _rank(scores)
        if rung == self.num_rungs - 1:
            return RungDecision(
                rung=rung, budget=self.budgets[rung], ranked=ranked,
                promoted=(), killed=(),
            )
        keep = max(1, len(ranked) // self.eta)
        return RungDecision(
            rung=rung, budget=self.budgets[rung], ranked=ranked,
            promoted=ranked[:keep], killed=ranked[keep:],
        )

    def describe(self) -> dict:
        """JSON-friendly identity for the best-config artifact."""
        return {
            "name": self.name, "min_epochs": self.min_epochs,
            "max_epochs": self.max_epochs, "eta": self.eta,
            "budgets": list(self.budgets),
        }


class GridScheduler:
    """Exhaustive search: one rung at the full budget, no kills."""

    name = "grid"

    def __init__(self, max_epochs: int = 9):
        if max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")
        self.max_epochs = max_epochs
        self.budgets: tuple[int, ...] = (max_epochs,)

    @property
    def num_rungs(self) -> int:
        return 1

    def decide(self, rung: int, scores: Mapping[int, float]) -> RungDecision:
        if rung != 0:
            raise ValueError("grid search has exactly one rung")
        if not scores:
            raise ValueError("rung 0: no trial scores to rank")
        return RungDecision(
            rung=0, budget=self.max_epochs, ranked=_rank(scores),
            promoted=(), killed=(),
        )

    def describe(self) -> dict:
        return {
            "name": self.name, "max_epochs": self.max_epochs,
            "budgets": list(self.budgets),
        }


def make_scheduler(
    name: str, *, min_epochs: int = 1, max_epochs: int = 9, eta: int = 3
):
    """Build a scheduler by name: ``"asha"`` or ``"grid"``."""
    if name == "asha":
        return SuccessiveHalving(
            min_epochs=min_epochs, max_epochs=max_epochs, eta=eta
        )
    if name == "grid":
        return GridScheduler(max_epochs=max_epochs)
    raise ValueError(f"unknown scheduler {name!r} (use 'asha' or 'grid')")
