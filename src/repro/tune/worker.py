"""Budgeted rung execution: what one tuner task runs inside a pool worker.

:func:`run_rung` trains one trial up to its rung's *cumulative* epoch
budget. Rung 0 starts fresh; every later rung **resumes from the trial's
newest checkpoint** (written by the previous rung at its final epoch) and
trains only the marginal epochs — a promoted trial never recomputes an
epoch it already paid for. Early stopping is disabled in trial configs
(the scheduler owns stopping), ``validate_every=1`` records validation
RMSE every epoch, and the pool's ``should_stop`` hook is wired through to
``fit(stop_check=...)`` so a parent-side cancel preempts the trial at an
epoch boundary with its checkpoint intact.

Telemetry is the load-bearing result path: every event the trainer emits
during the rung is stamped with ``trial``/``rung`` by
:class:`TrialTaggedSink`, and the rung ends with a ``tune_trial`` event
carrying the final validation RMSE and the per-epoch curve. The scheduler
ranks rungs by reading those events back out of the worker shards — the
function's return value is transport metadata only.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from ..core import OmniMatchConfig, OmniMatchTrainer
from ..data import ColdStartSplit, CrossDomainDataset
from ..data.batching import DocumentStore
from ..parallel.pool import TaskContext
from ..parallel.sharing import (
    SharedDatasetRef,
    SharedStoreRef,
    attach_dataset,
    attach_document_store,
)

__all__ = ["TrialTaggedSink", "run_rung"]

#: Per-process cache of attached shared-memory datasets (keyed by segment
#: name); a worker runs many rungs against the same world.
_DATASET_CACHE: dict[str, CrossDomainDataset] = {}


class TrialTaggedSink:
    """Stamp ``trial``/``rung`` into every event written to a shard sink.

    Worker shards interleave events from many rung tasks; the tags are
    what lets the scheduler (and the report's sensitivity table) attribute
    each ``epoch`` event to its trial afterwards. ``close`` only flushes —
    the pool owns the underlying shard sink's lifetime.
    """

    def __init__(self, sink, trial: int, rung: int) -> None:
        self._sink = sink
        self.trial = trial
        self.rung = rung

    def emit(self, kind: str, **fields):
        fields.setdefault("trial", self.trial)
        fields.setdefault("rung", self.rung)
        return self._sink.emit(kind, **fields)

    def flush(self, fsync: bool = False) -> None:
        self._sink.flush(fsync=fsync)

    def close(self) -> None:
        self._sink.flush()


def _resolve_dataset(ref: "SharedDatasetRef | CrossDomainDataset") -> CrossDomainDataset:
    if isinstance(ref, SharedDatasetRef):
        cached = _DATASET_CACHE.get(ref.shm.name)
        if cached is None:
            if len(_DATASET_CACHE) >= 2:
                _DATASET_CACHE.clear()
            cached = attach_dataset(ref)
            _DATASET_CACHE[ref.shm.name] = cached
        return cached
    return ref


def run_rung(
    ctx: TaskContext,
    *,
    trial_id: int,
    rung: int,
    budget: int,
    config: OmniMatchConfig,
    dataset_ref: "SharedDatasetRef | CrossDomainDataset",
    store_ref: "SharedStoreRef | DocumentStore | None",
    split: ColdStartSplit,
    trial_dir: str,
    resume: bool,
) -> dict[str, Any]:
    """Train ``trial_id`` to cumulative epoch ``budget``; checkpoint at the end.

    Returns ``{"trial", "rung", "epochs", "valid_rmse", "resumed_from"}``
    — metadata for bookkeeping. The authoritative RMSE travels through the
    telemetry shard (``tune_trial`` event).
    """
    dataset = _resolve_dataset(dataset_ref)
    store = None
    attached_pack = None
    if isinstance(store_ref, SharedStoreRef):
        store = attach_document_store(store_ref, dataset, split)
        attached_pack = store.attached_pack
    elif store_ref is not None:
        store = store_ref

    tagged = (
        TrialTaggedSink(ctx.sink, trial_id, rung) if ctx.sink is not None else None
    )
    try:
        trainer = OmniMatchTrainer(
            dataset, split, config, telemetry=tagged, store=store
        )
        result = trainer.fit(
            budget,
            validate_every=1,
            resume_from=trial_dir if resume else None,
            checkpoint_every=budget,
            checkpoint_dir=trial_dir,
            keep_last=1,
            stop_check=ctx.should_stop,
        )
    finally:
        if attached_pack is not None:
            attached_pack.close()

    history = result.history
    # The health log accumulates across rungs; the *last* resume event is
    # this fit's (its epoch = the previous rung's budget).
    resumed_from = next(
        (event.epoch for event in reversed(result.health) if event.kind == "resume"),
        0,
    ) if resume else 0
    curve = {stats.epoch: stats.valid_rmse for stats in history}
    final = history[-1] if history else None
    status = "done" if history and final.epoch >= budget else "preempted"
    if ctx.sink is not None:
        ctx.sink.emit(
            "tune_trial",
            trial=trial_id,
            rung=rung,
            status=status,
            budget=budget,
            epochs=final.epoch if final is not None else resumed_from,
            valid_rmse=final.valid_rmse if final is not None else None,
            curve={str(epoch): rmse for epoch, rmse in sorted(curve.items())},
        )
        ctx.sink.flush()
    return {
        "trial": trial_id,
        "rung": rung,
        "epochs": final.epoch if final is not None else resumed_from,
        "valid_rmse": final.valid_rmse if final is not None else None,
        "resumed_from": resumed_from,
        "status": status,
        "checkpoint_dir": str(Path(trial_dir)),
    }
