"""Tuner orchestration: fan rungs over the pool, decide at the barriers.

The runner owns everything deterministic about a tune:

1. one world and one cold-start split (``split_seed``) shared by every
   trial — trials differ only in hyperparameters;
2. the trial list from :func:`repro.tune.space.enumerate_trials`
   (spec + seed ⇒ same trials, same order);
3. rung-synchronous scheduling: each rung's tasks are submitted in trial
   order, the pool is drained (a barrier), and the rung is ranked from
   the ``tune_trial`` events read back out of the telemetry shards — the
   per-epoch RMSE stream workers wrote is the scheduler's input, not the
   pool's return values;
4. kills are "never resubmitted" (plus a defensive ``pool.cancel`` for
   the requeue-safe path), promotions resume from the trial's checkpoint;
5. the best-config artifact is serialized with sorted keys and no
   timestamps/paths, so two runs of the same ``(spec, seed)`` — or the
   same spec run inline vs. over workers — produce **byte-identical**
   files.

Bulk data travels once: with ``workers >= 2`` the dataset (and, when no
document-shaping field is tuned, one :class:`DocumentStore`) is published
to shared memory and workers attach.
"""

from __future__ import annotations

import dataclasses
import json
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from ..core import OmniMatchConfig
from ..data import CrossDomainDataset, cold_start_split, generate_scenario
from ..data.batching import DocumentStore
from ..obs import TelemetrySink, merge_shards, read_events
from ..parallel.pool import TaskPool
from ..parallel.sharing import publish_dataset, publish_document_matrices
from .scheduler import RungDecision, make_scheduler
from .space import TrialSpec, enumerate_trials
from .worker import run_rung

__all__ = ["TuneError", "TuneResult", "run_tuning", "trained_epoch_census"]

#: Config fields that shape the document store; tuning any of them makes a
#: shared store invalid (each trial then builds its own).
_STORE_FIELDS = frozenset({"doc_len", "vocab_size", "field"})

ARTIFACT_NAME = "best_config.json"


class TuneError(RuntimeError):
    """The tune could not complete (missing scores, empty rung, ...)."""


@dataclass
class TuneResult:
    """Everything a caller needs after a tune."""

    best_trial: int
    best_params: dict[str, Any]
    best_rmse: float
    best_config: OmniMatchConfig
    trials: list[dict[str, Any]]
    rungs: list[RungDecision]
    total_epochs: int
    wall_seconds: float
    artifact_path: Path
    telemetry_dir: Path


def trained_epoch_census(telemetry_dir) -> tuple[int, int]:
    """(total trained epochs, duplicated (trial, epoch) pairs) from shards.

    Every epoch a trial actually trains emits exactly one tagged ``epoch``
    event in exactly one rung task; a duplicate means a promoted trial
    *recomputed* an epoch instead of resuming — the bug the checkpoint
    resume exists to prevent. The census reads the worker shards (or the
    merged ``run.jsonl`` if shards were already merged).
    """
    pairs: Counter[tuple[int, int]] = Counter()
    for event in _scan_shards(Path(telemetry_dir)):
        if event.get("kind") == "epoch" and "trial" in event:
            pairs[(event["trial"], event["epoch"])] += 1
    duplicates = sum(count - 1 for count in pairs.values())
    return sum(pairs.values()), duplicates


def _scan_shards(telemetry_dir: Path) -> list[dict]:
    shards = sorted(telemetry_dir.glob("run-*.jsonl"))
    if not shards:
        merged = telemetry_dir / "run.jsonl"
        shards = [merged] if merged.exists() else []
    events: list[dict] = []
    for shard in shards:
        events.extend(read_events(shard))
    return events


def _rung_scores(
    telemetry_dir: Path, rung: int, trial_ids: list[int]
) -> dict[int, float]:
    """Read each trial's rung score back out of the telemetry stream."""
    scores: dict[int, float] = {}
    for event in _scan_shards(telemetry_dir):
        if (
            event.get("kind") == "tune_trial"
            and event.get("rung") == rung
            and event.get("status") in ("done", "preempted")
        ):
            rmse = event.get("valid_rmse")
            scores[event["trial"]] = float("nan") if rmse is None else float(rmse)
    missing = [t for t in trial_ids if t not in scores]
    if missing:
        raise TuneError(
            f"rung {rung}: no tune_trial event in telemetry for trial(s) "
            f"{missing} — the scheduler cannot rank this rung"
        )
    return {t: scores[t] for t in trial_ids}


def _json_params(params: tuple[tuple[str, Any], ...]) -> dict[str, Any]:
    return {name: value for name, value in params}


def run_tuning(
    spec: Mapping[str, Any],
    *,
    base_config: OmniMatchConfig | None = None,
    dataset: CrossDomainDataset | None = None,
    dataset_name: str = "amazon",
    source: str = "books",
    target: str = "movies",
    generator_overrides: Mapping[str, Any] | None = None,
    seed: int = 0,
    num_samples: int = 1,
    scheduler: str = "asha",
    min_epochs: int = 1,
    max_epochs: int = 9,
    eta: int = 3,
    train_fraction: float = 1.0,
    split_seed: int = 0,
    workers: int = 0,
    out_dir: str | Path,
    telemetry_dir: str | Path | None = None,
    max_task_retries: int = 2,
    kill_plan=None,
) -> TuneResult:
    """Run one tune end-to-end; returns the winner and writes the artifact.

    ``out_dir`` receives ``best_config.json`` plus per-trial checkpoint
    directories under ``trials/``; telemetry shards land in
    ``telemetry_dir`` (default ``out_dir/telemetry``) and are merged into
    a schema-valid ``run.jsonl`` at the end. ``workers < 2`` runs inline;
    both modes produce byte-identical artifacts. ``kill_plan`` injects
    deterministic worker deaths (chaos tests).
    """
    started = time.perf_counter()
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    telemetry_dir = (
        Path(telemetry_dir) if telemetry_dir is not None else out_dir / "telemetry"
    )

    sched = make_scheduler(
        scheduler, min_epochs=min_epochs, max_epochs=max_epochs, eta=eta
    )
    trials = enumerate_trials(
        spec, base_config, seed=seed, num_samples=num_samples,
        max_epochs=sched.budgets[-1],
    )
    by_id: dict[int, TrialSpec] = {t.trial_id: t for t in trials}

    if dataset is None:
        dataset = generate_scenario(
            dataset_name, source, target, **dict(generator_overrides or {})
        )
    split_args = {"train_fraction": train_fraction, "seed": split_seed}
    split = cold_start_split(dataset, **split_args)
    if not split.valid_users:
        raise TuneError(
            "the cold-start split has no validation users — the tuner "
            "ranks trials by validation RMSE and cannot run without them"
        )

    tuned_fields = {name for t in trials for name, _ in t.params}
    share_store = not (tuned_fields & _STORE_FIELDS)

    parent_sink = TelemetrySink(
        telemetry_dir, filename="run-parent.jsonl", run_id="tune"
    )
    packs = []
    decisions: list[RungDecision] = []
    trial_rungs: dict[int, dict[int, float]] = {t.trial_id: {} for t in trials}
    killed_at: dict[int, int] = {}
    try:
        for trial in trials:
            parent_sink.emit(
                "tune_trial", trial=trial.trial_id, rung=0, status="defined",
                params=_json_params(trial.params),
            )
        parent_sink.flush()

        dataset_ref: Any = dataset
        store_ref: Any = None
        if workers >= 2:
            pack, dataset_ref = publish_dataset(dataset)
            packs.append(pack)
            if share_store:
                store = DocumentStore(
                    dataset, split,
                    doc_len=(base_config or OmniMatchConfig()).doc_len,
                    vocab_size=(base_config or OmniMatchConfig()).vocab_size,
                    field=(base_config or OmniMatchConfig()).field,
                )
                pack, store_ref = publish_document_matrices(store)
                packs.append(pack)
        elif share_store:
            base = base_config or OmniMatchConfig()
            store_ref = DocumentStore(
                dataset, split, doc_len=base.doc_len,
                vocab_size=base.vocab_size, field=base.field,
            )

        alive = [t.trial_id for t in trials]
        with TaskPool(
            workers, telemetry_dir=telemetry_dir,
            max_task_retries=max_task_retries, kill_plan=kill_plan,
        ) as pool:
            for rung_index, budget in enumerate(sched.budgets):
                task_index: dict[int, int] = {}
                for trial_id in alive:
                    trial = by_id[trial_id]
                    task_index[trial_id] = pool.submit(
                        run_rung,
                        trial_id=trial_id,
                        rung=rung_index,
                        budget=budget,
                        config=trial.config,
                        dataset_ref=dataset_ref,
                        store_ref=store_ref,
                        split=split,
                        trial_dir=str(out_dir / "trials" / f"trial-{trial_id:04d}"),
                        resume=rung_index > 0,
                    )
                pool.drain()

                scores = _rung_scores(telemetry_dir, rung_index, alive)
                for trial_id, rmse in scores.items():
                    trial_rungs[trial_id][rung_index] = rmse
                decision = sched.decide(rung_index, scores)
                decisions.append(decision)
                # Kills are "never resubmitted"; the explicit cancel is the
                # requeue-safe path should a killed trial's task ever still
                # be queued or running (it cannot be in synchronous rungs).
                for trial_id in decision.killed:
                    pool.cancel(task_index[trial_id])
                    killed_at[trial_id] = rung_index
                parent_sink.emit(
                    "tune_rung",
                    rung=rung_index,
                    budget=budget,
                    trials=list(alive),
                    promoted=list(decision.promoted),
                    killed=list(decision.killed),
                    scores={str(t): scores[t] for t in sorted(scores)},
                )
                parent_sink.flush()
                if decision.promoted:
                    alive = list(decision.promoted)

        final = decisions[-1]
        best_trial = final.ranked[0]
        best_rmse = trial_rungs[best_trial][final.rung]
        best_spec = by_id[best_trial]

        trial_summaries = [
            {
                "trial": t.trial_id,
                "params": _json_params(t.params),
                "rungs": {
                    str(r): rmse for r, rmse in sorted(trial_rungs[t.trial_id].items())
                },
                "killed_at_rung": killed_at.get(t.trial_id),
            }
            for t in trials
        ]
        artifact = {
            "best": {
                "trial": best_trial,
                "params": _json_params(best_spec.params),
                "valid_rmse": best_rmse,
            },
            "config": dataclasses.asdict(best_spec.config),
            "scheduler": sched.describe(),
            "space": {k: dict(v) for k, v in sorted(spec.items())},
            "seed": seed,
            "num_samples": num_samples,
            "split": {"train_fraction": train_fraction, "seed": split_seed},
            "scenario": {
                "dataset": dataset_name, "source": source, "target": target,
            },
            "trials": trial_summaries,
            "rungs": [
                {
                    "rung": d.rung, "budget": d.budget, "ranked": list(d.ranked),
                    "promoted": list(d.promoted), "killed": list(d.killed),
                }
                for d in decisions
            ],
        }
        artifact_path = out_dir / ARTIFACT_NAME
        artifact_path.write_text(
            json.dumps(artifact, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )

        parent_sink.emit(
            "tune_result",
            best_trial=best_trial,
            best_rmse=best_rmse,
            trials=len(trials),
            rungs=len(decisions),
            artifact=ARTIFACT_NAME,
        )
    finally:
        parent_sink.close()
        for pack in packs:
            pack.unlink()

    total_epochs, _ = trained_epoch_census(telemetry_dir)
    merge_shards(telemetry_dir)
    return TuneResult(
        best_trial=best_trial,
        best_params=_json_params(best_spec.params),
        best_rmse=best_rmse,
        best_config=best_spec.config,
        trials=trial_summaries,
        rungs=decisions,
        total_epochs=total_epochs,
        wall_seconds=time.perf_counter() - started,
        artifact_path=artifact_path,
        telemetry_dir=telemetry_dir,
    )
