"""Declarative hyperparameter search spaces over :class:`OmniMatchConfig`.

A space *spec* is a JSON-friendly mapping from config field names to one
distribution each::

    {
        "learning_rate": {"log_uniform": [0.05, 2.0]},
        "aux_mix_prob":  {"grid": [0.3, 0.5, 0.7]},
        "dropout":       {"choice": [0.1, 0.2, 0.3]},
        "alpha":         {"uniform": [0.05, 0.4]},
    }

``grid`` values are crossed exhaustively; ``choice`` / ``uniform`` /
``log_uniform`` are *sampled*: for every grid point, ``num_samples`` joint
assignments are drawn from a ``numpy`` generator seeded by the caller, so
the same ``(spec, seed, num_samples)`` always enumerates the same trials
in the same order — the first link in the tuner's determinism chain.

Every assignment is validated by constructing the trial's
:class:`OmniMatchConfig` (its ``__post_init__`` rejects out-of-range
values), and every trial config forces ``early_stopping=False``: the
scheduler owns stopping — rung budgets, not patience, decide how long a
trial trains.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..core import OmniMatchConfig

__all__ = ["SearchSpaceError", "TrialSpec", "enumerate_trials", "parse_space"]

_DIST_KINDS = ("grid", "choice", "uniform", "log_uniform")

#: Fields the tuner itself owns; tuning them would fight the scheduler.
_RESERVED_FIELDS = frozenset({"epochs", "early_stopping", "patience"})

_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(OmniMatchConfig))


class SearchSpaceError(ValueError):
    """The search-space spec is malformed."""


@dataclass(frozen=True)
class TrialSpec:
    """One fully-assigned trial: its id, parameters, and config.

    ``trial_id`` is the trial's position in enumeration order and its
    identity everywhere downstream — checkpoint directory names, telemetry
    tags, rung decisions, and the best-config artifact.
    """

    trial_id: int
    params: tuple[tuple[str, Any], ...]
    config: OmniMatchConfig


def parse_space(spec: Mapping[str, Any]) -> dict[str, tuple[str, tuple]]:
    """Validate a spec; returns ``{field: (dist_kind, values)}``.

    ``values`` is the grid/choice tuple, or ``(low, high)`` for the
    continuous distributions.
    """
    if not isinstance(spec, Mapping) or not spec:
        raise SearchSpaceError("search space must be a non-empty mapping")
    parsed: dict[str, tuple[str, tuple]] = {}
    for name in sorted(spec):
        if name not in _CONFIG_FIELDS:
            raise SearchSpaceError(
                f"unknown config field {name!r} (not an OmniMatchConfig field)"
            )
        if name in _RESERVED_FIELDS:
            raise SearchSpaceError(
                f"field {name!r} is owned by the tuner (rung budgets replace "
                "epochs/early_stopping/patience) and cannot be tuned"
            )
        entry = spec[name]
        if not isinstance(entry, Mapping) or len(entry) != 1:
            raise SearchSpaceError(
                f"{name}: each entry must be a one-key mapping naming a "
                f"distribution, one of {_DIST_KINDS}"
            )
        (kind, values), = entry.items()
        if kind not in _DIST_KINDS:
            raise SearchSpaceError(
                f"{name}: unknown distribution {kind!r}; use one of {_DIST_KINDS}"
            )
        if kind in ("grid", "choice"):
            values = tuple(values)
            if not values:
                raise SearchSpaceError(f"{name}: {kind} needs at least one value")
        else:
            values = tuple(float(v) for v in values)
            if len(values) != 2 or not values[0] < values[1]:
                raise SearchSpaceError(
                    f"{name}: {kind} needs [low, high] with low < high"
                )
            if kind == "log_uniform" and values[0] <= 0:
                raise SearchSpaceError(f"{name}: log_uniform needs low > 0")
        parsed[name] = (kind, values)
    return parsed


def _sample(kind: str, values: tuple, rng: np.random.Generator) -> Any:
    if kind == "choice":
        return values[int(rng.integers(len(values)))]
    low, high = values
    if kind == "uniform":
        return float(rng.uniform(low, high))
    return float(math.exp(rng.uniform(math.log(low), math.log(high))))


def enumerate_trials(
    spec: Mapping[str, Any],
    base_config: OmniMatchConfig | None = None,
    *,
    seed: int = 0,
    num_samples: int = 1,
    max_epochs: int | None = None,
) -> list[TrialSpec]:
    """Expand a spec into the deterministic, ordered trial list.

    Grid fields are crossed exhaustively in sorted-field-name order; for
    each grid point, ``num_samples`` joint draws of the sampled fields are
    taken from one generator seeded with ``seed`` (draws happen in sorted
    field order within each sample, so the stream is reproducible). A
    spec with no sampled fields ignores ``num_samples``.

    ``max_epochs`` (when given) is written into every trial config's
    ``epochs`` so a config reached at any rung carries the full budget.
    """
    if num_samples < 1:
        raise SearchSpaceError("num_samples must be >= 1")
    parsed = parse_space(spec)
    base = base_config if base_config is not None else OmniMatchConfig()
    grid_fields = [n for n, (kind, _) in parsed.items() if kind == "grid"]
    sampled_fields = [n for n, (kind, _) in parsed.items() if kind != "grid"]
    grid_values = [parsed[n][1] for n in grid_fields]
    draws = num_samples if sampled_fields else 1
    rng = np.random.default_rng(seed)

    overrides: dict[str, Any] = {"early_stopping": False}
    if max_epochs is not None:
        overrides["epochs"] = int(max_epochs)

    trials: list[TrialSpec] = []
    for point in itertools.product(*grid_values) if grid_fields else [()]:
        for _ in range(draws):
            assignment = dict(zip(grid_fields, point))
            for name in sampled_fields:
                kind, values = parsed[name]
                assignment[name] = _sample(kind, values, rng)
            try:
                config = dataclasses.replace(base, **assignment, **overrides)
            except (ValueError, TypeError) as error:
                raise SearchSpaceError(
                    f"invalid assignment {assignment}: {error}"
                ) from error
            trials.append(
                TrialSpec(
                    trial_id=len(trials),
                    params=tuple(sorted(assignment.items())),
                    config=config,
                )
            )
    return trials
