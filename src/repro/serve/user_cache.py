"""Bounded LRU cache of per-user rating-head inputs.

For steady-state serving the expensive part of a cold-start prediction is
everything *upstream* of the rating head: auxiliary-document generation,
tokenization, and two CNN extractor passes. All of it collapses into two
vectors per user — the mode-specific ``(invariant, user_repr)`` pair that
:meth:`OmniMatchModel._rating_inputs` feeds to ``rating_logits`` — so the
cache stores exactly those rows.

The cache is bounded (default 4096 users ~ a few MB) with LRU eviction:
serving millions of users cannot hold every representation resident, but a
traffic mixture is heavily repeat-skewed, so the working set stays hot.
Because every fill goes through the canonical blocked encoder
(``repro.serve.blocking``), an evicted-then-re-encoded user gets back the
bit-identical vectors — eviction changes cost, never predictions.

``warm()`` pre-encodes a user list in large blocks, the deployment move for
a known evaluation set or an anticipated traffic cohort.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterable, Sequence

import numpy as np

from ..obs import MetricsRegistry

__all__ = ["UserReprCache"]

#: Default maximum resident users.
DEFAULT_CAPACITY = 4096


class UserReprCache:
    """LRU over ``user_id -> (invariant_row, user_repr_row)``."""

    def __init__(
        self,
        encode_users: Callable[[Sequence[str]], tuple[np.ndarray, np.ndarray]],
        capacity: int = DEFAULT_CAPACITY,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """``encode_users`` maps a batch of user ids to the stacked
        ``(invariant, user_repr)`` matrices, one row per user, and must be
        deterministic per user regardless of batch composition (the engine's
        blocked encoder guarantees this)."""
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.encode_users = encode_users
        self.capacity = capacity
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._entries: OrderedDict[str, tuple[np.ndarray, np.ndarray]] = OrderedDict()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._entries

    @property
    def hits(self) -> int:
        return int(self.metrics.counter("serve.cache.hits"))

    @property
    def misses(self) -> int:
        return int(self.metrics.counter("serve.cache.misses"))

    @property
    def evictions(self) -> int:
        return int(self.metrics.counter("serve.cache.evictions"))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    def _insert(self, user_id: str, invariant: np.ndarray, user_repr: np.ndarray) -> None:
        self._entries[user_id] = (invariant, user_repr)
        self._entries.move_to_end(user_id)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.metrics.inc("serve.cache.evictions")

    def _fill(self, user_ids: Sequence[str]) -> None:
        """Encode ``user_ids`` (deduplicated, order-preserving) and insert."""
        unique = list(dict.fromkeys(user_ids))
        if not unique:
            return
        invariant, user_repr = self.encode_users(unique)
        for row, user_id in enumerate(unique):
            self._insert(user_id, invariant[row], user_repr[row])

    def warm(self, user_ids: Iterable[str]) -> int:
        """Pre-encode ``user_ids`` not yet resident; returns how many were
        encoded. Warming counts neither hits nor misses."""
        missing = [u for u in dict.fromkeys(user_ids) if u not in self._entries]
        self._fill(missing)
        return len(missing)

    def get_many(self, user_ids: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
        """Stacked ``(invariant, user_repr)`` rows aligned with ``user_ids``
        (duplicates welcome); encodes all misses in one blocked batch.

        One miss is counted per unique user encoded; every other occurrence
        is a hit (it is served from the cached row).
        """
        # Pin every row this call needs in a call-local map first: inserting
        # freshly encoded users below may evict resident entries (including
        # ones this very request hit) when unique users exceed the capacity.
        pinned: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        missing = []
        for user_id in dict.fromkeys(user_ids):
            entry = self._entries.get(user_id)
            if entry is None:
                missing.append(user_id)
            else:
                pinned[user_id] = entry
                self._entries.move_to_end(user_id)
        if missing:
            invariant, user_repr = self.encode_users(missing)
            for row, user_id in enumerate(missing):
                pinned[user_id] = (invariant[row], user_repr[row])
                self._insert(user_id, invariant[row], user_repr[row])
        self.metrics.inc("serve.cache.misses", len(missing))
        if len(user_ids) > len(missing):
            self.metrics.inc("serve.cache.hits", len(user_ids) - len(missing))
        invariant_rows = []
        repr_rows = []
        for user_id in user_ids:
            entry = pinned[user_id]
            invariant_rows.append(entry[0])
            repr_rows.append(entry[1])
        return np.stack(invariant_rows), np.stack(repr_rows)

    def evict(self, user_id: str) -> bool:
        """Drop one user (e.g. after their profile changed); True if present."""
        if user_id in self._entries:
            del self._entries[user_id]
            return True
        return False

    def clear(self) -> None:
        self._entries.clear()
