"""The high-throughput inference engine: encode once, score from caches.

``OmniMatchModel`` factors cleanly at serving time (Eq. 18): a per-user
``(invariant, user_repr)`` pair, a per-item representation, and a tiny
rating MLP joining them. The legacy ``ColdStartPredictor`` re-ran both CNN
extractor towers over full token documents for every (user, item) pair;
the :class:`InferenceEngine` runs each tower once per *entity* instead —
items into an :class:`~repro.serve.item_index.ItemIndex`, users into a
bounded :class:`~repro.serve.user_cache.UserReprCache` — so steady-state
pair scoring is a single batched rating-head MLP over cached vectors.

Bit-identity contract: every encode goes through the canonical blocked
encoder (``repro.serve.blocking``), so engine predictions match the
re-encoding reference path (``repro.serve.reference``) bit for bit, and
``recommend`` scores match ``score_pairs`` over the same catalog exactly.

Retrieval: ``recommend`` is exact brute force by default. At large catalog
sizes switch to ``retrieval="ivf"`` — coarse k-means routing over the item
matrix (``repro.serve.ann``) shortlists the inverted lists of the
``nprobe`` best centroids, and only the shortlist goes through the exact
rating head, so candidate scores stay bit-identical to brute force and
``nprobe >= nlist`` *is* the exact path.

Observability: the engine keeps cache hit/miss/eviction counters and
per-stage latency histograms in a :class:`~repro.obs.MetricsRegistry`, and
emits ``serve_*`` telemetry events (rendered by ``repro report``) to an
explicit sink or the ambient one installed via ``repro.obs.use_sink``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .. import nn
from ..core.model import RATING_VALUES
from ..nn import functional as F
from ..obs import MetricsRegistry, get_active_sink
from .ann import DEFAULT_ITERS, DEFAULT_NPROBE, IVFIndex, default_nlist
from .blocking import DEFAULT_BLOCK, encode_blocked, inference_mode
from .item_index import ItemIndex
from .user_cache import DEFAULT_CAPACITY, UserReprCache

__all__ = ["ColdStartDocuments", "InferenceEngine", "Recommendation"]

_RETRIEVALS = ("exact", "ivf")


@dataclass(frozen=True)
class Recommendation:
    """One ranked catalog entry from :meth:`InferenceEngine.recommend`."""

    item_id: str
    score: float


class ColdStartDocuments:
    """Target-document policy shared by the engine and the reference path.

    A training user keeps their real target document; a cold-start user
    gets the auxiliary document (Algorithm 1), falling back to their source
    document when no like-minded neighbor exists or when the
    ``use_auxiliary_reviews`` ablation is off (§4.1's suboptimal strategy).
    """

    def __init__(self, result, store=None) -> None:
        self.store = store if store is not None else result.store
        self.aux_generator = result.aux_generator
        self.use_aux = result.model.config.use_auxiliary_reviews
        self._train_users = set(self.store.split.train_users)
        self._cache: dict[str, np.ndarray] = {}

    def target_doc(self, user_id: str) -> np.ndarray:
        """Target-extractor input for ``user_id`` (real, auxiliary, fallback)."""
        if user_id in self._cache:
            return self._cache[user_id]
        if user_id in self._train_users:
            doc = self.store.user_target_doc(user_id)
        elif self.use_aux:
            reviews = self.aux_generator.generate(user_id)
            if reviews:
                doc = self.store.encode_reviews(reviews)
            else:  # no like-minded user found for any record: source fallback
                doc = self.store.user_source_doc(user_id)
        else:
            doc = self.store.user_source_doc(user_id)
        self._cache[user_id] = doc
        return doc

    def source_doc(self, user_id: str) -> np.ndarray:
        """Source-extractor input (exists for every user)."""
        return self.store.user_source_doc(user_id)


class InferenceEngine:
    """Encode-once pair scoring and full-catalog top-K recommendation."""

    def __init__(
        self,
        result,
        *,
        batch_size: int = DEFAULT_BLOCK,
        cache_capacity: int = DEFAULT_CAPACITY,
        catalog: Sequence[str] | None = None,
        store=None,
        telemetry=None,
        retrieval: str = "exact",
        nlist: int | None = None,
        nprobe: int | None = None,
        ann_store: str = "float32",
        ann_seed: int | None = None,
        ann_iters: int = DEFAULT_ITERS,
    ) -> None:
        """
        Parameters
        ----------
        result:
            A :class:`repro.core.TrainResult` (model + store + generator).
        batch_size:
            Rows per encode block *and* per rating-head chunk. All paths
            that must agree bitwise have to share this value.
        cache_capacity:
            Maximum resident users in the representation LRU.
        catalog:
            Item universe for ``recommend`` (default: every target-domain
            item). Items outside it can still be scored pairwise.
        store:
            Optional :class:`~repro.data.DocumentStore` override — e.g. one
            rebuilt via ``DocumentStore.with_dataset`` over a catalog scaled
            after training. Defaults to ``result.store``.
        telemetry:
            Optional :class:`repro.obs.TelemetrySink`; when omitted, events
            go to the ambient sink if one is installed.
        retrieval:
            Default ``recommend`` strategy: ``"exact"`` brute force or
            ``"ivf"`` coarse-probe + exact re-rank.
        nlist / nprobe:
            IVF shape: number of inverted lists (default ``sqrt(catalog)``)
            and lists probed per query (default 8; ``>= nlist`` recovers the
            exact result bit for bit).
        ann_store:
            Routing representation store: ``"float32"`` routes over the
            item matrix in place; ``"int8"`` keeps a quantized copy (~4x
            smaller) and routes off that. Re-ranking is always float32.
        ann_seed:
            K-means seeding RNG seed (default: the model's training seed).
        ann_iters:
            Lloyd's iteration cap for the coarse index build.
        """
        if retrieval not in _RETRIEVALS:
            raise ValueError(f"retrieval must be one of {_RETRIEVALS}")
        self.model = result.model
        self.store = store if store is not None else result.store
        self.aux_generator = result.aux_generator
        self.batch_size = batch_size
        self.out_dtype = np.dtype(self.model.config.dtype)
        self.blend = self.model.config.cold_inference in ("blend", "dual")
        self.telemetry = telemetry
        self.metrics = MetricsRegistry()
        self.docs = ColdStartDocuments(result, store=self.store)
        self.items = ItemIndex(
            self.model, self.store, catalog=catalog,
            block=batch_size, metrics=self.metrics,
        )
        self.users = UserReprCache(
            self._encode_users, capacity=cache_capacity, metrics=self.metrics
        )
        self.retrieval = retrieval
        self.nlist = nlist
        self.nprobe = nprobe if nprobe is not None else DEFAULT_NPROBE
        self.ann_store = ann_store
        self.ann_seed = ann_seed if ann_seed is not None else self.model.config.seed
        self.ann_iters = ann_iters
        self._ann: IVFIndex | None = None
        self._ann_key: tuple | None = None
        # Reusable scratch for the single-user catalog scorer (satellite:
        # recommend must not allocate a fresh O(catalog) vector per call).
        self._features_scratch: np.ndarray | None = None
        self._scores_scratch: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Telemetry plumbing
    # ------------------------------------------------------------------
    def _emit(self, kind: str, **fields) -> None:
        sink = self.telemetry if self.telemetry is not None else get_active_sink()
        if sink is not None:
            sink.emit(kind, **fields)

    def _cache_counters(self) -> tuple[int, int]:
        return self.users.hits, self.users.misses

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _encode_users(self, user_ids: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
        """Stacked rating-head inputs for ``user_ids`` (one blocked pass per
        extractor tower, then the mode-specific combination of Eq. 18)."""
        start = time.perf_counter()
        target_docs = np.stack([self.docs.target_doc(u) for u in user_ids])
        with inference_mode(self.model):
            target_inv, target_spec = encode_blocked(
                lambda chunk: tuple(
                    t.data for t in self.model.user_extractor.extract_target(chunk)
                ),
                target_docs,
                self.batch_size,
            )
            source_inv = None
            if self.blend:
                source_docs = np.stack([self.docs.source_doc(u) for u in user_ids])
                source_inv, _ = encode_blocked(
                    lambda chunk: tuple(
                        t.data
                        for t in self.model.user_extractor.extract_source(chunk)
                    ),
                    source_docs,
                    self.batch_size,
                )
            # _rating_inputs is purely elementwise + concat, so its per-row
            # results do not depend on the batch's row count — safe to run
            # on the whole miss batch at once.
            invariant, user_repr = self.model._rating_inputs(
                nn.Tensor(source_inv) if source_inv is not None else None,
                nn.Tensor(target_inv),
                nn.Tensor(target_spec),
            )
            invariant, user_repr = invariant.data, user_repr.data
        self.metrics.inc("serve.users_encoded", len(user_ids))
        self.metrics.observe(
            "serve.encode_users_seconds", time.perf_counter() - start
        )
        return invariant, user_repr

    def warm(self, user_ids: Iterable[str]) -> int:
        """Pre-encode a user cohort; returns how many were newly encoded."""
        start = time.perf_counter()
        encoded = self.users.warm(user_ids)
        self._emit(
            "serve_encode_users",
            users=encoded, seconds=time.perf_counter() - start,
        )
        return encoded

    def build_index(self) -> int:
        """Push the whole catalog through the item extractor (idempotent);
        returns the number of items encoded by this call."""
        before = self.items.encoded_count
        start = time.perf_counter()
        self.items.build()
        encoded = self.items.encoded_count - before
        if encoded:
            self._emit(
                "serve_index",
                items=encoded, catalog=len(self.items),
                seconds=time.perf_counter() - start,
            )
        return encoded

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _score_rows(
        self,
        invariant: np.ndarray,
        user_repr: np.ndarray,
        item_rows: np.ndarray,
    ) -> np.ndarray:
        """Expected ratings for aligned representation rows (Eq. 18 head).

        The head GEMM is as ``m``-dependent as the extractor GEMMs, so it
        runs through the same padded-block primitive: scores never depend
        on how a request was chunked or how many pairs shared the call.
        """
        features = np.concatenate(
            [user_repr, item_rows, invariant * item_rows], axis=1
        )

        def head(chunk: np.ndarray) -> np.ndarray:
            logits = self.model.rating_classifier(nn.Tensor(chunk))
            return F.softmax(logits, axis=-1).data @ RATING_VALUES

        with inference_mode(self.model):
            return encode_blocked(head, features, self.batch_size)

    def _head_scores(self, features: np.ndarray) -> np.ndarray:
        """Rating-head expected ratings for exactly ``batch_size`` rows."""
        logits = self.model.rating_classifier(nn.Tensor(features))
        return F.softmax(logits, axis=-1).data @ RATING_VALUES

    def _scores_buffer(self, size: int) -> np.ndarray:
        """A ``(size,)`` view of the reusable score scratch (grown, never
        shrunk, so steady-state calls allocate nothing catalog-sized)."""
        if self._scores_scratch is None or len(self._scores_scratch) < size:
            self._scores_scratch = np.empty(size, dtype=self.out_dtype)
        return self._scores_scratch[:size]

    def _score_user_rows(
        self,
        invariant: np.ndarray,
        user_repr: np.ndarray,
        matrix: np.ndarray,
        slots: np.ndarray | None = None,
    ) -> np.ndarray:
        """Score one user against ``matrix`` rows (all of them, or the
        ``slots`` gather) through the exact blocked rating head.

        Bit-identical to :meth:`_score_rows` over the same rows: the
        feature blocks are assembled in a fixed ``(batch_size, head_dim)``
        scratch — user columns broadcast instead of ``np.repeat``-ed, pad
        rows zeroed exactly like ``encode_blocked`` pads — so the head GEMM
        sees the same operand matrix either way, without per-call
        O(catalog) feature/user-row allocations.
        """
        count = len(matrix) if slots is None else len(slots)
        out = self._scores_buffer(count)
        if count == 0:
            return out
        dim = matrix.shape[1]
        user_width = user_repr.shape[1]
        head_dim = user_width + 2 * dim
        batch = self.batch_size
        if (
            self._features_scratch is None
            or self._features_scratch.shape != (batch, head_dim)
            or self._features_scratch.dtype != matrix.dtype
        ):
            self._features_scratch = np.zeros((batch, head_dim), dtype=matrix.dtype)
        features = self._features_scratch
        features[:, :user_width] = user_repr  # broadcasts the single row
        with inference_mode(self.model):
            for start in range(0, count, batch):
                kept = min(batch, count - start)
                rows = (
                    matrix[start : start + kept]
                    if slots is None
                    else matrix[slots[start : start + kept]]
                )
                features[:kept, user_width : user_width + dim] = rows
                np.multiply(
                    rows, invariant,
                    out=features[:kept, user_width + dim :],
                )
                if kept < batch:  # zero the pad rows, like encode_blocked
                    features[kept:, :] = 0.0
                out[start : start + kept] = self._head_scores(features)[:kept]
        return out

    def score_pairs(self, pairs: Sequence[tuple[str, str]]) -> np.ndarray:
        """Expected ratings for explicit ``(user_id, item_id)`` pairs.

        Bit-identical to the re-encoding reference path
        (:func:`repro.serve.reference.naive_score_pairs`) at the same
        ``batch_size``; each unique user/item is encoded at most once
        across the engine's lifetime (modulo LRU eviction).
        """
        pairs = list(pairs)
        start = time.perf_counter()
        hits_before, misses_before = self._cache_counters()
        out = np.empty(len(pairs), dtype=self.out_dtype)
        for chunk_start in range(0, len(pairs), self.batch_size):
            chunk = pairs[chunk_start : chunk_start + self.batch_size]
            invariant, user_repr = self.users.get_many([u for u, _ in chunk])
            item_rows = self.items.rows([i for _, i in chunk])
            out[chunk_start : chunk_start + len(chunk)] = self._score_rows(
                invariant, user_repr, item_rows
            )
        seconds = time.perf_counter() - start
        hits_after, misses_after = self._cache_counters()
        self.metrics.inc("serve.pairs_scored", len(pairs))
        self.metrics.observe("serve.score_seconds", seconds)
        if seconds > 0:
            self.metrics.observe("serve.pairs_per_sec", len(pairs) / seconds)
        self._emit(
            "serve_score",
            pairs=len(pairs), seconds=seconds,
            cache_hits=hits_after - hits_before,
            cache_misses=misses_after - misses_before,
        )
        return out

    # ------------------------------------------------------------------
    # Approximate retrieval
    # ------------------------------------------------------------------
    def set_retrieval(
        self,
        retrieval: str | None = None,
        *,
        nlist: int | None = None,
        nprobe: int | None = None,
        ann_store: str | None = None,
    ) -> None:
        """Reconfigure the default retrieval strategy in place.

        Changing ``nlist`` or ``ann_store`` drops the cached coarse index so
        the next IVF query rebuilds it; ``nprobe`` is query-time only.
        """
        if retrieval is not None:
            if retrieval not in _RETRIEVALS:
                raise ValueError(f"retrieval must be one of {_RETRIEVALS}")
            self.retrieval = retrieval
        if nlist is not None:
            self.nlist = nlist
        if nprobe is not None:
            self.nprobe = nprobe
        if ann_store is not None:
            self.ann_store = ann_store

    def ann_index(self) -> IVFIndex:
        """The coarse IVF index over the current catalog matrix, building
        (and re-building after :meth:`ItemIndex.invalidate` or any catalog
        encode that bumped ``items.version``) as needed."""
        self.build_index()
        reprs = self.items.reprs
        nlist = self.nlist if self.nlist is not None else default_nlist(len(reprs))
        key = (self.items.version, nlist, self.ann_store, self.ann_seed)
        if self._ann is None or self._ann_key != key:
            index = IVFIndex(
                reprs,
                nlist=nlist,
                seed=self.ann_seed,
                iters=self.ann_iters,
                store=self.ann_store,
            )
            self._ann, self._ann_key = index, key
            stats = index.stats
            self.metrics.inc("serve.ann_builds")
            self.metrics.observe("serve.ann_build_seconds", stats.seconds)
            self._emit(
                "serve_ann_build",
                items=stats.items, nlist=stats.nlist, iters=stats.iters_run,
                store=stats.store, seconds=stats.seconds,
                store_bytes=stats.store_bytes,
                float32_bytes=stats.float32_bytes,
            )
        return self._ann

    def _probe(
        self,
        index: IVFIndex,
        invariant: np.ndarray,
        user_repr: np.ndarray,
        nprobe: int,
    ) -> np.ndarray:
        """Shortlist slots: rate the centroids with the exact head, probe
        the ``nprobe`` best (ties toward the lower centroid id)."""
        centroid_scores = np.array(
            self._score_user_rows(invariant, user_repr, index.centroids),
            copy=True,  # the scratch buffer is about to be reused
        )
        order = np.lexsort((np.arange(len(centroid_scores)), -centroid_scores))
        return index.candidate_slots(order, nprobe)

    def measure_recall(
        self,
        user_ids: Sequence[str],
        k: int = 10,
        nprobe: int | None = None,
    ) -> float:
        """Mean recall@k of IVF retrieval against the exact oracle over
        ``user_ids`` (1.0 when every approximate top-k matches). Emits a
        ``serve_ann_recall`` telemetry event."""
        user_ids = list(user_ids)
        if not user_ids:
            raise ValueError("measure_recall needs at least one user")
        recalls = []
        for user_id in user_ids:
            exact = {r.item_id for r in self.recommend(user_id, k, retrieval="exact")}
            if not exact:
                continue
            approx = {
                r.item_id
                for r in self.recommend(user_id, k, retrieval="ivf", nprobe=nprobe)
            }
            recalls.append(len(exact & approx) / len(exact))
        recall = float(np.mean(recalls)) if recalls else 1.0
        self._emit(
            "serve_ann_recall",
            users=len(user_ids), k=k, recall=recall,
            nprobe=nprobe if nprobe is not None else self.nprobe,
        )
        return recall

    # ------------------------------------------------------------------
    # Recommendation
    # ------------------------------------------------------------------
    def recommend(
        self,
        user_id: str,
        k: int = 10,
        exclude_items: Iterable[str] | None = None,
        *,
        retrieval: str | None = None,
        nprobe: int | None = None,
    ) -> list[Recommendation]:
        """Top-``k`` of full-catalog scoring for one user.

        With ``retrieval="exact"`` every catalog item is scored via blocked
        rating-head GEMMs over the item matrix (bit-identical to
        ``score_pairs`` on the same pairs). With ``"ivf"`` only the
        shortlist from the probed inverted lists is scored — through the
        *same* blocked head, so candidate scores match brute force bit for
        bit and ``nprobe >= nlist`` recovers the exact ranking exactly.
        Ties break toward the lower catalog slot; ``exclude_items`` removes
        already-seen items from the ranking. ``retrieval``/``nprobe``
        override the engine defaults for this call only.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        mode = retrieval if retrieval is not None else self.retrieval
        if mode not in _RETRIEVALS:
            raise ValueError(f"retrieval must be one of {_RETRIEVALS}")
        start = time.perf_counter()
        self.build_index()
        catalog_size = len(self.items)
        if catalog_size == 0:
            return []
        reprs = self.items.reprs
        invariant, user_repr = self.users.get_many([user_id])
        if mode == "ivf":
            index = self.ann_index()
            probes = min(
                nprobe if nprobe is not None else self.nprobe, index.nlist
            )
            probe_start = time.perf_counter()
            slots = self._probe(index, invariant, user_repr, probes)
            scores = self._score_user_rows(invariant, user_repr, reprs, slots)
            probe_seconds = time.perf_counter() - probe_start
            self.metrics.inc("serve.ann_probes")
            self.metrics.observe("serve.ann_candidates", float(len(slots)))
            self._emit(
                "serve_ann_probe",
                user=user_id, k=k, nprobe=probes, nlist=index.nlist,
                candidates=len(slots), catalog=catalog_size,
                seconds=probe_seconds,
            )
        else:
            slots = None
            scores = self._score_user_rows(invariant, user_repr, reprs)
        if exclude_items:
            positions = self.items.slots
            if slots is not None:
                for item_id in exclude_items:
                    slot = positions.get(item_id)
                    if slot is not None:
                        at = np.searchsorted(slots, slot)
                        if at < len(slots) and slots[at] == slot:
                            scores[at] = -np.inf
            else:
                for item_id in exclude_items:
                    slot = positions.get(item_id)
                    if slot is not None:
                        scores[slot] = -np.inf
        ranked = min(k, int(np.isfinite(scores).sum()))
        seconds = time.perf_counter() - start
        self.metrics.observe("serve.recommend_seconds", seconds)
        if seconds > 0:
            self.metrics.observe("serve.items_per_sec", catalog_size / seconds)
        self._emit(
            "serve_recommend",
            user=user_id, k=k, catalog=catalog_size, seconds=seconds,
            retrieval=mode,
        )
        if ranked == 0:
            return []
        top = np.argpartition(-scores, ranked - 1)[:ranked]
        # Exact ordering pass; ties break toward the lower catalog slot.
        tie_break = top if slots is None else slots[top]
        top = top[np.lexsort((tie_break, -scores[top]))]
        return [
            Recommendation(
                self.items.item_ids[slot if slots is None else slots[slot]],
                float(scores[slot]),
            )
            for slot in top
        ]
