"""The high-throughput inference engine: encode once, score from caches.

``OmniMatchModel`` factors cleanly at serving time (Eq. 18): a per-user
``(invariant, user_repr)`` pair, a per-item representation, and a tiny
rating MLP joining them. The legacy ``ColdStartPredictor`` re-ran both CNN
extractor towers over full token documents for every (user, item) pair;
the :class:`InferenceEngine` runs each tower once per *entity* instead —
items into an :class:`~repro.serve.item_index.ItemIndex`, users into a
bounded :class:`~repro.serve.user_cache.UserReprCache` — so steady-state
pair scoring is a single batched rating-head MLP over cached vectors.

Bit-identity contract: every encode goes through the canonical blocked
encoder (``repro.serve.blocking``), so engine predictions match the
re-encoding reference path (``repro.serve.reference``) bit for bit, and
``recommend`` scores match ``score_pairs`` over the same catalog exactly.

Observability: the engine keeps cache hit/miss/eviction counters and
per-stage latency histograms in a :class:`~repro.obs.MetricsRegistry`, and
emits ``serve_*`` telemetry events (rendered by ``repro report``) to an
explicit sink or the ambient one installed via ``repro.obs.use_sink``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .. import nn
from ..core.model import RATING_VALUES
from ..nn import functional as F
from ..obs import MetricsRegistry, get_active_sink
from .blocking import DEFAULT_BLOCK, encode_blocked, inference_mode
from .item_index import ItemIndex
from .user_cache import DEFAULT_CAPACITY, UserReprCache

__all__ = ["ColdStartDocuments", "InferenceEngine", "Recommendation"]


@dataclass(frozen=True)
class Recommendation:
    """One ranked catalog entry from :meth:`InferenceEngine.recommend`."""

    item_id: str
    score: float


class ColdStartDocuments:
    """Target-document policy shared by the engine and the reference path.

    A training user keeps their real target document; a cold-start user
    gets the auxiliary document (Algorithm 1), falling back to their source
    document when no like-minded neighbor exists or when the
    ``use_auxiliary_reviews`` ablation is off (§4.1's suboptimal strategy).
    """

    def __init__(self, result) -> None:
        self.store = result.store
        self.aux_generator = result.aux_generator
        self.use_aux = result.model.config.use_auxiliary_reviews
        self._train_users = set(result.store.split.train_users)
        self._cache: dict[str, np.ndarray] = {}

    def target_doc(self, user_id: str) -> np.ndarray:
        """Target-extractor input for ``user_id`` (real, auxiliary, fallback)."""
        if user_id in self._cache:
            return self._cache[user_id]
        if user_id in self._train_users:
            doc = self.store.user_target_doc(user_id)
        elif self.use_aux:
            reviews = self.aux_generator.generate(user_id)
            if reviews:
                doc = self.store.encode_reviews(reviews)
            else:  # no like-minded user found for any record: source fallback
                doc = self.store.user_source_doc(user_id)
        else:
            doc = self.store.user_source_doc(user_id)
        self._cache[user_id] = doc
        return doc

    def source_doc(self, user_id: str) -> np.ndarray:
        """Source-extractor input (exists for every user)."""
        return self.store.user_source_doc(user_id)


class InferenceEngine:
    """Encode-once pair scoring and full-catalog top-K recommendation."""

    def __init__(
        self,
        result,
        *,
        batch_size: int = DEFAULT_BLOCK,
        cache_capacity: int = DEFAULT_CAPACITY,
        catalog: Sequence[str] | None = None,
        telemetry=None,
    ) -> None:
        """
        Parameters
        ----------
        result:
            A :class:`repro.core.TrainResult` (model + store + generator).
        batch_size:
            Rows per encode block *and* per rating-head chunk. All paths
            that must agree bitwise have to share this value.
        cache_capacity:
            Maximum resident users in the representation LRU.
        catalog:
            Item universe for ``recommend`` (default: every target-domain
            item). Items outside it can still be scored pairwise.
        telemetry:
            Optional :class:`repro.obs.TelemetrySink`; when omitted, events
            go to the ambient sink if one is installed.
        """
        self.model = result.model
        self.store = result.store
        self.aux_generator = result.aux_generator
        self.batch_size = batch_size
        self.out_dtype = np.dtype(self.model.config.dtype)
        self.blend = self.model.config.cold_inference in ("blend", "dual")
        self.telemetry = telemetry
        self.metrics = MetricsRegistry()
        self.docs = ColdStartDocuments(result)
        self.items = ItemIndex(
            self.model, self.store, catalog=catalog,
            block=batch_size, metrics=self.metrics,
        )
        self.users = UserReprCache(
            self._encode_users, capacity=cache_capacity, metrics=self.metrics
        )

    # ------------------------------------------------------------------
    # Telemetry plumbing
    # ------------------------------------------------------------------
    def _emit(self, kind: str, **fields) -> None:
        sink = self.telemetry if self.telemetry is not None else get_active_sink()
        if sink is not None:
            sink.emit(kind, **fields)

    def _cache_counters(self) -> tuple[int, int]:
        return self.users.hits, self.users.misses

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _encode_users(self, user_ids: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
        """Stacked rating-head inputs for ``user_ids`` (one blocked pass per
        extractor tower, then the mode-specific combination of Eq. 18)."""
        start = time.perf_counter()
        target_docs = np.stack([self.docs.target_doc(u) for u in user_ids])
        with inference_mode(self.model):
            target_inv, target_spec = encode_blocked(
                lambda chunk: tuple(
                    t.data for t in self.model.user_extractor.extract_target(chunk)
                ),
                target_docs,
                self.batch_size,
            )
            source_inv = None
            if self.blend:
                source_docs = np.stack([self.docs.source_doc(u) for u in user_ids])
                source_inv, _ = encode_blocked(
                    lambda chunk: tuple(
                        t.data
                        for t in self.model.user_extractor.extract_source(chunk)
                    ),
                    source_docs,
                    self.batch_size,
                )
            # _rating_inputs is purely elementwise + concat, so its per-row
            # results do not depend on the batch's row count — safe to run
            # on the whole miss batch at once.
            invariant, user_repr = self.model._rating_inputs(
                nn.Tensor(source_inv) if source_inv is not None else None,
                nn.Tensor(target_inv),
                nn.Tensor(target_spec),
            )
            invariant, user_repr = invariant.data, user_repr.data
        self.metrics.inc("serve.users_encoded", len(user_ids))
        self.metrics.observe(
            "serve.encode_users_seconds", time.perf_counter() - start
        )
        return invariant, user_repr

    def warm(self, user_ids: Iterable[str]) -> int:
        """Pre-encode a user cohort; returns how many were newly encoded."""
        start = time.perf_counter()
        encoded = self.users.warm(user_ids)
        self._emit(
            "serve_encode_users",
            users=encoded, seconds=time.perf_counter() - start,
        )
        return encoded

    def build_index(self) -> int:
        """Push the whole catalog through the item extractor (idempotent);
        returns the number of items encoded by this call."""
        before = self.items.encoded_count
        start = time.perf_counter()
        self.items.build()
        encoded = self.items.encoded_count - before
        if encoded:
            self._emit(
                "serve_index",
                items=encoded, catalog=len(self.items),
                seconds=time.perf_counter() - start,
            )
        return encoded

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _score_rows(
        self,
        invariant: np.ndarray,
        user_repr: np.ndarray,
        item_rows: np.ndarray,
    ) -> np.ndarray:
        """Expected ratings for aligned representation rows (Eq. 18 head).

        The head GEMM is as ``m``-dependent as the extractor GEMMs, so it
        runs through the same padded-block primitive: scores never depend
        on how a request was chunked or how many pairs shared the call.
        """
        features = np.concatenate(
            [user_repr, item_rows, invariant * item_rows], axis=1
        )

        def head(chunk: np.ndarray) -> np.ndarray:
            logits = self.model.rating_classifier(nn.Tensor(chunk))
            return F.softmax(logits, axis=-1).data @ RATING_VALUES

        with inference_mode(self.model):
            return encode_blocked(head, features, self.batch_size)

    def score_pairs(self, pairs: Sequence[tuple[str, str]]) -> np.ndarray:
        """Expected ratings for explicit ``(user_id, item_id)`` pairs.

        Bit-identical to the re-encoding reference path
        (:func:`repro.serve.reference.naive_score_pairs`) at the same
        ``batch_size``; each unique user/item is encoded at most once
        across the engine's lifetime (modulo LRU eviction).
        """
        pairs = list(pairs)
        start = time.perf_counter()
        hits_before, misses_before = self._cache_counters()
        out = np.empty(len(pairs), dtype=self.out_dtype)
        for chunk_start in range(0, len(pairs), self.batch_size):
            chunk = pairs[chunk_start : chunk_start + self.batch_size]
            invariant, user_repr = self.users.get_many([u for u, _ in chunk])
            item_rows = self.items.rows([i for _, i in chunk])
            out[chunk_start : chunk_start + len(chunk)] = self._score_rows(
                invariant, user_repr, item_rows
            )
        seconds = time.perf_counter() - start
        hits_after, misses_after = self._cache_counters()
        self.metrics.inc("serve.pairs_scored", len(pairs))
        self.metrics.observe("serve.score_seconds", seconds)
        if seconds > 0:
            self.metrics.observe("serve.pairs_per_sec", len(pairs) / seconds)
        self._emit(
            "serve_score",
            pairs=len(pairs), seconds=seconds,
            cache_hits=hits_after - hits_before,
            cache_misses=misses_after - misses_before,
        )
        return out

    def recommend(
        self,
        user_id: str,
        k: int = 10,
        exclude_items: Iterable[str] | None = None,
    ) -> list[Recommendation]:
        """Exact top-``k`` of full-catalog scoring for one user.

        Scores every catalog item via blocked rating-head GEMMs over the
        item matrix (bit-identical to ``score_pairs`` on the same pairs),
        then takes the top-``k`` with ``argpartition`` + an exact ordering
        pass; ties break toward the lower catalog slot. ``exclude_items``
        removes already-seen items from the ranking.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        start = time.perf_counter()
        self.build_index()
        catalog_size = len(self.items)
        if catalog_size == 0:
            return []
        reprs = self.items.reprs
        invariant, user_repr = self.users.get_many([user_id])
        scores = np.empty(catalog_size, dtype=self.out_dtype)
        for block_start in range(0, catalog_size, self.batch_size):
            rows = reprs[block_start : block_start + self.batch_size]
            scores[block_start : block_start + len(rows)] = self._score_rows(
                np.repeat(invariant, len(rows), axis=0),
                np.repeat(user_repr, len(rows), axis=0),
                rows,
            )
        if exclude_items:
            for item_id in exclude_items:
                slot = self.items.slots.get(item_id)
                if slot is not None:
                    scores[slot] = -np.inf
        ranked = min(k, int(np.isfinite(scores).sum()))
        if ranked == 0:
            return []
        top = np.argpartition(-scores, ranked - 1)[:ranked]
        top = top[np.lexsort((top, -scores[top]))]
        seconds = time.perf_counter() - start
        self.metrics.observe("serve.recommend_seconds", seconds)
        if seconds > 0:
            self.metrics.observe("serve.items_per_sec", catalog_size / seconds)
        self._emit(
            "serve_recommend",
            user=user_id, k=k, catalog=catalog_size, seconds=seconds,
        )
        return [
            Recommendation(self.items.item_ids[slot], float(scores[slot]))
            for slot in top
        ]
