"""``repro.serve`` — the high-throughput inference engine.

Encode-once serving for OmniMatch: an :class:`ItemIndex` holding the
catalog's item-representation matrix, a bounded :class:`UserReprCache` of
per-user rating-head inputs, and an :class:`InferenceEngine` that scores
(user, item) pairs from the caches and ranks the full catalog with exact
top-K. Predictions are bit-identical to the naive re-encoding path
(:func:`naive_score_pairs`) — see ``repro.serve.blocking`` for the
fixed-block encoding invariant that makes the guarantee hold.

``repro.core.ColdStartPredictor`` delegates here, so the evaluation
protocol and every caller of ``predict_pairs`` get the cached fast path
without code changes.

At scale, ``recommend(retrieval="ivf")`` swaps brute force for an
:class:`IVFIndex` — coarse k-means routing plus exact rating-head re-rank
over the probed inverted lists (``repro.serve.ann``), optionally routing
over an int8 :class:`QuantizedMatrix` store (``repro.serve.quant``).

As a service, :class:`RecommendDaemon` (``repro.serve.daemon``) shards the
catalog across a supervised worker fleet behind a JSON-lines socket
(``repro.serve.protocol``) with deadlines, bounded retries, load shedding
and a chaos-tested degradation ladder; :class:`ServeClient` talks to it
and ``repro.serve.loadtest`` drives and verifies it under fire.
"""

from .ann import DEFAULT_NPROBE, IVFBuildStats, IVFIndex, default_nlist
from .blocking import DEFAULT_BLOCK, encode_blocked, inference_mode
from .daemon import DaemonConfig, RecommendDaemon
from .engine import ColdStartDocuments, InferenceEngine, Recommendation
from .item_index import ItemIndex
from .loadtest import (
    LoadTestConfig,
    LoadTestResult,
    build_schedule,
    run_loadtest,
)
from .protocol import ServeClient
from .quant import QuantizedMatrix
from .reference import naive_score_pairs
from .shard_merge import merge_topk, shard_bounds, shard_topk
from .user_cache import DEFAULT_CAPACITY, UserReprCache

__all__ = [
    "DEFAULT_BLOCK",
    "DEFAULT_CAPACITY",
    "DEFAULT_NPROBE",
    "default_nlist",
    "encode_blocked",
    "inference_mode",
    "ColdStartDocuments",
    "DaemonConfig",
    "InferenceEngine",
    "IVFBuildStats",
    "IVFIndex",
    "ItemIndex",
    "LoadTestConfig",
    "LoadTestResult",
    "build_schedule",
    "run_loadtest",
    "QuantizedMatrix",
    "Recommendation",
    "RecommendDaemon",
    "ServeClient",
    "UserReprCache",
    "merge_topk",
    "naive_score_pairs",
    "shard_bounds",
    "shard_topk",
]
