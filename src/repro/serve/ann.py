"""IVF-style approximate top-K retrieval over the item-representation matrix.

``InferenceEngine.recommend`` is exact brute force: every catalog item goes
through the rating head on every call. That is fine at 10^3 items and
hopeless at 10^7. This module adds the standard two-stage fix:

1. **Coarse routing (build time).** K-means over the ``ItemIndex``
   representation matrix — deterministic k-means++ seeding from the run
   seed, Lloyd's iterations implemented as blocked GEMMs — assigns every
   catalog slot to one of ``nlist`` centroids and records the inverted
   lists.
2. **Probe + exact re-rank (query time).** The engine scores the ``nlist``
   centroids through the *exact* rating head (a centroid is scored like a
   pseudo-item, so "nearest" means "highest expected rating" in the model's
   own metric, not a proxy distance), probes the ``nprobe`` best, and runs
   the existing exact rating-head scoring over the union of their inverted
   lists only. Final scores are therefore bit-identical to brute force on
   the candidate set, and ``nprobe >= nlist`` degrades to the exact path,
   bit for bit.

The routing data can optionally live in an int8 quantized store
(``store="int8"``, see ``repro.serve.quant``): the k-means GEMMs then run
off the quantized codes with the dequantization scale folded into the small
centroid operand, cutting the index's resident representation memory ~4x.
Re-ranking always reads the float32 rows from the ``ItemIndex``.

Everything here is deterministic: the seeding RNG is derived from an
explicit seed, blocked GEMMs use fixed block sizes, and every tie
(assignment, probe order, ranking) breaks toward the lower index.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .quant import QuantizedMatrix

__all__ = ["DEFAULT_NPROBE", "IVFBuildStats", "IVFIndex", "default_nlist"]

#: Default number of inverted lists probed per query.
DEFAULT_NPROBE = 8

#: Default cap on Lloyd's iterations (early-stops when assignments settle).
DEFAULT_ITERS = 8

#: Rows per blocked GEMM during build (bounds transient memory, not results).
BUILD_BLOCK = 8192


def default_nlist(n_items: int) -> int:
    """The usual IVF heuristic: ``sqrt(n)`` lists, at least 1."""
    return max(1, min(n_items, int(round(math.sqrt(n_items)))))


@dataclass(frozen=True)
class IVFBuildStats:
    """What one index build did, for telemetry and benchmark reports."""

    items: int
    dim: int
    nlist: int
    iters_run: int
    converged: bool
    store: str
    seed: int
    seconds: float
    #: Resident bytes of the routing representation store (int8 codes +
    #: scales, or the float32 matrix the index routes over).
    store_bytes: int
    #: Bytes of the float32 representation matrix, for the memory ratio.
    float32_bytes: int


class _Float32Store:
    """Routing store that reads the float32 matrix directly (no copy)."""

    name = "float32"

    def __init__(self, reprs: np.ndarray) -> None:
        self._reprs = reprs

    @property
    def nbytes(self) -> int:
        return self._reprs.nbytes

    def rows(self, index) -> np.ndarray:
        return self._reprs[index]

    def fold(self, operand: np.ndarray) -> np.ndarray:
        return operand

    def scores(self, index, folded: np.ndarray) -> np.ndarray:
        return self._reprs[index] @ folded


class _Int8Store:
    """Routing store over int8 codes; dequant scale folds into the operand."""

    name = "int8"

    def __init__(self, reprs: np.ndarray) -> None:
        self._q = QuantizedMatrix(reprs)

    @property
    def nbytes(self) -> int:
        return self._q.nbytes

    def rows(self, index) -> np.ndarray:
        return self._q.dequantize(index)

    def fold(self, operand: np.ndarray) -> np.ndarray:
        return self._q.scale[:, None] * operand.astype(self._q.dtype, copy=False)

    def scores(self, index, folded: np.ndarray) -> np.ndarray:
        return self._q.codes[index].astype(self._q.dtype) @ folded


class IVFIndex:
    """Inverted-file index over a ``(n_items, d)`` representation matrix."""

    def __init__(
        self,
        reprs: np.ndarray,
        *,
        nlist: int | None = None,
        seed: int = 0,
        iters: int = DEFAULT_ITERS,
        store: str = "float32",
        block: int = BUILD_BLOCK,
    ) -> None:
        reprs = np.asarray(reprs)
        if reprs.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {reprs.shape}")
        if store not in ("float32", "int8"):
            raise ValueError("store must be 'float32' or 'int8'")
        if iters < 1:
            raise ValueError("iters must be >= 1")
        n, dim = reprs.shape
        if nlist is None:
            nlist = default_nlist(n)
        if nlist < 1 and n > 0:
            raise ValueError("nlist must be >= 1")
        nlist = min(nlist, n)
        self.block = max(1, int(block))
        self.dtype = reprs.dtype if reprs.dtype.kind == "f" else np.dtype(np.float32)

        start = time.perf_counter()
        self._store = (_Int8Store if store == "int8" else _Float32Store)(reprs)
        if n == 0:
            self.centroids = np.zeros((0, dim), dtype=self.dtype)
            self.assignments = np.zeros(0, dtype=np.intp)
            self.lists: list[np.ndarray] = []
            iters_run, converged = 0, True
        else:
            rng = np.random.default_rng(seed)
            self.centroids = self._seed_centroids(n, nlist, rng)
            iters_run, converged = self._lloyd(n, iters, rng)
            self.assignments = self._assign(n)
            self.lists = self._build_lists(n, nlist)
        self.stats = IVFBuildStats(
            items=n,
            dim=dim,
            nlist=nlist,
            iters_run=iters_run,
            converged=converged,
            store=store,
            seed=seed,
            seconds=time.perf_counter() - start,
            store_bytes=self._store.nbytes,
            float32_bytes=reprs.nbytes,
        )

    # ------------------------------------------------------------------
    @property
    def nlist(self) -> int:
        return len(self.centroids)

    def __len__(self) -> int:
        return self.stats.items

    # ------------------------------------------------------------------
    # Build: deterministic k-means++ seeding + blocked Lloyd iterations
    # ------------------------------------------------------------------
    def _seed_pool(self, n: int, nlist: int, rng: np.random.Generator) -> np.ndarray:
        """Slot sample used for seeding and empty-cluster repair. Bounded so
        k-means++'s ``nlist`` sequential passes stay cheap at 10^6 items."""
        size = min(n, max(4 * nlist, 2048))
        return np.sort(rng.choice(n, size=size, replace=False))

    def _seed_centroids(
        self, n: int, nlist: int, rng: np.random.Generator
    ) -> np.ndarray:
        self._pool_slots = self._seed_pool(n, nlist, rng)
        self._pool = np.ascontiguousarray(
            self._store.rows(self._pool_slots), dtype=self.dtype
        )
        self._pool_norm2 = np.einsum("ij,ij->i", self._pool, self._pool)
        pool = self._pool
        centroids = np.empty((nlist, pool.shape[1]), dtype=self.dtype)
        pick = int(rng.integers(len(pool)))
        centroids[0] = pool[pick]
        min_d2 = np.einsum("ij,ij->i", pool - centroids[0], pool - centroids[0])
        for j in range(1, nlist):
            total = float(min_d2.sum())
            if total > 0:
                # D^2-weighted pick via inverse CDF — deterministic given rng.
                r = rng.random() * total
                pick = min(
                    int(np.searchsorted(np.cumsum(min_d2), r, side="right")),
                    len(pool) - 1,
                )
            else:  # degenerate pool (duplicates): any point is as good
                pick = int(rng.integers(len(pool)))
            centroids[j] = pool[pick]
            delta = pool - centroids[j]
            np.minimum(min_d2, np.einsum("ij,ij->i", delta, delta), out=min_d2)
        return centroids

    def _assign_block(self, index, folded: np.ndarray, offsets: np.ndarray):
        """Nearest-centroid ids for one row block: ``argmax(x.c - |c|^2/2)``
        equals ``argmin |x - c|^2``; ``argmax`` breaks ties toward the
        lower centroid id."""
        return np.argmax(self._store.scores(index, folded) + offsets, axis=1)

    def _routing_operands(self) -> tuple[np.ndarray, np.ndarray]:
        folded = self._store.fold(self.centroids.T)
        offsets = -0.5 * np.einsum(
            "ij,ij->i", self.centroids, self.centroids
        ).astype(self.dtype)
        return folded, offsets

    def _lloyd(self, n: int, iters: int, rng: np.random.Generator) -> tuple[int, bool]:
        nlist = len(self.centroids)
        previous = np.full(n, -1, dtype=np.intp)
        iters_run, converged = 0, False
        for _ in range(iters):
            iters_run += 1
            folded, offsets = self._routing_operands()
            sums = np.zeros_like(self.centroids)
            counts = np.zeros(nlist, dtype=np.intp)
            assign = np.empty(n, dtype=np.intp)
            for start in range(0, n, self.block):
                index = slice(start, min(start + self.block, n))
                assign[index] = self._assign_block(index, folded, offsets)
                rows = self._store.rows(index)
                onehot = np.zeros((rows.shape[0], nlist), dtype=self.dtype)
                onehot[np.arange(rows.shape[0]), assign[index]] = 1.0
                sums += onehot.T @ rows
                counts += np.bincount(assign[index], minlength=nlist)
            occupied = counts > 0
            self.centroids[occupied] = (
                sums[occupied] / counts[occupied, None]
            ).astype(self.dtype)
            repaired = self._repair_empty(~occupied)
            if not repaired and np.array_equal(assign, previous):
                converged = True
                break
            previous = assign
        return iters_run, converged

    def _repair_empty(self, empty: np.ndarray) -> bool:
        """Re-seed empty centroids from the pool points farthest from their
        nearest centroid (deterministic; ties break toward lower slots)."""
        empties = np.flatnonzero(empty)
        if not len(empties):
            return False
        centroids = self.centroids
        best = (
            self._pool @ centroids.T
            - 0.5 * np.einsum("ij,ij->i", centroids, centroids)
        ).max(axis=1)
        # |x - nearest|^2 = |x|^2 - 2 * best; farthest-first, ties toward
        # the lower pool slot (stable sort of the negated distances).
        order = np.argsort(-(self._pool_norm2 - 2.0 * best), kind="stable")
        for rank, j in enumerate(empties):
            centroids[j] = self._pool[order[rank % len(order)]]
        return True

    def _assign(self, n: int) -> np.ndarray:
        folded, offsets = self._routing_operands()
        assign = np.empty(n, dtype=np.intp)
        for start in range(0, n, self.block):
            index = slice(start, min(start + self.block, n))
            assign[index] = self._assign_block(index, folded, offsets)
        return assign

    def _build_lists(self, n: int, nlist: int) -> list[np.ndarray]:
        order = np.argsort(self.assignments, kind="stable")
        counts = np.bincount(self.assignments, minlength=nlist)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        return [
            order[bounds[j] : bounds[j + 1]] for j in range(nlist)
        ]  # stable sort of ascending slots => each list is ascending

    # ------------------------------------------------------------------
    # Query-side helpers (the engine owns centroid *scoring*)
    # ------------------------------------------------------------------
    def candidate_slots(self, probe_order: Sequence[int], nprobe: int) -> np.ndarray:
        """Union of the inverted lists of the first ``nprobe`` centroids in
        ``probe_order``, sorted ascending (the exact-scoring slot order)."""
        if nprobe < 1:
            raise ValueError("nprobe must be >= 1")
        probed = list(probe_order)[: min(nprobe, len(self.lists))]
        if not probed:
            return np.zeros(0, dtype=np.intp)
        return np.sort(np.concatenate([self.lists[j] for j in probed]))
