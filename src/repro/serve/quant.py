"""Int8 symmetric quantization of the item-representation matrix.

The ANN routing structures (``repro.serve.ann``) never need the full
float32 precision of the item representations: coarse k-means assignment
only has to put each item into the *right neighborhood*, and the exact
rating-head re-rank downstream corrects any residual error. Storing the
routing copy of the ``(n_items, d)`` matrix as int8 with one float32 scale
per dimension cuts its memory ~4x, which is the difference between an
in-RAM index and paging at 10^7 items.

Scheme: symmetric per-dimension linear quantization.  For each dimension
``j``, ``scale[j] = max(|X[:, j]|) / 127`` and
``code[i, j] = round(X[i, j] / scale[j])`` clipped to ``[-127, 127]``
(-128 is unused so the code book is symmetric and ``-x`` quantizes to
``-q(x)``).  All-zero dimensions get scale 1.0 so dequantization is exact
there.

The routing GEMM never materializes the dequantized matrix: for
``X_hat @ W`` with ``X_hat = codes * scale`` (row-wise per-dimension), the
scale folds into the *small* operand — ``codes @ (scale[:, None] * W)`` —
so the only transient is the per-block int8 -> float32 cast. That is the
"dequant fused into the routing GEMM" the build path relies on; cluster
statistics that need raw rows use :meth:`QuantizedMatrix.dequantize` over
bounded blocks instead.
"""

from __future__ import annotations

import numpy as np

__all__ = ["QuantizedMatrix"]

#: Symmetric int8 code range ([-127, 127]; -128 stays unused).
_QMAX = 127.0


class QuantizedMatrix:
    """Symmetric per-dimension int8 view of a float matrix."""

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
        self.shape = matrix.shape
        self.dtype = matrix.dtype if matrix.dtype.kind == "f" else np.dtype(np.float32)
        peak = (
            np.max(np.abs(matrix), axis=0)
            if len(matrix)
            else np.zeros(matrix.shape[1], dtype=self.dtype)
        )
        scale = peak / _QMAX
        # All-zero dimensions carry no information; scale 1.0 keeps the
        # dequantized column exactly zero instead of dividing by zero.
        scale = np.where(scale > 0, scale, 1.0).astype(self.dtype)
        self.scale = scale
        self.codes = np.clip(
            np.rint(matrix / scale), -_QMAX, _QMAX
        ).astype(np.int8)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.shape[0]

    @property
    def nbytes(self) -> int:
        """Resident bytes of the quantized store (codes + scales)."""
        return self.codes.nbytes + self.scale.nbytes

    # ------------------------------------------------------------------
    def dequantize(self, rows: np.ndarray | slice | None = None) -> np.ndarray:
        """Reconstructed float rows (``codes * scale``), full or a block."""
        codes = self.codes if rows is None else self.codes[rows]
        return codes.astype(self.dtype) * self.scale

    def matmul(self, operand: np.ndarray, block: int = 8192) -> np.ndarray:
        """``dequantize() @ operand`` without materializing the dequantized
        matrix: the per-dimension scale folds into ``operand`` once, and the
        int8 codes are cast to float one ``block`` of rows at a time.
        """
        operand = np.asarray(operand)
        if operand.shape[0] != self.shape[1]:
            raise ValueError(
                f"operand rows {operand.shape[0]} != matrix dim {self.shape[1]}"
            )
        if block < 1:
            raise ValueError("block must be >= 1")
        fused = self.scale[:, None] * operand.astype(self.dtype, copy=False)
        out = np.empty((self.shape[0],) + operand.shape[1:], dtype=self.dtype)
        for start in range(0, self.shape[0], block):
            chunk = self.codes[start : start + block].astype(self.dtype)
            out[start : start + len(chunk)] = chunk @ fused
        return out

    def max_abs_error(self) -> float:
        """Worst-case per-element reconstruction error bound (scale / 2)."""
        return float(self.scale.max() / 2.0)
