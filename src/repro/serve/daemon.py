"""Resilient multi-worker recommendation daemon.

:class:`RecommendDaemon` turns the single-process
:class:`~repro.serve.engine.InferenceEngine` into a long-lived service
without giving up its bit-identity contract:

* The parent encodes the catalog **once**, publishes the ``(n, d)`` item
  matrix through a :class:`~repro.parallel.shm.ShmPack`, and forks a
  fixed fleet of workers (:class:`~repro.parallel.WorkerSupervisor`) that
  adopt zero-copy views of it. Each worker owns one contiguous slot shard
  and scores it through the exact blocked rating head, so the parent-side
  merge (:mod:`~repro.serve.shard_merge`) reproduces single-process
  ``recommend`` output bit for bit.
* Requests arrive over a JSON-lines socket (:mod:`~repro.serve.protocol`),
  are micro-batched under a max-delay budget, fanned to the shards, and
  merged as shard results stream back — no barrier across requests.

Robustness envelope (each failure mode is detected, mitigated, and keeps
a stated guarantee — see DESIGN.md §14 for the full table):

* **Worker death** mid-request: a housekeeping tick detects the corpse,
  respawns the slot at ``generation + 1`` with a fresh task queue, and
  re-dispatches every job the dead worker still owed, bounded by a retry
  budget. Completed responses are never wrong — a job either finishes
  with exact scores or fails loudly.
* **Wedged worker**: a stall watchdog SIGKILLs any slot whose oldest
  in-flight dispatch exceeds the stall budget, converting the stall into
  the already-handled death path.
* **Overload**: admission is bounded — beyond ``queue_limit`` queued
  requests the daemon sheds explicitly (``status: "shed"``, the wire's
  429) instead of queueing unboundedly; health/ready/stats probes are
  answered inline by the connection readers so they stay responsive
  while the compute path is saturated.
* **Sustained overload**: a degradation ladder with hysteresis — level 0
  serves as configured, level 1 forces IVF retrieval (approximate-but-
  exact-scored shortlists), level 2 additionally sheds requests for
  users no worker has encoded yet (cached-user-only).
* **Deadlines**: a request may carry ``deadline_ms``; expired requests
  are answered ``timeout`` whether still queued or in flight, and any
  late shard results are discarded, never half-merged.
* **Poisoned request**: a request that raises inside a worker is
  answered ``error`` for that request alone; batch-mates and the worker
  survive.

Telemetry: the parent writes a ``run-daemon.jsonl`` shard, each worker
generation writes ``run-w<slot>g<gen>.jsonl``, and :meth:`stop` merges
them into a schema-valid ``run.jsonl`` (tolerating shards torn by killed
workers).
"""

from __future__ import annotations

import os
import queue as queue_module
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..faults import POISON_USER, ServeKillPlan
from ..obs import TelemetrySink
from ..obs.merge import merge_shards
from ..parallel import ShmPack, WorkerSupervisor, attach
from .engine import InferenceEngine
from .protocol import ProtocolError, encode_message, read_messages, validate_request
from .shard_merge import merge_topk, shard_bounds, shard_topk

__all__ = ["DaemonConfig", "RecommendDaemon"]

#: Degradation ladder levels.
LEVEL_NORMAL, LEVEL_APPROXIMATE, LEVEL_CACHED_ONLY = 0, 1, 2
_LEVEL_NAMES = ("normal", "approximate", "cached_only")


@dataclass
class DaemonConfig:
    """Tunable envelope of the daemon (defaults suit the test worlds)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port; read it back from ``daemon.port``.
    port: int = 0
    workers: int = 2
    #: Micro-batch shape: flush a batch at ``max_batch`` requests or after
    #: ``max_delay_ms`` of the oldest request waiting, whichever first.
    max_batch: int = 8
    max_delay_ms: float = 2.0
    #: Admission bound: queued-but-undispatched requests beyond this shed.
    queue_limit: int = 64
    #: Applied when a request carries no ``deadline_ms`` (None = unbounded).
    default_deadline_ms: float | None = None
    #: In-flight dispatch older than this is a wedge: SIGKILL the worker.
    stall_timeout_s: float = 10.0
    #: Re-dispatches of one job to one slot after worker deaths.
    max_retries: int = 2
    #: Degradation ladder thresholds on depth (queued + in flight), with
    #: recovery at half the threshold (hysteresis so the level is stable).
    degrade_soft: int = 24
    degrade_hard: int = 48
    #: Housekeeping cadence (death sweep, watchdog, deadlines, ladder).
    tick_s: float = 0.01
    #: Seconds ``stop`` waits for in-flight jobs before failing them.
    drain_timeout_s: float = 5.0
    # Engine shape — must match any reference engine used for comparison.
    batch_size: int | None = None
    cache_capacity: int | None = None
    retrieval: str = "exact"
    nlist: int | None = None
    nprobe: int | None = None
    ann_store: str = "float32"
    ann_seed: int | None = None
    #: Build the coarse IVF index at worker start so the first degraded
    #: request does not pay the k-means build.
    prebuild_ann: bool = True
    #: Directory for telemetry shards (None disables telemetry).
    telemetry_dir: str | None = None
    #: Chaos hooks (repro.faults): deterministic deaths and stalls.
    kill_plan: object | None = None
    slow_plan: object | None = None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _execute_job(engine: InferenceEngine, job: dict, lo: int, hi: int):
    op = job["op"]
    # The document store deliberately tolerates unknown ids (all-padding
    # docs), so the chaos suite's poison sentinel trips here instead —
    # standing in for any request that raises mid-execution in a worker.
    if POISON_USER in (
        job.get("user"),
        *(user for user, _ in job.get("pairs", ())),
        *job.get("users", ()),
    ):
        raise RuntimeError(f"poisoned request: user {POISON_USER!r}")
    if op == "recommend":
        return shard_topk(
            engine,
            job["user"],
            job["k"],
            lo,
            hi,
            retrieval=job.get("retrieval", "exact"),
            nprobe=job.get("nprobe"),
            exclude_slots=set(job.get("exclude_slots", ())),
        )
    if op == "score":
        return [float(s) for s in engine.score_pairs(job["pairs"])]
    if op == "warm":
        return int(engine.warm(job["users"]))
    raise ValueError(f"unknown worker op {op!r}")


def _daemon_worker_main(
    slot: int,
    generation: int,
    task_queue,
    result_queue,
    result,
    shm_ref,
    catalog: Sequence[str],
    lo: int,
    hi: int,
    engine_options: dict,
    prebuild_ann: bool,
    telemetry_dir: str | None,
    run_stamp: str,
    kill_plan,
    slow_plan,
) -> None:
    """One serving worker: adopt the shared catalog, answer batches forever.

    Forked from the parent, so ``result`` (the trained model) arrives by
    inheritance, never pickled; the catalog matrix arrives as a read-only
    shared-memory view. ``None`` on the task queue is the stop sentinel.
    """
    pack = attach(shm_ref)
    sink = None
    if telemetry_dir is not None:
        sink = TelemetrySink(
            telemetry_dir,
            filename=f"run-w{slot}g{generation}.jsonl",
            run_id=f"{run_stamp}-w{slot}g{generation}",
        )
    engine = InferenceEngine(result, catalog=list(catalog), telemetry=sink, **engine_options)
    engine.items.adopt(pack["reprs"])
    if prebuild_ann and len(catalog):
        engine.ann_index()
    if sink is not None:
        sink.emit("worker_start", worker=slot, generation=generation)
        sink.flush()
    result_queue.put(("ready", slot, generation))

    def _die() -> None:
        # Injected death: drain this process's result-queue feeder before
        # exiting so a corpse never wedges the shared write lock, then die
        # without any other cleanup — exactly like a SIGKILL.
        result_queue.close()
        result_queue.join_thread()
        os._exit(ServeKillPlan.EXIT_CODE)

    batch_index = 0
    handled = 0
    busy = 0.0
    idle = 0.0
    while True:
        wait_start = time.perf_counter()
        message = task_queue.get()
        idle += time.perf_counter() - wait_start
        if message is None:
            break
        _, jobs = message
        if kill_plan is not None and kill_plan.should_kill(slot, generation, batch_index):
            _die()
        if slow_plan is not None:
            slow_plan.maybe_stall(slot, generation, batch_index)
        entries = []
        work_start = time.perf_counter()
        for job in jobs:
            try:
                entries.append((job["job"], "ok", _execute_job(engine, job, lo, hi)))
            except Exception as error:  # noqa: BLE001 - one bad request must
                # not take down the batch, the worker, or the fleet.
                entries.append(
                    (job["job"], "error", f"{type(error).__name__}: {error}")
                )
        busy += time.perf_counter() - work_start
        handled += len(jobs)
        result_queue.put(("results", slot, generation, batch_index, entries))
        batch_index += 1

    if sink is not None:
        sink.emit(
            "worker_end",
            worker=slot,
            busy_seconds=busy,
            idle_seconds=idle,
            tasks_done=handled,
        )
        sink.close()
    pack.close()
    result_queue.close()
    result_queue.join_thread()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _Connection:
    """One accepted client socket plus a write lock for its responders."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.file = sock.makefile("rb")
        self.lock = threading.Lock()
        self.open = True

    def send(self, message: dict) -> None:
        """Best-effort response write; a vanished client is not an error."""
        try:
            data = encode_message(message)
        except ProtocolError:  # pragma: no cover - responses are small
            return
        with self.lock:
            if not self.open:
                return
            try:
                self.sock.sendall(data)
            except OSError:
                self.open = False

    def close(self) -> None:
        with self.lock:
            self.open = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.file.close()
        finally:
            self.sock.close()


@dataclass
class _Request:
    """One admitted client request waiting for dispatch."""

    message: dict
    conn: _Connection
    arrival: float
    deadline: float | None


@dataclass
class _Job:
    """One dispatched request: shard bookkeeping until the merge."""

    job_id: int
    request: _Request
    op: str
    payload: dict
    pending: set[int]
    level: int
    retrieval: str | None = None
    partials: dict = field(default_factory=dict)
    attempts: dict = field(default_factory=dict)
    dispatched: dict = field(default_factory=dict)


class RecommendDaemon:
    """Supervised multi-worker serving front-end over one trained model."""

    def __init__(
        self,
        result,
        config: DaemonConfig | None = None,
        *,
        catalog: Sequence[str] | None = None,
        store=None,
    ) -> None:
        self.result = result
        self.config = config if config is not None else DaemonConfig()
        self._catalog_arg = catalog
        self._store = store
        self.port: int | None = None
        self._run_stamp = f"serve-{os.getpid():05d}"
        self._sink_lock = threading.Lock()
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._intake: deque[_Request] = deque()
        self._outstanding: dict[int, _Job] = {}
        self._served_users: set[str] = set()
        self._ready: dict[int, int] = {}  # slot -> generation that reported
        self._level = LEVEL_NORMAL
        self._counters = {
            "received": 0,
            "completed": 0,
            "shed": 0,
            "timeouts": 0,
            "errors": 0,
            "retries": 0,
            "deaths": 0,
            "stall_kills": 0,
            "degrades": 0,
        }
        self._latencies: deque[float] = deque(maxlen=4096)
        self._next_job = 0
        self._round_robin = 0
        self._stopping = False
        self._started = False
        self._threads: list[threading.Thread] = []
        self._connections: list[_Connection] = []
        self._sink: TelemetrySink | None = None
        self._pack: ShmPack | None = None
        self._supervisor: WorkerSupervisor | None = None
        self._listener: socket.socket | None = None
        self._last_stats = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "RecommendDaemon":
        """Encode the catalog, spawn the fleet, open the socket, go live."""
        if self._started:
            return self
        cfg = self.config
        if cfg.telemetry_dir is not None:
            self._sink = TelemetrySink(
                cfg.telemetry_dir,
                filename="run-daemon.jsonl",
                run_id=f"{self._run_stamp}-daemon",
            )

        engine_options = {}
        if cfg.batch_size is not None:
            engine_options["batch_size"] = cfg.batch_size
        if cfg.cache_capacity is not None:
            engine_options["cache_capacity"] = cfg.cache_capacity
        engine_options.update(
            nlist=cfg.nlist,
            nprobe=cfg.nprobe,
            ann_store=cfg.ann_store,
            ann_seed=cfg.ann_seed,
        )
        parent_engine = InferenceEngine(
            self.result,
            catalog=self._catalog_arg,
            store=self._store,
            **engine_options,
        )
        parent_engine.build_index()
        self.item_ids = list(parent_engine.items.item_ids)
        self._slots_by_item = dict(parent_engine.items.slots)
        reprs = parent_engine.items.reprs
        # Publish installs the SIGTERM/SIGINT shm sweep, so a killed daemon
        # never leaks the catalog segment.
        self._pack = ShmPack.publish({"reprs": reprs}, prefix="repro-serve")
        bounds = shard_bounds(len(self.item_ids), cfg.workers)

        result_queue = multiprocessing_queue()
        self._result_queue = result_queue
        shm_ref = self._pack.ref
        run_stamp = self._run_stamp
        result = self.result
        catalog = self.item_ids
        store_override = self._store
        if store_override is not None:
            # Workers build their engines from the same store the parent
            # encoded the catalog from (fork passes it by inheritance).
            worker_result = _ResultWithStore(result, store_override)
        else:
            worker_result = result

        def args_fn(slot: int, generation: int, task_queue):
            lo, hi = bounds[slot]
            return (
                slot,
                generation,
                task_queue,
                result_queue,
                worker_result,
                shm_ref,
                catalog,
                lo,
                hi,
                dict(engine_options),
                cfg.prebuild_ann,
                cfg.telemetry_dir,
                run_stamp,
                cfg.kill_plan,
                cfg.slow_plan,
            )

        self._supervisor = WorkerSupervisor(
            _daemon_worker_main, args_fn, cfg.workers
        )
        self._supervisor.start()

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((cfg.host, cfg.port))
        listener.listen(128)
        self._listener = listener
        self.port = listener.getsockname()[1]

        for name, fn in (
            ("accept", self._accept_loop),
            ("collect", self._collect_loop),
            ("batch", self._batch_loop),
            ("housekeeping", self._housekeeping_loop),
        ):
            thread = threading.Thread(
                target=fn, name=f"repro-daemon-{name}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

        self._started = True
        self._emit(
            "daemon_start",
            workers=cfg.workers,
            catalog=len(self.item_ids),
            port=self.port,
        )
        return self

    def wait_ready(self, timeout: float = 60.0) -> bool:
        """Block until every worker slot has reported ready."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.is_ready():
                return True
            time.sleep(0.01)
        return False

    def is_ready(self) -> bool:
        """Every slot's *current* generation has reported ready."""
        supervisor = self._supervisor
        if supervisor is None or not self._started:
            return False
        with self._lock:
            return all(
                self._ready.get(slot) == supervisor.generation(slot)
                for slot in range(self.config.workers)
            )

    def stop(self) -> dict:
        """Drain, stop the fleet, merge telemetry, release shared memory.

        Returns the final stats snapshot. Idempotent.
        """
        if not self._started or self._stopping:
            return self.stats()
        with self._cv:
            self._stopping = True
            self._cv.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        # Give in-flight jobs a drain window; the collector keeps merging.
        drain_until = time.monotonic() + self.config.drain_timeout_s
        while time.monotonic() < drain_until:
            with self._lock:
                if not self._outstanding and not self._intake:
                    break
            time.sleep(0.01)
        with self._lock:
            leftovers = list(self._outstanding.values())
            queued = list(self._intake)
            self._outstanding.clear()
            self._intake.clear()
        for job in leftovers:
            self._respond(
                job.request, {"status": "error", "error": "daemon stopping"}
            )
        for request in queued:
            self._respond(
                request, {"status": "error", "error": "daemon stopping"}
            )
        if self._supervisor is not None:
            self._supervisor.stop()
        for thread in self._threads:
            thread.join(timeout=5)
        for conn in list(self._connections):
            conn.close()
        snapshot = self.stats()
        self._emit(
            "daemon_stop",
            received=snapshot["received"],
            completed=snapshot["completed"],
            shed=snapshot["shed"],
            timeouts=snapshot["timeouts"],
            errors=snapshot["errors"],
            deaths=snapshot["deaths"],
        )
        if self._sink is not None:
            self._sink.close()
            try:
                merge_shards(self.config.telemetry_dir)
            except FileNotFoundError:  # pragma: no cover - sink wrote a shard
                pass
        if self._pack is not None:
            self._pack.unlink()
        return snapshot

    def __enter__(self) -> "RecommendDaemon":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Chaos hook
    # ------------------------------------------------------------------
    def kill_worker(self, slot: int) -> None:
        """SIGKILL one worker (chaos hook; healed like any other death)."""
        if self._supervisor is not None:
            with self._lock:
                self._supervisor.kill(slot)

    # ------------------------------------------------------------------
    # Stats / telemetry
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            latencies = np.array(self._latencies, dtype=np.float64)
            snapshot = dict(self._counters)
            snapshot.update(
                depth=len(self._intake) + len(self._outstanding),
                queued=len(self._intake),
                in_flight=len(self._outstanding),
                level=self._level,
                level_name=_LEVEL_NAMES[self._level],
                served_users=len(self._served_users),
                workers=self.config.workers,
                workers_alive=(
                    self._supervisor.alive_count()
                    if self._supervisor is not None
                    else 0
                ),
            )
        if len(latencies):
            snapshot["latency_p50_ms"] = float(np.percentile(latencies, 50) * 1e3)
            snapshot["latency_p99_ms"] = float(np.percentile(latencies, 99) * 1e3)
        return snapshot

    def _emit(self, kind: str, **fields) -> None:
        if self._sink is not None:
            with self._sink_lock:
                self._sink.emit(kind, **fields)
                self._sink.flush()

    # ------------------------------------------------------------------
    # Accept / per-connection reader
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping:
            try:
                sock, _ = listener.accept()
            except OSError:
                return  # listener closed: shutting down
            conn = _Connection(sock)
            self._connections.append(conn)
            thread = threading.Thread(
                target=self._client_loop, args=(conn,), daemon=True
            )
            thread.start()

    def _client_loop(self, conn: _Connection) -> None:
        try:
            for message in read_messages(conn.file):
                self._handle_message(conn, message)
        except (OSError, ValueError):
            pass
        finally:
            conn.close()
            try:
                self._connections.remove(conn)
            except ValueError:
                pass

    def _handle_message(self, conn: _Connection, message: dict) -> None:
        request_id = message.get("id")
        try:
            validate_request(message)
        except ProtocolError as error:
            conn.send({"id": request_id, "status": "error", "error": str(error)})
            return
        op = message["op"]
        # Probes bypass the compute queue entirely: they must answer even
        # when the daemon is saturated or degraded.
        if op == "health":
            conn.send(
                {
                    "id": request_id,
                    "status": "ok",
                    "alive": True,
                    "workers_alive": (
                        self._supervisor.alive_count()
                        if self._supervisor is not None
                        else 0
                    ),
                    "level": self._level,
                }
            )
            return
        if op == "ready":
            conn.send({"id": request_id, "status": "ok", "ready": self.is_ready()})
            return
        if op == "stats":
            conn.send({"id": request_id, "status": "ok", "stats": self.stats()})
            return

        now = time.monotonic()
        deadline_ms = message.get("deadline_ms", self.config.default_deadline_ms)
        request = _Request(
            message=message,
            conn=conn,
            arrival=now,
            deadline=None if deadline_ms is None else now + deadline_ms / 1e3,
        )
        with self._cv:
            self._counters["received"] += 1
            if self._stopping:
                shed_reason = "stopping"
            elif len(self._intake) >= self.config.queue_limit:
                shed_reason = "queue_full"
            elif (
                self._level >= LEVEL_CACHED_ONLY
                and op == "recommend"
                and message["user"] not in self._served_users
            ):
                shed_reason = "cold_user_degraded"
            else:
                shed_reason = None
            if shed_reason is not None:
                self._counters["shed"] += 1
                level = self._level
            else:
                self._intake.append(request)
                self._cv.notify_all()
        if shed_reason is not None:
            conn.send(
                {
                    "id": request_id,
                    "status": "shed",
                    "reason": shed_reason,
                    "level": level,
                }
            )

    # ------------------------------------------------------------------
    # Batching / dispatch
    # ------------------------------------------------------------------
    def _batch_loop(self) -> None:
        cfg = self.config
        max_delay = cfg.max_delay_ms / 1e3
        while True:
            with self._cv:
                while not self._stopping:
                    if self._intake:
                        age = time.monotonic() - self._intake[0].arrival
                        if len(self._intake) >= cfg.max_batch or age >= max_delay:
                            break
                        self._cv.wait(timeout=max(1e-4, max_delay - age))
                    else:
                        self._cv.wait(timeout=0.05)
                if self._stopping:
                    return
                batch = [
                    self._intake.popleft()
                    for _ in range(min(cfg.max_batch, len(self._intake)))
                ]
                expired = self._dispatch_batch(batch)
            # Socket writes happen outside the lock: a slow client must not
            # stall admission, collection, or the housekeeping tick.
            for request in expired:
                self._respond(
                    request,
                    {"status": "timeout", "error": "deadline expired in queue"},
                )

    def _dispatch_batch(self, batch: list[_Request]) -> list[_Request]:
        """Turn admitted requests into per-slot job batches (lock held).

        Returns the requests whose deadline already expired in the queue;
        the caller answers them after releasing the lock.
        """
        cfg = self.config
        now = time.monotonic()
        per_slot: dict[int, list[dict]] = {}
        expired: list[_Request] = []
        for request in batch:
            if request.deadline is not None and now > request.deadline:
                self._counters["timeouts"] += 1
                expired.append(request)
                continue
            message = request.message
            op = message["op"]
            self._next_job += 1
            job_id = self._next_job
            level = self._level
            if op == "recommend":
                retrieval = message.get("retrieval")
                if retrieval is None:
                    retrieval = (
                        "ivf" if level >= LEVEL_APPROXIMATE else cfg.retrieval
                    )
                exclude_slots = [
                    self._slots_by_item[item]
                    for item in message.get("exclude", [])
                    if item in self._slots_by_item
                ]
                payload = {
                    "job": job_id,
                    "op": "recommend",
                    "user": message["user"],
                    "k": message.get("k", 10),
                    "retrieval": retrieval,
                    "nprobe": message.get("nprobe", cfg.nprobe),
                    "exclude_slots": exclude_slots,
                }
                pending = set(range(cfg.workers))
            else:
                slot = self._round_robin % cfg.workers
                self._round_robin += 1
                if op == "score":
                    payload = {
                        "job": job_id,
                        "op": "score",
                        "pairs": [tuple(pair) for pair in message["pairs"]],
                    }
                else:  # warm
                    payload = {
                        "job": job_id,
                        "op": "warm",
                        "users": list(message["users"]),
                    }
                pending = {slot}
                retrieval = None
            job = _Job(
                job_id=job_id,
                request=request,
                op=op,
                payload=payload,
                pending=set(pending),
                level=level,
                retrieval=retrieval,
            )
            for slot in pending:
                job.attempts[slot] = 0
                job.dispatched[slot] = now
                per_slot.setdefault(slot, []).append(payload)
            self._outstanding[job_id] = job
        for slot, jobs in per_slot.items():
            self._supervisor.send(slot, ("batch", jobs))
        return expired

    # ------------------------------------------------------------------
    # Collection / merge
    # ------------------------------------------------------------------
    def _collect_loop(self) -> None:
        while True:
            try:
                message = self._result_queue.get(timeout=0.1)
            except queue_module.Empty:
                if self._stopping:
                    with self._lock:
                        if not self._outstanding:
                            return
                continue
            except (OSError, ValueError):  # queue torn down mid-get
                return
            kind = message[0]
            if kind == "ready":
                _, slot, generation = message
                with self._lock:
                    self._ready[slot] = generation
                self._emit("daemon_worker_ready", slot=slot, generation=generation)
            elif kind == "results":
                _, slot, generation, _batch_index, entries = message
                self._absorb_results(slot, entries)

    def _absorb_results(self, slot: int, entries: list) -> None:
        finished: list[tuple[_Job, dict]] = []
        with self._lock:
            for job_id, status, payload in entries:
                job = self._outstanding.get(job_id)
                if job is None or slot not in job.pending:
                    continue  # late duplicate after a retry, or timed out
                if status == "error":
                    del self._outstanding[job_id]
                    self._counters["errors"] += 1
                    finished.append(
                        (job, {"status": "error", "error": payload})
                    )
                    continue
                job.pending.discard(slot)
                job.partials[slot] = payload
                if job.pending:
                    continue
                del self._outstanding[job_id]
                now = time.monotonic()
                if job.request.deadline is not None and now > job.request.deadline:
                    self._counters["timeouts"] += 1
                    finished.append(
                        (
                            job,
                            {
                                "status": "timeout",
                                "error": "deadline expired in flight",
                            },
                        )
                    )
                    continue
                self._counters["completed"] += 1
                self._latencies.append(now - job.request.arrival)
                finished.append((job, self._success_response(job)))
        for job, response in finished:
            self._respond(job.request, response)

    def _success_response(self, job: _Job) -> dict:
        """Build the ``ok`` payload from shard partials (lock held)."""
        message = job.request.message
        if job.op == "recommend":
            merged = merge_topk(list(job.partials.values()), message.get("k", 10))
            self._served_users.add(message["user"])
            return {
                "status": "ok",
                "items": [[self.item_ids[slot], score] for slot, score in merged],
                "retrieval": job.retrieval,
                "level": job.level,
            }
        if job.op == "score":
            self._served_users.update(user for user, _ in message["pairs"])
            (scores,) = job.partials.values()
            return {"status": "ok", "scores": scores, "level": job.level}
        self._served_users.update(message["users"])
        (warmed,) = job.partials.values()
        return {"status": "ok", "warmed": warmed, "level": job.level}

    def _respond(self, request: _Request, response: dict) -> None:
        response.setdefault("id", request.message.get("id"))
        request.conn.send(response)

    # ------------------------------------------------------------------
    # Housekeeping: deaths, watchdog, deadlines, degradation
    # ------------------------------------------------------------------
    def _housekeeping_loop(self) -> None:
        cfg = self.config
        while not self._stopping:
            time.sleep(cfg.tick_s)
            failed: list[tuple[_Job, dict]] = []
            with self._lock:
                if self._supervisor is None:
                    continue
                deaths = self._supervisor.check()
                for death in deaths:
                    self._counters["deaths"] += 1
                    self._ready.pop(death.slot, None)
                    requeued = self._requeue_slot(death.slot, failed)
                    self._emit(
                        "daemon_worker_death",
                        slot=death.slot,
                        generation=death.generation,
                        exitcode=death.exitcode,
                        requeued=requeued,
                    )
                self._watchdog()
                self._sweep_deadlines(failed)
                self._update_level()
                now = time.monotonic()
                if now - self._last_stats >= 1.0:
                    self._last_stats = now
                    self._emit_stats()
            for job, response in failed:
                self._respond(job.request, response)

    def _requeue_slot(self, slot: int, failed: list) -> int:
        """Re-dispatch every job the dead slot still owed (lock held)."""
        now = time.monotonic()
        requeued = 0
        for job_id, job in list(self._outstanding.items()):
            if slot not in job.pending:
                continue
            attempt = job.attempts.get(slot, 0) + 1
            if attempt > self.config.max_retries:
                del self._outstanding[job_id]
                self._counters["errors"] += 1
                failed.append(
                    (
                        job,
                        {
                            "status": "error",
                            "error": (
                                f"retry budget exhausted after {attempt - 1} "
                                f"worker deaths"
                            ),
                        },
                    )
                )
                continue
            job.attempts[slot] = attempt
            job.dispatched[slot] = now
            self._counters["retries"] += 1
            self._supervisor.send(slot, ("batch", [job.payload]))
            requeued += 1
            self._emit(
                "daemon_requeue", job=job_id, slot=slot, attempt=attempt
            )
        return requeued

    def _watchdog(self) -> None:
        """SIGKILL slots whose oldest in-flight dispatch looks wedged."""
        now = time.monotonic()
        budget = self.config.stall_timeout_s
        stalled: set[int] = set()
        for job in self._outstanding.values():
            for slot in job.pending:
                age = now - job.dispatched.get(slot, now)
                if age > budget:
                    stalled.add(slot)
        for slot in stalled:
            self._counters["stall_kills"] += 1
            self._emit(
                "daemon_stall_kill",
                slot=slot,
                generation=self._supervisor.generation(slot),
                age_seconds=budget,
            )
            self._supervisor.kill(slot)

    def _sweep_deadlines(self, failed: list) -> None:
        """Expire queued and in-flight requests past their deadline."""
        now = time.monotonic()
        expired_queued = [
            request
            for request in self._intake
            if request.deadline is not None and now > request.deadline
        ]
        for request in expired_queued:
            self._intake.remove(request)
            self._counters["timeouts"] += 1
            failed.append(
                (
                    _Job(0, request, request.message["op"], {}, set(), self._level),
                    {"status": "timeout", "error": "deadline expired in queue"},
                )
            )
        for job_id, job in list(self._outstanding.items()):
            if job.request.deadline is not None and now > job.request.deadline:
                del self._outstanding[job_id]
                self._counters["timeouts"] += 1
                failed.append(
                    (
                        job,
                        {
                            "status": "timeout",
                            "error": "deadline expired in flight",
                        },
                    )
                )

    def _update_level(self) -> None:
        """Depth-driven degradation ladder with half-threshold hysteresis."""
        cfg = self.config
        depth = len(self._intake) + len(self._outstanding)
        level = self._level
        if depth >= cfg.degrade_hard:
            level = LEVEL_CACHED_ONLY
        elif depth >= cfg.degrade_soft:
            level = max(level, LEVEL_APPROXIMATE)
        elif depth <= cfg.degrade_soft // 2:
            level = LEVEL_NORMAL
        elif level == LEVEL_CACHED_ONLY and depth <= cfg.degrade_hard // 2:
            level = LEVEL_APPROXIMATE
        if level != self._level:
            self._counters["degrades"] += 1
            self._emit(
                "daemon_degrade",
                level=level,
                previous=self._level,
                depth=depth,
            )
            self._level = level

    def _emit_stats(self) -> None:
        self._emit(
            "daemon_stats",
            received=self._counters["received"],
            completed=self._counters["completed"],
            shed=self._counters["shed"],
            timeouts=self._counters["timeouts"],
            errors=self._counters["errors"],
            depth=len(self._intake) + len(self._outstanding),
            level=self._level,
        )


class _ResultWithStore:
    """A TrainResult proxy whose ``store`` is the daemon's override."""

    def __init__(self, result, store) -> None:
        self._result = result
        self.store = store

    def __getattr__(self, name: str):
        return getattr(self._result, name)


def multiprocessing_queue():
    """A fork-context queue (module-level so tests can monkeypatch it)."""
    import multiprocessing

    return multiprocessing.get_context("fork").Queue()
