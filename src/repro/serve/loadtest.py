"""Load generation and under-fire verification for the serving daemon.

:func:`run_loadtest` drives a :class:`~repro.serve.daemon.RecommendDaemon`
with zipf-skewed traffic from several client threads, optionally kills
workers at scheduled points mid-traffic (the chaos plan), and checks every
completed response for **bit-exact** agreement with a single-process
:class:`~repro.serve.engine.InferenceEngine` run in the same retrieval
mode — the daemon's core guarantee is that chaos may slow, shed, or fail
requests, but may never produce an incorrect completed response.

The request schedule is deterministic (seeded RNG): user popularity is
zipf-distributed (rank ``r`` drawn with weight ``1 / (r + 1)**s``), the
recommend/score mix is a seeded coin per request, and chaos kills are
keyed to request indices — so a failing chaos run replays exactly.

Accounting distinguishes every way a request can end: ``ok`` (verified),
``shed`` (explicit load rejection), ``timeout`` (daemon-side deadline),
``error`` (daemon answered that the request failed), and
``client_timeout`` (no response within the client's own patience — the
only bucket where the daemon said nothing). Recovery time after each
scheduled kill is measured as the gap from the kill to the next verified
``ok`` completion.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .protocol import ServeClient

__all__ = ["LoadTestConfig", "LoadTestResult", "build_schedule", "run_loadtest"]


@dataclass
class LoadTestConfig:
    """Shape of the generated traffic."""

    requests: int = 200
    #: Client threads, each with its own daemon connection.
    concurrency: int = 4
    k: int = 5
    #: Zipf skew exponent for user popularity (0 = uniform).
    zipf_s: float = 1.1
    #: Fraction of requests that are pair-scoring instead of recommend.
    score_fraction: float = 0.2
    #: Pairs per score request.
    score_pairs: int = 4
    #: Per-request daemon deadline (None = unbounded).
    deadline_ms: float | None = None
    #: Client-side patience per request.
    response_timeout_s: float = 30.0
    seed: int = 0


@dataclass
class LoadTestResult:
    """Outcome census of one load test."""

    sent: int = 0
    ok: int = 0
    shed: int = 0
    timeouts: int = 0
    errors: int = 0
    client_timeouts: int = 0
    #: Completed responses whose payload differed from the reference engine.
    mismatches: list = field(default_factory=list)
    #: Wall-clock seconds per completed (any status) request.
    latencies: list = field(default_factory=list)
    #: Seconds from each scheduled kill to the next verified ok response.
    recoveries: list = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def failed(self) -> int:
        """Requests that did not complete: shed + timeouts + errors +
        client timeouts (every one answered or accounted, never silent)."""
        return self.shed + self.timeouts + self.errors + self.client_timeouts

    def latency_ms(self, percentile: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), percentile) * 1e3)

    def summary(self) -> dict:
        throughput = self.sent / self.wall_seconds if self.wall_seconds > 0 else 0.0
        return {
            "sent": self.sent,
            "ok": self.ok,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "client_timeouts": self.client_timeouts,
            "mismatches": len(self.mismatches),
            "failed_fraction": self.failed / self.sent if self.sent else 0.0,
            "latency_p50_ms": self.latency_ms(50),
            "latency_p99_ms": self.latency_ms(99),
            "requests_per_sec": throughput,
            "wall_seconds": self.wall_seconds,
            "recovery_max_s": max(self.recoveries) if self.recoveries else 0.0,
        }


def _zipf_weights(count: int, s: float) -> np.ndarray:
    weights = 1.0 / np.power(np.arange(1, count + 1, dtype=np.float64), s)
    return weights / weights.sum()


def build_schedule(
    users: list[str], items: list[str], config: LoadTestConfig
) -> list[dict]:
    """The deterministic request list a load test replays."""
    if not users:
        raise ValueError("load test needs at least one user")
    rng = np.random.default_rng(config.seed)
    user_weights = _zipf_weights(len(users), config.zipf_s)
    schedule: list[dict] = []
    for _ in range(config.requests):
        user = users[int(rng.choice(len(users), p=user_weights))]
        if items and rng.random() < config.score_fraction:
            chosen = rng.choice(
                len(items), size=min(config.score_pairs, len(items)), replace=False
            )
            request = {
                "op": "score",
                "pairs": [[user, items[int(i)]] for i in chosen],
            }
        else:
            request = {"op": "recommend", "user": user, "k": config.k}
        if config.deadline_ms is not None:
            request["deadline_ms"] = config.deadline_ms
        schedule.append(request)
    return schedule


def _verify(response: dict, request: dict, reference, ref_lock) -> str | None:
    """Compare one ok response against the reference engine, bit for bit.

    Returns a mismatch description, or None when the response is exact.
    """
    with ref_lock:
        if request["op"] == "recommend":
            expected = reference.recommend(
                request["user"],
                request["k"],
                retrieval=response.get("retrieval", "exact"),
            )
            got = [(item, score) for item, score in response.get("items", [])]
            want = [(r.item_id, r.score) for r in expected]
            if got != want:
                return (
                    f"recommend({request['user']!r}, k={request['k']}, "
                    f"retrieval={response.get('retrieval')!r}): "
                    f"got {got}, want {want}"
                )
        else:
            pairs = [tuple(p) for p in request["pairs"]]
            expected = [float(s) for s in reference.score_pairs(pairs)]
            got = list(response.get("scores", []))
            if got != expected:
                return f"score({pairs!r}): got {got}, want {expected}"
    return None


def run_loadtest(
    daemon,
    users: list[str],
    items: list[str] | None = None,
    *,
    reference=None,
    config: LoadTestConfig | None = None,
    kill_at: dict[int, int] | None = None,
) -> LoadTestResult:
    """Drive ``daemon`` with the scheduled traffic; verify every completion.

    ``kill_at`` maps request index → worker slot: immediately before that
    request is sent, the slot is SIGKILLed through ``daemon.kill_worker``
    (the chaos plan). ``reference`` is a single-process engine over the
    same model/catalog; when provided, each ``ok`` response is checked for
    exact equality and divergences land in ``result.mismatches``.
    """
    config = config if config is not None else LoadTestConfig()
    schedule = build_schedule(users, items or [], config)
    kill_at = dict(kill_at or {})
    result = LoadTestResult()
    lock = threading.Lock()
    ref_lock = threading.Lock()
    cursor = {"next": 0}
    kill_times: list[float] = []
    ok_times: list[float] = []

    def client_loop() -> None:
        client = ServeClient(daemon.config.host, daemon.port)
        try:
            while True:
                with lock:
                    index = cursor["next"]
                    if index >= len(schedule):
                        return
                    cursor["next"] = index + 1
                request = schedule[index]
                if index in kill_at:
                    daemon.kill_worker(kill_at[index])
                    with lock:
                        kill_times.append(time.monotonic())
                started = time.perf_counter()
                try:
                    response = client.request(
                        dict(request), timeout=config.response_timeout_s
                    )
                except (TimeoutError, ConnectionError):
                    with lock:
                        result.sent += 1
                        result.client_timeouts += 1
                    continue
                elapsed = time.perf_counter() - started
                status = response.get("status")
                mismatch = None
                if status == "ok" and reference is not None:
                    mismatch = _verify(response, request, reference, ref_lock)
                with lock:
                    result.sent += 1
                    result.latencies.append(elapsed)
                    if status == "ok":
                        result.ok += 1
                        ok_times.append(time.monotonic())
                        if mismatch is not None:
                            result.mismatches.append(
                                {"index": index, "detail": mismatch}
                            )
                    elif status == "shed":
                        result.shed += 1
                    elif status == "timeout":
                        result.timeouts += 1
                    else:
                        result.errors += 1
        finally:
            client.close()

    started = time.perf_counter()
    threads = [
        threading.Thread(target=client_loop, daemon=True)
        for _ in range(config.concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.wall_seconds = time.perf_counter() - started

    ok_sorted = sorted(ok_times)
    for killed_at in kill_times:
        later = [t for t in ok_sorted if t > killed_at]
        if later:
            result.recoveries.append(later[0] - killed_at)
    return result
