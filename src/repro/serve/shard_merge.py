"""Sharded top-K scoring: per-worker partial ranking, parent-side merge.

The daemon splits the catalog's slot space into contiguous shards — one
per worker — and asks each worker for its local top-K. Correctness rests
on two facts:

* **Row independence.** ``InferenceEngine._score_user_rows`` drives the
  rating head through fixed-shape padded blocks, so the score of slot
  ``s`` does not depend on which other slots share the call. A shard
  scoring ``[lo, hi)`` therefore produces *bit-identical* scores to a
  full-catalog scan restricted to those rows.
* **Total order.** Ranking is by ``(-score, slot)`` — strictly total, no
  float ties left to argsort whims — so the merge of per-shard top-K
  lists equals the global top-K exactly: any item in the global top-K is
  in its own shard's top-K (at most K items beat it anywhere, so at most
  K beat it locally).

IVF retrieval shards the *shortlist* instead: every worker holds the same
deterministically built coarse index (same matrix, seed, nlist, iters →
same k-means), probes it identically, and scores only the candidate slots
inside its shard. The union of shard candidates is exactly the global
candidate set, so sharded IVF matches single-process IVF bit for bit, and
``nprobe >= nlist`` remains the exact path.
"""

from __future__ import annotations

import numpy as np

__all__ = ["merge_topk", "shard_bounds", "shard_topk"]


def shard_bounds(n_items: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` slot ranges splitting ``n_items`` evenly.

    The first ``n_items % shards`` shards get one extra slot; empty
    shards are legal (a 2-item catalog on 4 workers) and score nothing.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    base, extra = divmod(n_items, shards)
    bounds = []
    lo = 0
    for shard in range(shards):
        hi = lo + base + (1 if shard < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def shard_topk(
    engine,
    user_id: str,
    k: int,
    lo: int,
    hi: int,
    *,
    retrieval: str = "exact",
    nprobe: int | None = None,
    exclude_slots=None,
) -> list[tuple[int, float]]:
    """Local top-``k`` of slots ``[lo, hi)`` as ``[(slot, score), ...]``.

    Scores go through the engine's exact blocked rating head, so each
    ``(slot, score)`` is bit-identical to what a full-catalog
    ``recommend`` computes for that slot. The returned list is sorted by
    ``(-score, slot)`` and carries plain Python ints/floats (picklable,
    JSON-exact: float32 → float64 round-trips losslessly).
    """
    reprs = engine.items.reprs
    invariant, user_repr = engine.users.get_many([user_id])
    if retrieval == "ivf":
        index = engine.ann_index()
        probes = min(
            nprobe if nprobe is not None else engine.nprobe, index.nlist
        )
        candidates = engine._probe(index, invariant, user_repr, probes)
        slots = candidates[(candidates >= lo) & (candidates < hi)]
    else:
        slots = np.arange(lo, hi, dtype=np.intp)
    if exclude_slots:
        keep = np.fromiter(
            (int(s) not in exclude_slots for s in slots),
            dtype=bool,
            count=len(slots),
        )
        slots = slots[keep]
    if len(slots) == 0:
        return []
    scores = engine._score_user_rows(invariant, user_repr, reprs, slots)
    kept = min(k, len(slots))
    if kept < len(slots):
        top = np.argpartition(-scores, kept - 1)[:kept]
    else:
        top = np.arange(len(slots))
    top = top[np.lexsort((slots[top], -scores[top]))]
    return [(int(slots[i]), float(scores[i])) for i in top]


def merge_topk(
    shard_lists: list[list[tuple[int, float]]], k: int
) -> list[tuple[int, float]]:
    """Global top-``k`` from per-shard partials, ordered by ``(-score, slot)``.

    Shards are disjoint slot ranges, so no dedup is needed; the merge is a
    plain sort of at most ``shards * k`` entries.
    """
    merged = [pair for shard in shard_lists for pair in shard]
    merged.sort(key=lambda pair: (-pair[1], pair[0]))
    return merged[:k]
