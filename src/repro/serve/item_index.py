"""Item-representation index: the catalog side of the serving engine.

The OmniMatch rating head (Eq. 18) consumes items only through
``item_extractor(item_doc)`` — a per-item vector that never depends on the
user. The :class:`ItemIndex` therefore encodes each item exactly once and
holds the results in one contiguous ``(n_items, d)`` matrix, laid out so
the head's ``invariant * item_repr`` operand is a single broadcast multiply
against a slot-ordered row block (no per-pair gathers needed on the
full-catalog ranking path).

Encoding is lazy and blocked: ``rows(ids)`` materializes only the slots a
pair batch touches (what the eval protocol needs), while ``build()`` pushes
the whole catalog through the extractor in canonical blocks (what
``recommend`` needs). Either route produces bit-identical rows — see
``repro.serve.blocking`` for the invariant that makes this true.

Items outside the catalog (no visible target-domain reviews) are encoded
into an overflow side table from their all-padding documents, matching the
legacy predictor's behaviour of scoring any item id it is handed.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from ..obs import MetricsRegistry
from .blocking import DEFAULT_BLOCK, encode_blocked, inference_mode

__all__ = ["ItemIndex"]


class ItemIndex:
    """Encode-once item representations over a fixed catalog."""

    def __init__(
        self,
        model,
        store,
        catalog: Sequence[str] | None = None,
        block: int = DEFAULT_BLOCK,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.model = model
        self.store = store
        self.block = block
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.item_ids = (
            list(catalog)
            if catalog is not None
            else sorted(store.dataset.target.items)
        )
        self.slots = {item_id: slot for slot, item_id in enumerate(self.item_ids)}
        #: Fallback row shape/dtype for the zero-encoded-slots paths; actual
        #: encoder output (once seen) takes precedence in `_row_template`.
        self.dim = int(model.item_extractor.output_dim)
        self.dtype = np.dtype(model.config.dtype)
        self._reprs: np.ndarray | None = None
        self._valid = np.zeros(len(self.item_ids), dtype=bool)
        self._overflow: dict[str, np.ndarray] = {}
        self._version = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.item_ids)

    def __contains__(self, item_id: str) -> bool:
        return item_id in self.slots

    @property
    def encoded_count(self) -> int:
        """Catalog slots encoded so far (overflow items not counted)."""
        return int(self._valid.sum())

    @property
    def version(self) -> int:
        """Bumped whenever catalog rows change (encodes or invalidation).

        Derived structures (the ANN retriever) key their caches on this so
        a stale coarse index is rebuilt before its next query.
        """
        return self._version

    # ------------------------------------------------------------------
    def _encode_docs(self, docs: np.ndarray) -> np.ndarray:
        with inference_mode(self.model):
            return encode_blocked(
                lambda chunk: self.model.item_extractor(chunk).data,
                docs,
                self.block,
            )

    def _encode_slots(self, slots: np.ndarray) -> None:
        docs = np.stack([self.store.item_doc(self.item_ids[s]) for s in slots])
        reprs = self._encode_docs(docs)
        if self._reprs is None:
            self._reprs = np.zeros(
                (len(self.item_ids), reprs.shape[1]), dtype=reprs.dtype
            )
        self._reprs[slots] = reprs
        self._valid[slots] = True
        self._version += 1
        self.metrics.inc("serve.items_encoded", len(slots))

    def ensure(self, item_ids: Iterable[str]) -> None:
        """Encode any of ``item_ids`` not yet materialized (blocked, in slot
        order); unknown ids go to the overflow table."""
        item_ids = list(item_ids)
        missing = sorted(
            {
                self.slots[i]
                for i in item_ids
                if i in self.slots and not self._valid[self.slots[i]]
            }
        )
        if missing:
            self._encode_slots(np.array(missing, dtype=np.intp))
        extra = sorted(
            {i for i in item_ids if i not in self.slots and i not in self._overflow}
        )
        if extra:
            docs = np.stack([self.store.item_doc(i) for i in extra])
            reprs = self._encode_docs(docs)
            for item_id, row in zip(extra, reprs):
                self._overflow[item_id] = row
            self.metrics.inc("serve.items_encoded", len(extra))

    def build(self) -> np.ndarray:
        """Materialize the full catalog matrix (encode-once; idempotent)."""
        missing = np.flatnonzero(~self._valid)
        if len(missing):
            start = time.perf_counter()
            self._encode_slots(missing)
            self.metrics.observe(
                "serve.index_build_seconds", time.perf_counter() - start
            )
        elif self._reprs is None:
            # Empty catalog (or one invalidated down to nothing to encode):
            # materialize an explicit (0, d) matrix in the configured compute
            # dtype instead of leaving the lazy None in place.
            dim, dtype = self._row_template()
            self._reprs = np.zeros((len(self.item_ids), dim), dtype=dtype)
        return self.reprs

    def adopt(self, reprs: np.ndarray) -> None:
        """Install an externally built catalog matrix (zero-copy).

        The serving daemon encodes the catalog exactly once in the parent,
        publishes the matrix through a shared-memory pack, and each worker
        adopts the attached view — the rows must have been produced by the
        same model through the canonical blocked encoder, or the engine's
        bit-identity contract is void. The array is used as-is (it may be
        a read-only shared-memory view); every slot is marked valid, so no
        encode path will ever write into it.
        """
        if reprs.ndim != 2 or reprs.shape[0] != len(self.item_ids):
            raise ValueError(
                f"adopted matrix must be ({len(self.item_ids)}, d); "
                f"got {reprs.shape}"
            )
        self._reprs = reprs
        self._valid = np.ones(len(self.item_ids), dtype=bool)
        self._version += 1

    def invalidate(self, item_ids: Iterable[str] | None = None) -> int:
        """Mark rows stale so the next access re-encodes them.

        Call after item documents change (new reviews, catalog refresh).
        With ``item_ids`` omitted, the whole catalog and the overflow table
        are dropped. Returns the number of rows invalidated; bumps
        :attr:`version` when anything was.
        """
        if item_ids is None:
            dropped = int(self._valid.sum()) + len(self._overflow)
            self._valid[:] = False
            self._overflow.clear()
        else:
            dropped = 0
            for item_id in item_ids:
                slot = self.slots.get(item_id)
                if slot is not None and self._valid[slot]:
                    self._valid[slot] = False
                    dropped += 1
                elif self._overflow.pop(item_id, None) is not None:
                    dropped += 1
        if dropped:
            self._version += 1
        return dropped

    @property
    def reprs(self) -> np.ndarray:
        """The ``(n_items, d)`` representation matrix (builds it if needed)."""
        if not self._valid.all() or self._reprs is None:
            return self.build()
        return self._reprs

    def _row_template(self) -> tuple[int, np.dtype]:
        """Width/dtype of a representation row. Prefers what the encoder
        actually produced; with zero encoded slots *and* an empty overflow
        table it falls back to the configured compute dtype explicitly."""
        if self._reprs is not None:
            return self._reprs.shape[1], self._reprs.dtype
        if self._overflow:
            first = next(iter(self._overflow.values()))
            return first.shape[-1], first.dtype
        return self.dim, self.dtype

    def rows(self, item_ids: Sequence[str]) -> np.ndarray:
        """Representation rows for ``item_ids`` (encoding misses first)."""
        self.ensure(item_ids)
        dim, dtype = self._row_template()
        out = np.empty((len(item_ids), dim), dtype)
        for position, item_id in enumerate(item_ids):
            slot = self.slots.get(item_id)
            out[position] = (
                self._overflow[item_id] if slot is None else self._reprs[slot]
            )
        return out
