"""Wire protocol of the recommendation daemon: JSON lines over a socket.

One request or response per line, UTF-8, newline-terminated. The format
is deliberately boring — any language can speak it with a TCP socket and
a JSON library — and every message is a flat object:

Requests
    ``{"id": 7, "op": "recommend", "user": "u12", "k": 10}``
    ``{"id": 8, "op": "score", "pairs": [["u12", "i3"], ["u12", "i9"]]}``
    ``{"id": 9, "op": "warm", "users": ["u12", "u13"]}``
    ``{"id": 0, "op": "health"}`` / ``{"op": "ready"}`` / ``{"op": "stats"}``

    ``id`` is caller-chosen and echoed back (responses to pipelined
    requests may arrive out of order). ``deadline_ms`` (optional) bounds
    how long the daemon may spend before the request is cancelled.

Responses
    Always carry ``id`` and ``status``: ``ok``, ``shed`` (load rejected —
    the 429 of this protocol; retry later against a healthier daemon),
    ``timeout`` (deadline expired; any computed result was discarded), or
    ``error`` (this request is at fault; retrying it will fail again).
    ``ok`` recommend responses carry ``items`` ``[[item_id, score], ...]``
    plus the ``retrieval`` mode and degradation ``level`` that produced
    them — scores are exact float64 JSON round-trips of the engine's
    output, so bit-identity against a reference engine is checkable from
    the wire.

:class:`ServeClient` is the blocking client used by the load generator,
the CLI and the tests; it supports pipelining through a tiny id→response
matchmaker.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Iterator

__all__ = [
    "MAX_LINE_BYTES",
    "OPS",
    "ProtocolError",
    "ServeClient",
    "decode_message",
    "encode_message",
    "read_messages",
    "validate_request",
]

#: Upper bound on one protocol line; longer lines are a client bug (or an
#: attack) and the connection is dropped rather than buffered unboundedly.
MAX_LINE_BYTES = 1 << 20

#: Operations a request may carry.
OPS = ("recommend", "score", "warm", "health", "ready", "stats")


class ProtocolError(ValueError):
    """A malformed protocol message (bad JSON, bad shape, oversized)."""


def encode_message(message: dict) -> bytes:
    """Serialize one message to its wire form (newline-terminated)."""
    line = json.dumps(message, sort_keys=True, separators=(",", ":"))
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
    return data


def decode_message(line: bytes | str) -> dict:
    """Parse one wire line into a message dict."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"malformed JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"message must be an object, got {type(message).__name__}")
    return message


def validate_request(message: dict) -> dict:
    """Shape-check one request; returns it on success."""
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (known: {', '.join(OPS)})")
    if op == "recommend":
        if not isinstance(message.get("user"), str):
            raise ProtocolError("recommend needs a string 'user'")
        k = message.get("k", 10)
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ProtocolError("recommend 'k' must be a positive integer")
    elif op == "score":
        pairs = message.get("pairs")
        if not isinstance(pairs, list) or not pairs or not all(
            isinstance(p, (list, tuple)) and len(p) == 2
            and all(isinstance(x, str) for x in p)
            for p in pairs
        ):
            raise ProtocolError("score needs 'pairs': [[user, item], ...]")
    elif op == "warm":
        users = message.get("users")
        if not isinstance(users, list) or not all(
            isinstance(u, str) for u in users
        ):
            raise ProtocolError("warm needs 'users': [user, ...]")
    deadline = message.get("deadline_ms")
    if deadline is not None and (
        isinstance(deadline, bool)
        or not isinstance(deadline, (int, float))
        or deadline < 0
    ):
        raise ProtocolError("'deadline_ms' must be a non-negative number")
    return message


def read_messages(stream) -> Iterator[dict]:
    """Yield decoded messages from a binary line stream (a socket file)."""
    for line in stream:
        if not line.strip():
            continue
        yield decode_message(line)


class ServeClient:
    """Blocking JSON-lines client for one daemon connection.

    Thread-compatible: one reader thread matches responses to waiting
    callers by ``id``, so several threads may pipeline requests over one
    connection (each with a distinct id), and a single-threaded caller
    gets plain request/response semantics.
    """

    def __init__(self, host: str, port: int, *, connect_timeout: float = 5.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        self._sock.settimeout(None)
        self._file = self._sock.makefile("rb")
        self._write_lock = threading.Lock()
        self._cv = threading.Condition()
        self._responses: dict[object, dict] = {}
        self._next_id = 0
        self._closed = False
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()

    # ------------------------------------------------------------------
    def _read_loop(self) -> None:
        try:
            for message in read_messages(self._file):
                with self._cv:
                    self._responses[message.get("id")] = message
                    self._cv.notify_all()
        except (OSError, ValueError):
            pass
        finally:
            with self._cv:
                self._closed = True
                self._cv.notify_all()

    def fresh_id(self) -> int:
        with self._cv:
            self._next_id += 1
            return self._next_id

    def send(self, request: dict) -> object:
        """Fire one request without waiting; returns its id."""
        if "id" not in request:
            request = {**request, "id": self.fresh_id()}
        data = encode_message(request)
        with self._write_lock:
            self._sock.sendall(data)
        return request["id"]

    def wait(self, request_id: object, timeout: float = 30.0) -> dict:
        """Block until the response for ``request_id`` arrives."""
        with self._cv:
            deadline_hit = not self._cv.wait_for(
                lambda: request_id in self._responses or self._closed,
                timeout=timeout,
            )
            if request_id in self._responses:
                return self._responses.pop(request_id)
            if deadline_hit:
                raise TimeoutError(f"no response for request {request_id!r}")
            raise ConnectionError("daemon connection closed")

    def request(self, request: dict, timeout: float = 30.0) -> dict:
        """Send one request and wait for its response."""
        return self.wait(self.send(request), timeout=timeout)

    # Convenience wrappers -------------------------------------------------
    def recommend(self, user: str, k: int = 10, **fields) -> dict:
        return self.request({"op": "recommend", "user": user, "k": k, **fields})

    def score(self, pairs, **fields) -> dict:
        return self.request(
            {"op": "score", "pairs": [list(p) for p in pairs], **fields}
        )

    def warm(self, users, **fields) -> dict:
        return self.request({"op": "warm", "users": list(users), **fields})

    def health(self) -> dict:
        return self.request({"op": "health"}, timeout=5.0)

    def ready(self) -> dict:
        return self.request({"op": "ready"}, timeout=5.0)

    def stats(self) -> dict:
        return self.request({"op": "stats"}, timeout=5.0)

    def close(self) -> None:
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._file.close()
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
