"""Canonical blocked encoding: the serving engine's bit-identity primitive.

The extractors bottom out in BLAS GEMMs, and a GEMM's per-row results are
*not* independent of the batch's row count: OpenBLAS picks kernels and
blocking by the ``m`` dimension, so the same document encoded in a batch of
7 and a batch of 256 can differ in the last float32 bit. They *are*
independent of the other rows' content — two batches with the same row
count produce bit-identical outputs row by row, whatever else shares the
batch (measured property; ``tests/serve/test_blocking.py`` pins it).

The serving engine therefore encodes **everything** — item catalog blocks,
user-cache fills, and the naive re-encoding reference path — through
:func:`encode_blocked`, which pads every block to exactly ``block`` rows.
With the GEMM ``m`` fixed, an entity's representation is a pure function of
its own document: encode-once caching, cache eviction + re-encode, and
full re-encoding all agree bit for bit.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

import numpy as np

from .. import nn

__all__ = ["DEFAULT_BLOCK", "encode_blocked", "inference_mode"]

#: Default rows per encode block (also the engine's default batch size).
DEFAULT_BLOCK = 256


@contextmanager
def inference_mode(model: nn.Module) -> Iterator[None]:
    """Eval mode + no-grad for the block, restoring the previous mode."""
    was_training = model.training
    model.eval()
    try:
        with nn.no_grad():
            yield
    finally:
        model.train(was_training)


def _pad_rows(rows: np.ndarray, block: int) -> np.ndarray:
    """Pad ``rows`` with all-padding-token documents up to ``block`` rows."""
    pad = np.zeros((block - len(rows), rows.shape[1]), dtype=rows.dtype)
    return np.concatenate([rows, pad])


def encode_blocked(
    encode: Callable[[np.ndarray], np.ndarray | Sequence[np.ndarray]],
    rows: np.ndarray,
    block: int = DEFAULT_BLOCK,
) -> np.ndarray | tuple[np.ndarray, ...]:
    """Run ``encode`` over ``rows`` in blocks of exactly ``block`` rows.

    The final partial block is padded with all-zero (padding-token)
    documents so every ``encode`` call sees the same row count; the pad
    rows' outputs are discarded. ``encode`` maps a ``(block, doc_len)``
    array to one ``(block, d)`` array or a tuple of them (e.g. the user
    extractor's ``(invariant, specific)`` pair); the outputs are stacked
    back to ``len(rows)`` rows in order.

    Raises ``ValueError`` on an empty input — callers own the trivial case
    because the output width is unknowable without running ``encode``.
    """
    if block < 1:
        raise ValueError("block must be >= 1")
    if len(rows) == 0:
        raise ValueError("encode_blocked needs at least one row")
    pieces: list[np.ndarray | Sequence[np.ndarray]] = []
    for start in range(0, len(rows), block):
        chunk = rows[start : start + block]
        kept = len(chunk)
        if kept < block:
            chunk = _pad_rows(chunk, block)
        out = encode(chunk)
        if isinstance(out, np.ndarray):
            pieces.append(out[:kept])
        else:
            pieces.append(tuple(part[:kept] for part in out))
    if isinstance(pieces[0], np.ndarray):
        return pieces[0] if len(pieces) == 1 else np.concatenate(pieces)
    outputs = tuple(
        parts[0] if len(pieces) == 1 else np.concatenate(parts)
        for parts in zip(*pieces)
    )
    return outputs
