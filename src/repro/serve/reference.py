"""The naive re-encoding reference path: correctness oracle and benchmark
baseline for the serving engine.

:func:`naive_score_pairs` is what serving looked like before the engine:
every call re-runs both extractor towers over the full token documents of
every pair — a user appearing in 500 pairs is encoded 500 times. It keeps
no representation state between calls (document *assembly* is still cached,
as the legacy predictor's was; the towers are what cost).

It produces **bit-identical** predictions to
:meth:`repro.serve.engine.InferenceEngine.score_pairs` at the same
``batch_size`` because both route every extractor pass through the
canonical blocked encoder (see ``repro.serve.blocking``) and chunk the
rating head identically. The regression tests and
``benchmarks/test_inference.py`` hold the two paths to exact equality.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import nn
from ..core.model import RATING_VALUES
from ..nn import functional as F
from .blocking import DEFAULT_BLOCK, encode_blocked, inference_mode
from .engine import ColdStartDocuments

__all__ = ["naive_score_pairs"]


def naive_score_pairs(
    result,
    pairs: Sequence[tuple[str, str]],
    batch_size: int = DEFAULT_BLOCK,
) -> np.ndarray:
    """Expected ratings for ``pairs``, re-encoding every document per call."""
    model = result.model
    store = result.store
    docs = ColdStartDocuments(result)
    blend = model.config.cold_inference in ("blend", "dual")
    out = np.empty(len(pairs), dtype=np.dtype(model.config.dtype))
    for start in range(0, len(pairs), batch_size):
        chunk = pairs[start : start + batch_size]
        target_docs = np.stack([docs.target_doc(u) for u, _ in chunk])
        item_docs = np.stack([store.item_doc(i) for _, i in chunk])
        with inference_mode(model):
            target_inv, target_spec = encode_blocked(
                lambda c: tuple(
                    t.data for t in model.user_extractor.extract_target(c)
                ),
                target_docs,
                batch_size,
            )
            source_inv = None
            if blend:
                source_docs = np.stack([docs.source_doc(u) for u, _ in chunk])
                source_inv, _ = encode_blocked(
                    lambda c: tuple(
                        t.data for t in model.user_extractor.extract_source(c)
                    ),
                    source_docs,
                    batch_size,
                )
            item_repr = encode_blocked(
                lambda c: model.item_extractor(c).data, item_docs, batch_size
            )
            invariant, user_repr = model._rating_inputs(
                nn.Tensor(source_inv) if source_inv is not None else None,
                nn.Tensor(target_inv),
                nn.Tensor(target_spec),
            )
            features = np.concatenate(
                [user_repr.data, item_repr, invariant.data * item_repr],
                axis=1,
            )
            # The head runs through the same padded-block primitive as the
            # engine's _score_rows — the GEMM m is fixed on both paths.
            scores = encode_blocked(
                lambda c: F.softmax(
                    model.rating_classifier(nn.Tensor(c)), axis=-1
                ).data
                @ RATING_VALUES,
                features,
                batch_size,
            )
        out[start : start + len(chunk)] = scores
    return out
