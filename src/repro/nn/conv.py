"""1-D text convolution and max-over-time pooling.

OmniMatch's Feature Extraction Module (paper §4.2, Eq. 4–7) applies a bank
of 1-D convolutions with kernel sizes (3, 4, 5) over the word-embedding
matrix of a review document, followed by ReLU and max-over-time pooling.

The convolution is implemented with a hand-written backward pass (rather
than being composed from primitive ops) because the im2col expansion is the
hot loop of training; the vectorized ``tensordot`` formulation below is
~50x faster than a per-window composition of autograd primitives.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from . import init
from . import tensor as _tensor
from .module import Module, Parameter
from .tensor import Tensor, _matmul_grad, concat, fast_math_enabled

__all__ = [
    "conv1d_text",
    "conv_bank_pool",
    "max_over_time",
    "max_mean_pool",
    "TextConv",
    "clear_conv_workspace",
]

#: Rotating pools of reusable im2col workspaces keyed by
#: (batch, t_out, kernel, embed, dtype). Each conv1d_text forward acquires
#: the pool's next buffer, copies its sliding windows in, and runs a single
#: contiguous GEMM — eliminating the dominant allocation of the hot loop.
#: Every acquisition stamps the buffer (``_BUF_STAMPS``); a backward pass
#: whose saved stamp is still current reuses the forward's columns as-is,
#: otherwise it refills from the saved input and grows the pool so that on
#: the next step every same-shaped conv in the model holds a distinct
#: buffer. Steady-state training therefore performs one im2col per conv
#: per step, never a backward refill.
_WORKSPACES: dict[tuple, list[np.ndarray]] = {}
_BUF_STAMPS: dict[int, int] = {}
_HANDOUTS: dict[tuple, int] = {}
_NEXT_STAMP = 0
_MAX_KEYS = 32
_MAX_POOL = 4


def clear_conv_workspace() -> None:
    """Drop all cached im2col buffers (frees memory between experiments)."""
    _WORKSPACES.clear()
    _BUF_STAMPS.clear()
    _HANDOUTS.clear()
    _PAD_BUFFERS.clear()


def _zeros_scratch(shape: tuple[int, ...], dtype: np.dtype) -> tuple[np.ndarray, bool]:
    """Zeroed step-scoped scratch, served from the graph arena when active.

    ``buf.fill(0)`` on a warm recycled buffer replaces a fresh ``np.zeros``
    (a calloc whose pages fault in on first touch every step) and produces
    the same bits, so the fused-kernel backwards stay replay-identical.
    """
    graph = _tensor._GRAPH
    if graph is not None and _tensor._GRAD_ENABLED:
        buf = graph.arena.request(shape, dtype)
        if buf is not None:
            buf.fill(0)
            return buf, True
    return np.zeros(shape, dtype=dtype), False


def _im2col(x_data: np.ndarray, kernel_size: int) -> tuple[np.ndarray, np.ndarray, int]:
    """Contiguous ``(batch * t_out, kernel * embed)`` window matrix.

    Fills a pooled workspace instead of allocating, and uses ``copyto`` from
    the strided ``sliding_window_view`` — the same copy ``tensordot`` would
    make internally, minus the allocation and axis bookkeeping. Returns the
    2-D column view plus the backing buffer and its acquisition stamp, so a
    backward pass can tell whether the columns are still valid.
    """
    global _NEXT_STAMP
    batch, seq_len, embed_dim = x_data.shape
    t_out = seq_len - kernel_size + 1
    key = (batch, t_out, kernel_size, embed_dim, x_data.dtype)
    pool = _WORKSPACES.get(key)
    if pool is None:
        if len(_WORKSPACES) >= _MAX_KEYS:
            clear_conv_workspace()
        pool = [np.empty((batch, t_out, kernel_size, embed_dim), dtype=x_data.dtype)]
        _WORKSPACES[key] = pool
    index = _HANDOUTS.get(key, 0)
    _HANDOUTS[key] = index + 1
    buf = pool[index % len(pool)]
    stamp = _NEXT_STAMP
    _NEXT_STAMP += 1
    _BUF_STAMPS[id(buf)] = stamp
    # (B, T, E, K) view -> (B, T, K, E) layout in the contiguous buffer
    np.copyto(buf, sliding_window_view(x_data, kernel_size, axis=1).transpose(0, 1, 3, 2))
    return buf.reshape(batch * t_out, kernel_size * embed_dim), buf, stamp


def conv1d_text(
    x: Tensor, weight: Tensor, bias: Tensor | None = None, relu: bool = False
) -> Tensor:
    """Valid 1-D convolution over the sequence axis of a token-embedding batch.

    Parameters
    ----------
    x:
        Input of shape ``(batch, seq_len, embed_dim)``.
    weight:
        Kernels of shape ``(num_filters, kernel_size, embed_dim)``.
    bias:
        Optional per-filter bias of shape ``(num_filters,)``.
    relu:
        Fuse a ReLU into the node (one in-place clamp instead of a separate
        tape node; the backward masks the incoming gradient by ``out > 0``).

    Returns
    -------
    Tensor of shape ``(batch, seq_len - kernel_size + 1, num_filters)``.

    Two equivalent implementations back this op. The fast path (default,
    see :func:`repro.nn.set_fast_math`) lowers the convolution to a single
    GEMM over a reused im2col workspace; the legacy path composes
    ``tensordot`` over the strided window view. Both share the hand-written
    backward.
    """
    batch, seq_len, embed_dim = x.data.shape
    num_filters, kernel_size, w_embed = weight.data.shape
    if w_embed != embed_dim:
        raise ValueError(f"embedding dim mismatch: input {embed_dim}, weight {w_embed}")
    if kernel_size > seq_len:
        raise ValueError(f"kernel size {kernel_size} exceeds sequence length {seq_len}")

    t_out = seq_len - kernel_size + 1
    fast = fast_math_enabled()
    served = False
    if fast:
        win2d, ws_buf, ws_stamp = _im2col(x.data, kernel_size)
        w2d = weight.data.reshape(num_filters, kernel_size * embed_dim)
        out_data = (win2d @ w2d.T).reshape(batch, t_out, num_filters)
        if bias is not None:
            out_data += bias.data
        if relu:
            np.maximum(out_data, 0.0, out=out_data)
    else:
        # (batch, T, embed, kernel) -> (batch, T, kernel, embed)
        windows = sliding_window_view(x.data, kernel_size, axis=1).transpose(0, 1, 3, 2)
        out_data = np.tensordot(windows, weight.data, axes=([2, 3], [1, 2]))
        if bias is not None:
            out_data = out_data + bias.data
        if relu:
            out_data = np.maximum(out_data, 0.0)

    def backward(grad: np.ndarray) -> None:
        if relu:
            grad = grad * (out_data > 0)
        grad2d = grad.reshape(batch * t_out, num_filters) if fast else None
        if weight.requires_grad:
            if fast:
                if _BUF_STAMPS.get(id(ws_buf)) == ws_stamp:
                    # No same-shaped conv touched the buffer since our
                    # forward; its columns are still ours.
                    cols = ws_buf.reshape(batch * t_out, kernel_size * embed_dim)
                else:
                    # Clobbered — refill from the saved input, and grow the
                    # pool so the next step keeps the live buffers apart.
                    pool = _WORKSPACES.get(
                        (batch, t_out, kernel_size, embed_dim, x.data.dtype)
                    )
                    if pool is not None and len(pool) < _MAX_POOL:
                        pool.append(np.empty_like(pool[0]))
                    cols, _, _ = _im2col(x.data, kernel_size)
                grad_w, from_arena = _matmul_grad(grad2d.T, cols)
                grad_w = grad_w.reshape(num_filters, kernel_size, embed_dim)
                weight._accumulate(grad_w, owned=True, arena=from_arena)
            else:
                # (kernel, embed, filters) -> (filters, kernel, embed)
                grad_w = np.tensordot(windows, grad, axes=([0, 1], [0, 1]))
                weight._accumulate(grad_w.transpose(2, 0, 1))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 1)), owned=True)
        if x.requires_grad:
            if fast:
                # One GEMM into (B*T_out, K*E) columns, then col2im slice-adds.
                gcols, _ = _matmul_grad(grad2d, weight.data.reshape(num_filters, -1))
                gcols = gcols.reshape(batch, t_out, kernel_size, embed_dim)
                grad_x, from_arena = _zeros_scratch(x.data.shape, x.data.dtype)
                for offset in range(kernel_size):
                    grad_x[:, offset : offset + t_out, :] += gcols[:, :, offset, :]
            else:
                grad_x, from_arena = np.zeros_like(x.data), False
                for offset in range(kernel_size):
                    # grad (B, T, F) @ weight[:, offset, :] (F, E) -> (B, T, E)
                    grad_x[:, offset : offset + t_out, :] += grad @ weight.data[:, offset, :]
            x._accumulate(grad_x, owned=True, arena=from_arena)

    return Tensor._make(
        out_data, (x, weight) + ((bias,) if bias is not None else ()), backward,
        op="conv1d_text", arena=served,
    )


#: Zero-initialized pad buffers for conv_bank_pool, keyed by shape+dtype.
#: Only the first ``seq_len`` frames are ever written, so the zero tail laid
#: down at allocation time persists across reuses.
_PAD_BUFFERS: dict[tuple, np.ndarray] = {}


def _padded_cols(
    x_data: np.ndarray, kernel_max: int, pad: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """im2col of ``x_data`` extended with ``pad`` zero frames on the right.

    The zero frames let one ``kernel_max``-tap window matrix serve every
    kernel size in a bank: a k-tap convolution equals the ``kernel_max``-tap
    convolution of its zero-extended kernel, and the extension supplies the
    window positions the smaller kernels reach past ``seq_len - kernel_max``.
    """
    batch, seq_len, embed_dim = x_data.shape
    if pad == 0:
        return _im2col(x_data, kernel_max)
    key = (batch, seq_len + pad, embed_dim, x_data.dtype)
    xpad = _PAD_BUFFERS.get(key)
    if xpad is None:
        if len(_PAD_BUFFERS) >= _MAX_KEYS:
            _PAD_BUFFERS.clear()
        xpad = np.zeros((batch, seq_len + pad, embed_dim), dtype=x_data.dtype)
        _PAD_BUFFERS[key] = xpad
    xpad[:, :seq_len] = x_data
    return _im2col(xpad, kernel_max)


def conv_bank_pool(
    x: Tensor,
    weights: list[Tensor],
    biases: list[Tensor | None],
    pooling: str = "max_mean",
    window_weights: list[np.ndarray | None] | None = None,
) -> Tensor:
    """Whole conv bank + ReLU + pooling as one tape node: ``(B, T, E) -> (B, D)``.

    Runs every kernel size of a :class:`TextConv` bank in a single GEMM by
    right-padding the input with ``max(k) - min(k)`` zero frames and
    zero-extending each kernel to ``max(k)`` taps, then slices the per-kernel
    feature maps out of the shared output and pools them in place. Output
    layout matches the composed formulation: per kernel, max-over-time then
    (for ``max_mean``) mean-over-time, concatenated over kernels —
    ``D = len(weights) * num_filters * (2 if pooling == 'max_mean' else 1)``.

    The hand-written backward scatters all pooled gradients into one
    full-bank array, applies the ReLU mask once, and recovers every
    gradient from two GEMMs. Compared to composing ``conv1d_text`` +
    pooling per kernel this trades ~25% more GEMM FLOPs (the zero taps) for
    one im2col instead of ``len(weights)``, one tape node instead of ~6,
    and strictly fewer allocations — a net win at the model's sizes
    (per-width GEMMs over column prefixes were measured ~30% slower than
    the single wide GEMM despite skipping the zero taps).
    """
    if pooling not in ("max", "mean", "max_mean"):
        raise ValueError("pooling must be 'max', 'mean', or 'max_mean'")
    batch, seq_len, embed_dim = x.data.shape
    kernel_sizes = [w.data.shape[1] for w in weights]
    filter_counts = [w.data.shape[0] for w in weights]
    offsets = np.concatenate([[0], np.cumsum(filter_counts)])
    total_f = int(offsets[-1])
    kernel_max = max(kernel_sizes)
    pad = kernel_max - min(kernel_sizes)
    t_out_pad = seq_len + pad - kernel_max + 1

    dtype = x.data.dtype
    w_all = np.zeros((total_f, kernel_max * embed_dim), dtype=dtype)
    bias_all = np.zeros(total_f, dtype=dtype)
    for i, (w, b, k) in enumerate(zip(weights, biases, kernel_sizes)):
        lo, hi = offsets[i], offsets[i + 1]
        w_all[lo:hi, : k * embed_dim] = w.data.reshape(filter_counts[i], -1)
        if b is not None:
            bias_all[lo:hi] = b.data

    cols, ws_buf, ws_stamp = _padded_cols(x.data, kernel_max, pad)
    # One wide GEMM against the zero-extended kernels. Splitting this per
    # kernel width (to skip the ~20% zero-tap FLOPs) measures ~30% *slower*:
    # narrow GEMMs waste more BLAS efficiency than the dead taps cost.
    # The feature-map scratch is recycled through the graph arena; every
    # element is overwritten by the GEMM, so reuse cannot change the bits.
    full2d = None
    graph = _tensor._GRAPH
    if graph is not None and _tensor._GRAD_ENABLED:
        full2d = graph.arena.request((batch * t_out_pad, total_f), dtype)
    if full2d is None:
        full2d = np.empty((batch * t_out_pad, total_f), dtype=dtype)
    np.matmul(cols, w_all.T, out=full2d)
    full = full2d.reshape(batch, t_out_pad, total_f)
    full += bias_all
    np.maximum(full, 0.0, out=full)

    num_k = len(kernel_sizes)
    f_each = filter_counts[0]
    # Uniform filter counts let the bank be viewed as (batch, t, num_k, f_each)
    # with each kernel's block an exact last-axis group, so both poolings
    # collapse to single whole-array primitives instead of per-kernel loops
    # over strided column slices. Tail rows (kernels narrower than kernel_max
    # produce fewer valid windows) are masked to -1 so they can never win the
    # max, and their mean weight is zero so they contribute exact +0.0 terms.
    vectorized = pooling == "max_mean" and all(c == f_each for c in filter_counts)
    full4 = mx4 = norm_stack = None
    saved: list[tuple] = []  # per kernel: (t_out, winners, normalized)
    if vectorized:
        full4 = full.reshape(batch, t_out_pad, num_k, f_each)
        norm_stack = np.zeros((batch, t_out_pad, num_k), dtype=dtype)
        for i, k in enumerate(kernel_sizes):
            t_out = seq_len - k + 1
            if t_out < t_out_pad:
                full4[:, t_out:, i, :] = -1.0
            wts = window_weights[i] if window_weights is not None else None
            if wts is None:
                norm_stack[:, :t_out, i] = 1.0 / t_out
            else:
                wts = np.asarray(wts, dtype=dtype)
                denom = np.maximum(wts.sum(axis=1, keepdims=True), 1e-9)
                norm_stack[:, :t_out, i] = wts / denom
        mx4 = full4.max(axis=1)
        mean4 = np.einsum("btkf,btk->bkf", full4, norm_stack)
        out3 = np.empty((batch, num_k, 2 * f_each), dtype=dtype)
        out3[:, :, :f_each] = mx4
        out3[:, :, f_each:] = mean4
        out = out3.reshape(batch, num_k * 2 * f_each)
    else:
        parts: list[np.ndarray] = []
        for i, k in enumerate(kernel_sizes):
            t_out = seq_len - k + 1
            block = full[:, :t_out, offsets[i] : offsets[i + 1]]
            winners = None
            if pooling in ("max", "max_mean"):
                winners = np.expand_dims(np.argmax(block, axis=1), axis=1)
                parts.append(np.take_along_axis(block, winners, axis=1)[:, 0, :])
            normalized = None
            if pooling in ("mean", "max_mean"):
                wts = window_weights[i] if window_weights is not None else None
                if wts is None:
                    parts.append(block.mean(axis=1))
                else:
                    wts = np.asarray(wts, dtype=dtype)
                    denom = np.maximum(wts.sum(axis=1, keepdims=True), 1e-9)
                    normalized = wts / denom
                    parts.append(np.einsum("btf,bt->bf", block, normalized))
            saved.append((t_out, winners, normalized))
        out = np.concatenate(parts, axis=1)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad)
        if vectorized:
            g3 = g.reshape(batch, num_k, 2 * f_each)
            g_max = g3[:, :, :f_each]
            g_mean = g3[:, :, f_each:]
            graph = _tensor._GRAPH
            grad_full = None
            if graph is not None and _tensor._GRAD_ENABLED:
                grad_full = graph.arena.request(full.shape, full.dtype)
            if grad_full is None:
                grad_full = np.empty(full.shape, dtype=full.dtype)
            gf4 = grad_full.reshape(batch, t_out_pad, num_k, f_each)
            # The mean gradient is one broadcast outer product over the whole
            # buffer (tail weights are zero, so tail rows land on exact
            # zeros — no separate fill pass); the max winner is then added on
            # top. argmax over the bool equality mask reproduces np.argmax's
            # first-index tie-break while scanning far faster than the float
            # argmax it replaces.
            np.multiply(norm_stack[:, :, :, None], g_mean[:, None, :, :], out=gf4)
            winners = np.argmax(full4 == mx4[:, None, :, :], axis=1)[:, None, :, :]
            vals = np.take_along_axis(gf4, winners, axis=1)
            vals += g_max[:, None, :, :]
            np.put_along_axis(gf4, winners, vals, axis=1)
        else:
            grad_full, _ = _zeros_scratch(full.shape, full.dtype)
            col = 0
            for i, (t_out, winners, normalized) in enumerate(saved):
                width = filter_counts[i]
                gblock = grad_full[:, :t_out, offsets[i] : offsets[i + 1]]
                if pooling in ("mean", "max_mean"):
                    # concat order per kernel is [max, mean]; mean is last
                    mean_col = col + width if pooling == "max_mean" else col
                    g_mean = g[:, mean_col : mean_col + width]
                    if normalized is None:
                        gblock += (g_mean / t_out)[:, None, :]
                    else:
                        gblock += g_mean[:, None, :] * normalized[:, :, None]
                if pooling in ("max", "max_mean"):
                    g_max = g[:, col : col + width]
                    vals = np.take_along_axis(gblock, winners, axis=1)
                    vals += g_max[:, None, :]
                    np.put_along_axis(gblock, winners, vals, axis=1)
                col += width * (2 if pooling == "max_mean" else 1)
        grad_full *= full > 0
        grad2d = grad_full.reshape(batch * t_out_pad, total_f)

        if any(w.requires_grad for w in weights):
            if _BUF_STAMPS.get(id(ws_buf)) == ws_stamp:
                bank_cols = ws_buf.reshape(batch * t_out_pad, kernel_max * embed_dim)
            else:
                # Clobbered by a same-shaped bank — refill, and grow the pool
                # so next step's banks keep distinct buffers.
                pool = _WORKSPACES.get(
                    (batch, t_out_pad, kernel_max, embed_dim, dtype)
                )
                if pool is not None and len(pool) < _MAX_POOL:
                    pool.append(np.empty_like(pool[0]))
                bank_cols, _, _ = _padded_cols(x.data, kernel_max, pad)
            grad_w_all, _ = _matmul_grad(grad2d.T, bank_cols)
            for i, (w, k) in enumerate(zip(weights, kernel_sizes)):
                if w.requires_grad:
                    gw = grad_w_all[offsets[i] : offsets[i + 1], : k * embed_dim]
                    w._accumulate(np.ascontiguousarray(gw).reshape(w.data.shape), owned=True)
        if any(b is not None and b.requires_grad for b in biases):
            gb_all = grad2d.sum(axis=0)
            for i, b in enumerate(biases):
                if b is not None and b.requires_grad:
                    b._accumulate(gb_all[offsets[i] : offsets[i + 1]].copy(), owned=True)
        if x.requires_grad:
            gcols, _ = _matmul_grad(grad2d, w_all)
            gcols = gcols.reshape(batch, t_out_pad, kernel_max, embed_dim)
            grad_xpad, served = _zeros_scratch((batch, seq_len + pad, embed_dim), dtype)
            for offset in range(kernel_max):
                grad_xpad[:, offset : offset + t_out_pad, :] += gcols[:, :, offset, :]
            x._accumulate(grad_xpad[:, :seq_len, :], owned=True, arena=served)

    parents = (x, *weights, *(b for b in biases if b is not None))
    return Tensor._make(out, parents, backward)


def max_over_time(x: Tensor) -> Tensor:
    """Max-pool over the sequence axis: ``(B, T, F) -> (B, F)`` (Eq. 6-7)."""
    return x.max(axis=1)


def max_mean_pool(x: Tensor, weights: np.ndarray | None = None) -> Tensor:
    """Fused ``max_over_time`` ∥ ``mean_over_time``: ``(B, T, F) -> (B, 2F)``.

    One tape node producing ``concat([max, mean], axis=1)`` for the
    ``max_mean`` pooling mode: the backward scatters both pooled gradients
    into a single full-shape array, so the feature map accumulates one
    gradient instead of two (and skips the intermediate concat node).
    Values and gradients match the composed formulation exactly.
    """
    data = x.data
    winners = np.expand_dims(np.argmax(data, axis=1), axis=1)  # (B, 1, F)
    max_part = np.take_along_axis(data, winners, axis=1)[:, 0, :]
    if weights is None:
        normalized = None
        mean_part = data.mean(axis=1)
    else:
        weights = np.asarray(weights, dtype=data.dtype)
        if weights.shape != data.shape[:2]:
            raise ValueError(f"weights shape {weights.shape} != {data.shape[:2]}")
        denom = np.maximum(weights.sum(axis=1, keepdims=True), 1e-9)
        normalized = weights / denom
        mean_part = np.einsum("btf,bt->bf", data, normalized)
    out = np.concatenate([max_part, mean_part], axis=1)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad)
        num_filters = data.shape[2]
        g_max, g_mean = g[:, :num_filters], g[:, num_filters:]
        if normalized is None:
            full = np.broadcast_to(
                (g_mean / data.shape[1])[:, None, :], data.shape
            ).copy()
        else:
            full = g_mean[:, None, :] * normalized[:, :, None]
        vals = np.take_along_axis(full, winners, axis=1)
        vals += g_max[:, None, :]
        np.put_along_axis(full, winners, vals, axis=1)
        x._accumulate(full, owned=True)

    return Tensor._make(out, (x,), backward)


def mean_over_time(x: Tensor, weights: np.ndarray | None = None) -> Tensor:
    """(Weighted) mean-pool over the sequence axis: ``(B, T, F) -> (B, F)``.

    ``weights`` (shape ``(B, T)``, non-negative) down-weights padded
    windows. Max pooling keeps only feature *presence*; mean pooling keeps
    feature *frequency* — e.g. the proportion of positive vs. negative
    sentiment words in a review document, which encodes a user's rating
    bias. OmniMatch's extractors use both.
    """
    if weights is None:
        return x.mean(axis=1)
    weights = np.asarray(weights, dtype=x.data.dtype)
    if weights.shape != x.data.shape[:2]:
        raise ValueError(f"weights shape {weights.shape} != {x.data.shape[:2]}")
    denom = weights.sum(axis=1, keepdims=True)
    denom = np.maximum(denom, 1e-9)
    normalized = weights / denom
    if fast_math_enabled():
        # One einsum instead of a (B, T, F) broadcast-multiply temp + sum.
        out = np.einsum("btf,bt->bf", x.data, normalized)

        def backward(grad: np.ndarray) -> None:
            x._accumulate(
                np.asarray(grad)[:, None, :] * normalized[:, :, None], owned=True
            )

        return Tensor._make(out, (x,), backward)
    w = Tensor(normalized[:, :, None])
    return (x * w).sum(axis=1)


class TextConv(Module):
    """Multi-kernel text CNN: convolve, ReLU, pool, concatenate.

    With kernel sizes ``(3, 4, 5)`` and ``num_filters`` filters each, the
    output dimension is ``3 * num_filters`` (doubled under ``max_mean``
    pooling) — the paper's extractor front-end (200 kernels per size in the
    paper; scaled down here).

    ``pooling``:
      * ``'max'`` — classic max-over-time (paper Eq. 6-7);
      * ``'mean'`` — padding-aware mean-over-time;
      * ``'max_mean'`` — both, concatenated. Presence *and* frequency of
        n-gram features; frequency carries e.g. a user's sentiment-word mix.
    """

    def __init__(
        self,
        embed_dim: int,
        num_filters: int,
        kernel_sizes: tuple[int, ...],
        rng: np.random.Generator,
        pooling: str = "max",
    ) -> None:
        super().__init__()
        if not kernel_sizes:
            raise ValueError("at least one kernel size is required")
        if pooling not in ("max", "mean", "max_mean"):
            raise ValueError("pooling must be 'max', 'mean', or 'max_mean'")
        self.embed_dim = embed_dim
        self.num_filters = num_filters
        self.kernel_sizes = tuple(kernel_sizes)
        self.pooling = pooling
        for k in self.kernel_sizes:
            setattr(
                self,
                f"weight_k{k}",
                Parameter(init.xavier_uniform((num_filters, k, embed_dim), rng)),
            )
            setattr(self, f"bias_k{k}", Parameter(init.zeros((num_filters,))))

    @property
    def output_dim(self) -> int:
        per_pool = 2 if self.pooling == "max_mean" else 1
        return self.num_filters * len(self.kernel_sizes) * per_pool

    @staticmethod
    def _window_weights(token_mask: np.ndarray, kernel_size: int) -> np.ndarray:
        """Fraction of non-pad tokens per convolution window: ``(B, T)``."""
        windows = sliding_window_view(token_mask, kernel_size, axis=1)
        return windows.mean(axis=-1)

    @staticmethod
    def _window_weights_from_cumsum(cumsum: np.ndarray, kernel_size: int) -> np.ndarray:
        """:meth:`_window_weights` from a precomputed mask cumsum.

        Window sums become two reads per window instead of ``kernel_size``,
        and one cumsum is shared by every kernel size in the bank. 0/1 masks
        keep all intermediate sums exactly representable, so this matches
        ``_window_weights`` bit-for-bit.
        """
        sums = cumsum[:, kernel_size - 1 :].copy()
        sums[:, 1:] -= cumsum[:, :-kernel_size]
        sums /= kernel_size
        return sums

    def forward(self, x: Tensor, token_mask: np.ndarray | None = None) -> Tensor:
        fast = fast_math_enabled()
        need_weights = token_mask is not None and self.pooling in ("mean", "max_mean")
        mask_cumsum = None
        if fast and need_weights:
            mask_cumsum = token_mask.astype(x.data.dtype).cumsum(axis=1)
        if fast:
            window_weights = [
                self._window_weights_from_cumsum(mask_cumsum, k)
                if mask_cumsum is not None
                else None
                for k in self.kernel_sizes
            ]
            return conv_bank_pool(
                x,
                [getattr(self, f"weight_k{k}") for k in self.kernel_sizes],
                [getattr(self, f"bias_k{k}") for k in self.kernel_sizes],
                pooling=self.pooling,
                window_weights=window_weights,
            )
        pooled = []
        for k in self.kernel_sizes:
            weight = getattr(self, f"weight_k{k}")
            bias = getattr(self, f"bias_k{k}")
            feature_map = conv1d_text(x, weight, bias, relu=True)
            weights = (
                self._window_weights(token_mask.astype(x.data.dtype), k)
                if need_weights
                else None
            )
            if self.pooling in ("max", "max_mean"):
                pooled.append(max_over_time(feature_map))
            if self.pooling in ("mean", "max_mean"):
                pooled.append(mean_over_time(feature_map, weights))
        return concat(pooled, axis=-1)
