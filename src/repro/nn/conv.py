"""1-D text convolution and max-over-time pooling.

OmniMatch's Feature Extraction Module (paper §4.2, Eq. 4–7) applies a bank
of 1-D convolutions with kernel sizes (3, 4, 5) over the word-embedding
matrix of a review document, followed by ReLU and max-over-time pooling.

The convolution is implemented with a hand-written backward pass (rather
than being composed from primitive ops) because the im2col expansion is the
hot loop of training; the vectorized ``tensordot`` formulation below is
~50x faster than a per-window composition of autograd primitives.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from . import init
from .module import Module, Parameter
from .tensor import Tensor, concat

__all__ = ["conv1d_text", "max_over_time", "TextConv"]


def conv1d_text(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Valid 1-D convolution over the sequence axis of a token-embedding batch.

    Parameters
    ----------
    x:
        Input of shape ``(batch, seq_len, embed_dim)``.
    weight:
        Kernels of shape ``(num_filters, kernel_size, embed_dim)``.
    bias:
        Optional per-filter bias of shape ``(num_filters,)``.

    Returns
    -------
    Tensor of shape ``(batch, seq_len - kernel_size + 1, num_filters)``.
    """
    batch, seq_len, embed_dim = x.data.shape
    num_filters, kernel_size, w_embed = weight.data.shape
    if w_embed != embed_dim:
        raise ValueError(f"embedding dim mismatch: input {embed_dim}, weight {w_embed}")
    if kernel_size > seq_len:
        raise ValueError(f"kernel size {kernel_size} exceeds sequence length {seq_len}")

    # (batch, T, embed, kernel) -> (batch, T, kernel, embed)
    windows = sliding_window_view(x.data, kernel_size, axis=1).transpose(0, 1, 3, 2)
    out_data = np.tensordot(windows, weight.data, axes=([2, 3], [1, 2]))
    if bias is not None:
        out_data = out_data + bias.data

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            # (kernel, embed, filters) -> (filters, kernel, embed)
            grad_w = np.tensordot(windows, grad, axes=([0, 1], [0, 1]))
            weight._accumulate(grad_w.transpose(2, 0, 1))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 1)))
        if x.requires_grad:
            grad_x = np.zeros_like(x.data)
            t_len = grad.shape[1]
            for offset in range(kernel_size):
                # grad (B, T, F) @ weight[:, offset, :] (F, E) -> (B, T, E)
                grad_x[:, offset : offset + t_len, :] += grad @ weight.data[:, offset, :]
            x._accumulate(grad_x)

    return Tensor._make(out_data, (x, weight) + ((bias,) if bias is not None else ()), backward)


def max_over_time(x: Tensor) -> Tensor:
    """Max-pool over the sequence axis: ``(B, T, F) -> (B, F)`` (Eq. 6-7)."""
    return x.max(axis=1)


def mean_over_time(x: Tensor, weights: np.ndarray | None = None) -> Tensor:
    """(Weighted) mean-pool over the sequence axis: ``(B, T, F) -> (B, F)``.

    ``weights`` (shape ``(B, T)``, non-negative) down-weights padded
    windows. Max pooling keeps only feature *presence*; mean pooling keeps
    feature *frequency* — e.g. the proportion of positive vs. negative
    sentiment words in a review document, which encodes a user's rating
    bias. OmniMatch's extractors use both.
    """
    if weights is None:
        return x.mean(axis=1)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != x.data.shape[:2]:
        raise ValueError(f"weights shape {weights.shape} != {x.data.shape[:2]}")
    denom = weights.sum(axis=1, keepdims=True)
    denom = np.maximum(denom, 1e-9)
    w = Tensor((weights / denom)[:, :, None])
    return (x * w).sum(axis=1)


class TextConv(Module):
    """Multi-kernel text CNN: convolve, ReLU, pool, concatenate.

    With kernel sizes ``(3, 4, 5)`` and ``num_filters`` filters each, the
    output dimension is ``3 * num_filters`` (doubled under ``max_mean``
    pooling) — the paper's extractor front-end (200 kernels per size in the
    paper; scaled down here).

    ``pooling``:
      * ``'max'`` — classic max-over-time (paper Eq. 6-7);
      * ``'mean'`` — padding-aware mean-over-time;
      * ``'max_mean'`` — both, concatenated. Presence *and* frequency of
        n-gram features; frequency carries e.g. a user's sentiment-word mix.
    """

    def __init__(
        self,
        embed_dim: int,
        num_filters: int,
        kernel_sizes: tuple[int, ...],
        rng: np.random.Generator,
        pooling: str = "max",
    ) -> None:
        super().__init__()
        if not kernel_sizes:
            raise ValueError("at least one kernel size is required")
        if pooling not in ("max", "mean", "max_mean"):
            raise ValueError("pooling must be 'max', 'mean', or 'max_mean'")
        self.embed_dim = embed_dim
        self.num_filters = num_filters
        self.kernel_sizes = tuple(kernel_sizes)
        self.pooling = pooling
        for k in self.kernel_sizes:
            setattr(
                self,
                f"weight_k{k}",
                Parameter(init.xavier_uniform((num_filters, k, embed_dim), rng)),
            )
            setattr(self, f"bias_k{k}", Parameter(init.zeros((num_filters,))))

    @property
    def output_dim(self) -> int:
        per_pool = 2 if self.pooling == "max_mean" else 1
        return self.num_filters * len(self.kernel_sizes) * per_pool

    @staticmethod
    def _window_weights(token_mask: np.ndarray, kernel_size: int) -> np.ndarray:
        """Fraction of non-pad tokens per convolution window: ``(B, T)``."""
        windows = sliding_window_view(token_mask, kernel_size, axis=1)
        return windows.mean(axis=-1)

    def forward(self, x: Tensor, token_mask: np.ndarray | None = None) -> Tensor:
        pooled = []
        for k in self.kernel_sizes:
            weight = getattr(self, f"weight_k{k}")
            bias = getattr(self, f"bias_k{k}")
            feature_map = conv1d_text(x, weight, bias).relu()
            if self.pooling in ("max", "max_mean"):
                pooled.append(max_over_time(feature_map))
            if self.pooling in ("mean", "max_mean"):
                weights = (
                    self._window_weights(token_mask.astype(np.float64), k)
                    if token_mask is not None
                    else None
                )
                pooled.append(mean_over_time(feature_map, weights))
        return concat(pooled, axis=-1)
