"""Core layers: Linear, Embedding, Dropout, ReLU, MLP.

Each layer takes an explicit RNG at construction so weight initialization is
reproducible, and (for :class:`Dropout`) at call time via a generator stored
on the layer.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor, fast_math_enabled, get_default_dtype

__all__ = ["Linear", "Embedding", "Dropout", "ReLU", "Tanh", "MLP", "LayerNorm"]


class Linear(Module):
    """Affine map ``y = x @ W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-index to dense-vector lookup table.

    Set ``trainable=False`` to freeze the table — the reproduction freezes
    its PPMI-SVD word embeddings just as the paper freezes fastText.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
        weights: np.ndarray | None = None,
        trainable: bool = True,
        padding_idx: int | None = None,
    ) -> None:
        super().__init__()
        if weights is not None:
            table = np.asarray(weights, dtype=get_default_dtype()).copy()
            if table.shape != (num_embeddings, embedding_dim):
                raise ValueError(
                    f"weights shape {table.shape} != ({num_embeddings}, {embedding_dim})"
                )
        else:
            if rng is None:
                raise ValueError("either weights or rng must be provided")
            table = init.normal((num_embeddings, embedding_dim), rng, std=0.1)
        if padding_idx is not None:
            table[padding_idx] = 0.0
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        self.trainable = trainable
        if trainable:
            self.weight = Parameter(table)
        else:
            self.weight = Tensor(table)

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.dtype.kind not in "iu":
            indices = indices.astype(np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        return self.weight.take_rows(indices)


class Dropout(Module):
    """Inverted dropout layer; identity when ``module.eval()`` is active."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self._rng, training=self.training)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class LayerNorm(Module):
    """Layer normalization over the last axis (used by the transformer ablation)."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gain = Parameter(init.ones((dim,)))
        self.shift = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gain + self.shift


class MLP(Module):
    """Multi-layer perceptron with ReLU activations and optional dropout.

    The paper uses MLPs for the domain classifier (Eq. 14/16), the rating
    classifier (Eq. 18), the contrastive projection head (Eq. 11), and the
    EMCDR mapping function — this single class serves all of them.
    """

    def __init__(
        self,
        dims: list[int],
        rng: np.random.Generator,
        dropout: float = 0.0,
        final_activation: bool = False,
    ) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        self.dims = list(dims)
        self.final_activation = final_activation
        self.linears: list[Linear] = []
        self.dropouts: list[Dropout | None] = []
        for index, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            linear = Linear(d_in, d_out, rng)
            setattr(self, f"linear{index}", linear)
            self.linears.append(linear)
            if dropout > 0.0:
                drop = Dropout(dropout, rng)
                setattr(self, f"dropout{index}", drop)
                self.dropouts.append(drop)
            else:
                self.dropouts.append(None)

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.linears) - 1
        fused = fast_math_enabled()
        for index, linear in enumerate(self.linears):
            if index < last or self.final_activation:
                if fused and x.data.ndim == 2:
                    x = F.linear_relu(x, linear.weight, linear.bias)
                else:
                    x = F.relu(linear(x))
                drop = self.dropouts[index]
                if drop is not None:
                    x = drop(x)
            else:
                x = linear(x)
        return x
