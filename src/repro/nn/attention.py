"""Small transformer encoder — the "BERT" feature-extractor ablation.

Table 5 of the paper includes an ``OmniMatch-BERT`` row in which the CNN
feature extractors are replaced with BERT, and finds the heavier contextual
encoder *underperforms* on short review summaries. Since pretrained BERT is
not available offline, this module provides a from-scratch multi-head
self-attention encoder filling the same architectural slot: a contextual
document encoder whose pooled output replaces the CNN's pooled output.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .layers import Dropout, LayerNorm, Linear
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["MultiHeadSelfAttention", "TransformerEncoderLayer", "TransformerEncoder"]


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query = Linear(dim, dim, rng)
        self.key = Linear(dim, dim, rng)
        self.value = Linear(dim, dim, rng)
        self.out = Linear(dim, dim, rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, T, D) -> (B, H, T, Dh)
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose((0, 2, 1, 3))

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.query(x), batch, seq)
        k = self._split_heads(self.key(x), batch, seq)
        v = self._split_heads(self.value(x), batch, seq)
        scores = (q @ k.transpose((0, 1, 3, 2))) / float(np.sqrt(self.head_dim))
        weights = F.softmax(scores, axis=-1)
        context = weights @ v  # (B, H, T, Dh)
        merged = context.transpose((0, 2, 1, 3)).reshape(batch, seq, self.dim)
        return self.out(merged)


class TransformerEncoderLayer(Module):
    """Pre-norm transformer block: attention + position-wise feed-forward."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        hidden_dim: int,
        rng: np.random.Generator,
        dropout: float = 0.1,
    ) -> None:
        super().__init__()
        self.attention = MultiHeadSelfAttention(dim, num_heads, rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.ff1 = Linear(dim, hidden_dim, rng)
        self.ff2 = Linear(hidden_dim, dim, rng)
        self.drop = Dropout(dropout, rng) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        attended = self.attention(self.norm1(x))
        if self.drop is not None:
            attended = self.drop(attended)
        x = x + attended
        hidden = F.relu(self.ff1(self.norm2(x)))
        if self.drop is not None:
            hidden = self.drop(hidden)
        return x + self.ff2(hidden)


class TransformerEncoder(Module):
    """Token embeddings + learned positions + N blocks + mean pooling.

    The pooled output has dimension ``dim`` and plugs into the same
    domain-invariant / domain-specific projection heads as the CNN.
    """

    def __init__(
        self,
        embed_dim: int,
        num_layers: int,
        num_heads: int,
        hidden_dim: int,
        max_len: int,
        rng: np.random.Generator,
        dropout: float = 0.1,
    ) -> None:
        super().__init__()
        self.max_len = max_len
        self.position = Parameter(init.normal((max_len, embed_dim), rng, std=0.02))
        self.blocks: list[TransformerEncoderLayer] = []
        for index in range(num_layers):
            block = TransformerEncoderLayer(embed_dim, num_heads, hidden_dim, rng, dropout)
            setattr(self, f"block{index}", block)
            self.blocks.append(block)
        self.final_norm = LayerNorm(embed_dim)

    def forward(self, x: Tensor) -> Tensor:
        """Encode ``(B, T, E)`` token embeddings into ``(B, E)`` pooled vectors."""
        seq = x.shape[1]
        if seq > self.max_len:
            raise ValueError(f"sequence length {seq} exceeds max_len {self.max_len}")
        x = x + self.position[:seq]
        for block in self.blocks:
            x = block(x)
        return self.final_norm(x).mean(axis=1)
