"""Save / load module parameters as ``.npz`` archives.

Checkpoints store arrays in whatever dtype the model trained in (float32 by
default for the trainer, float64 for gradcheck-mode models). Loading casts
each stored array to the receiving parameter's dtype, so checkpoints move
freely between float32 and float64 models; pass ``dtype`` to
:func:`load_module` to switch the module itself to a new dtype while
loading.

All writes are crash-safe: the archive is serialized in memory and lands on
disk through :func:`repro.atomicio.atomic_write_bytes` (temp file + fsync +
rename), so a process killed mid-save never leaves a truncated archive at
the destination path.
"""

from __future__ import annotations

import io
import os
from typing import TYPE_CHECKING

import numpy as np

from ..atomicio import atomic_write_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .module import Module

__all__ = ["save_module", "load_module", "npz_bytes", "save_arrays", "load_arrays"]


def npz_bytes(arrays: dict[str, np.ndarray]) -> bytes:
    """Serialize named arrays to the bytes of an uncompressed ``.npz``."""
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def save_arrays(path: str | os.PathLike, arrays: dict[str, np.ndarray]) -> None:
    """Atomically write named arrays as an ``.npz`` archive at ``path``."""
    atomic_write_bytes(path, npz_bytes(arrays))


def load_arrays(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Read every array from an ``.npz`` archive written by :func:`save_arrays`."""
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def save_module(module: "Module", path: str | os.PathLike) -> None:
    """Write every named parameter of ``module`` to an ``.npz`` file."""
    save_arrays(path, module.state_dict())


def load_module(
    module: "Module",
    path: str | os.PathLike,
    dtype: np.dtype | type | None = None,
) -> None:
    """Restore parameters saved by :func:`save_module` into ``module``.

    ``dtype`` (optional) recasts every parameter while loading — e.g. load a
    float64 checkpoint into a float32 inference model.
    """
    state = load_arrays(path)
    if dtype is not None:
        resolved = np.dtype(dtype)
        for _, param in module.named_parameters():
            param.data = param.data.astype(resolved, copy=False)
        state = {name: value.astype(resolved, copy=False) for name, value in state.items()}
    module.load_state_dict(state)
