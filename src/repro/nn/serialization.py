"""Save / load module parameters as ``.npz`` archives.

Checkpoints store arrays in whatever dtype the model trained in (float32 by
default for the trainer, float64 for gradcheck-mode models). Loading casts
each stored array to the receiving parameter's dtype, so checkpoints move
freely between float32 and float64 models; pass ``dtype`` to
:func:`load_module` to switch the module itself to a new dtype while
loading.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: "Module", path: str | os.PathLike) -> None:
    """Write every named parameter of ``module`` to an ``.npz`` file."""
    state = module.state_dict()
    np.savez(path, **state)


def load_module(
    module: "Module",
    path: str | os.PathLike,
    dtype: np.dtype | type | None = None,
) -> None:
    """Restore parameters saved by :func:`save_module` into ``module``.

    ``dtype`` (optional) recasts every parameter while loading — e.g. load a
    float64 checkpoint into a float32 inference model.
    """
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    if dtype is not None:
        resolved = np.dtype(dtype)
        for _, param in module.named_parameters():
            param.data = param.data.astype(resolved, copy=False)
        state = {name: value.astype(resolved, copy=False) for name, value in state.items()}
    module.load_state_dict(state)
