"""Save / load module parameters as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: "Module", path: str | os.PathLike) -> None:
    """Write every named parameter of ``module`` to an ``.npz`` file."""
    state = module.state_dict()
    np.savez(path, **state)


def load_module(module: "Module", path: str | os.PathLike) -> None:
    """Restore parameters saved by :func:`save_module` into ``module``."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
