"""Parameter initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so that
every experiment in the benchmark harness is exactly reproducible from its
seed — there is no hidden global RNG anywhere in ``repro``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "normal", "zeros", "uniform"]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot & Bengio (2010) uniform initialization."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He et al. (2015) uniform initialization, suited to ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    return rng.normal(0.0, std, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, bound: float = 0.05) -> np.ndarray:
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)
