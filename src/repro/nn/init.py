"""Parameter initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so that
every experiment in the benchmark harness is exactly reproducible from its
seed — there is no hidden global RNG anywhere in ``repro``.

Every initializer accepts a ``dtype``; when omitted, the module default
(:func:`repro.nn.tensor.get_default_dtype`) applies, so a model built under
``default_dtype("float32")`` gets float32 parameters throughout. The random
draws themselves are always made in float64 and cast afterwards, so the
same seed yields bit-identical values across dtypes (up to rounding).
"""

from __future__ import annotations

import numpy as np

from .tensor import get_default_dtype

__all__ = ["xavier_uniform", "kaiming_uniform", "normal", "zeros", "ones", "uniform"]


def _cast(array: np.ndarray, dtype: np.dtype | type | None) -> np.ndarray:
    resolved = np.dtype(dtype) if dtype is not None else get_default_dtype()
    return array.astype(resolved, copy=False)


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def xavier_uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    gain: float = 1.0,
    dtype: np.dtype | type | None = None,
) -> np.ndarray:
    """Glorot & Bengio (2010) uniform initialization."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return _cast(rng.uniform(-bound, bound, size=shape), dtype)


def kaiming_uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    dtype: np.dtype | type | None = None,
) -> np.ndarray:
    """He et al. (2015) uniform initialization, suited to ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return _cast(rng.uniform(-bound, bound, size=shape), dtype)


def normal(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    std: float = 0.01,
    dtype: np.dtype | type | None = None,
) -> np.ndarray:
    return _cast(rng.normal(0.0, std, size=shape), dtype)


def uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    bound: float = 0.05,
    dtype: np.dtype | type | None = None,
) -> np.ndarray:
    return _cast(rng.uniform(-bound, bound, size=shape), dtype)


def zeros(shape: tuple[int, ...], dtype: np.dtype | type | None = None) -> np.ndarray:
    return np.zeros(shape, dtype=np.dtype(dtype) if dtype is not None else get_default_dtype())


def ones(shape: tuple[int, ...], dtype: np.dtype | type | None = None) -> np.ndarray:
    return np.ones(shape, dtype=np.dtype(dtype) if dtype is not None else get_default_dtype())
