"""Loss functions: MSE, cross-entropy, and supervised contrastive loss.

The supervised contrastive loss follows Khosla et al. (2020), Eq. 13 of the
OmniMatch paper: for every anchor, positives are the samples in the batch
that carry the same label (here: user-item pairs with the same rating, and
the source/target views of the same user-item pair).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .module import Module
from .tensor import Tensor, fast_math_enabled

__all__ = [
    "MSELoss",
    "CrossEntropyLoss",
    "SupConLoss",
    "mse_loss",
    "cross_entropy",
    "softmax_cross_entropy",
    "supcon_loss",
]


def mse_loss(predicted: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    target_data = (
        target.data
        if isinstance(target, Tensor)
        else np.asarray(target, dtype=predicted.data.dtype)
    )
    diff = predicted - Tensor(target_data, dtype=predicted.data.dtype)
    return (diff * diff).mean()


def _check_logits_labels(logits: Tensor, labels: np.ndarray) -> np.ndarray:
    labels = np.asarray(labels, dtype=np.int64)
    if logits.data.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if labels.shape != (logits.data.shape[0],):
        raise ValueError(f"labels shape {labels.shape} incompatible with logits {logits.shape}")
    return labels


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Fused mean negative log-likelihood with a hand-written backward.

    One tape node replacing the exp / sum / log / gather chain of the
    composed formulation; the backward is the closed form
    ``(softmax(logits) - one_hot(labels)) / batch``. Numerically identical
    to the composed version (same max-shifted logsumexp), but ~5x fewer
    intermediate arrays on the training hot path.
    """
    labels = _check_logits_labels(logits, labels)
    x = logits.data
    n = x.shape[0]
    rows = np.arange(n)
    shifted = x - x.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    denom = exp.sum(axis=1, keepdims=True)
    log_likelihood = shifted[rows, labels] - np.log(denom[:, 0])
    loss = np.asarray(-log_likelihood.mean(), dtype=x.dtype)

    def backward(grad: np.ndarray) -> None:
        probs = exp / denom
        probs[rows, labels] -= 1.0
        probs *= np.asarray(grad, dtype=x.dtype) / n
        logits._accumulate(probs, owned=True)

    return Tensor._make(loss, (logits,), backward)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer ``labels`` under ``logits``.

    ``logits`` has shape ``(batch, num_classes)``; ``labels`` shape ``(batch,)``.
    Dispatches to the fused :func:`softmax_cross_entropy` kernel unless fast
    math is disabled (see :func:`repro.nn.set_fast_math`).
    """
    if fast_math_enabled():
        return softmax_cross_entropy(logits, labels)
    labels = _check_logits_labels(logits, labels)
    log_probs = F.log_softmax(logits, axis=-1)
    one_hot = F.one_hot(labels, logits.data.shape[1], dtype=logits.data.dtype)
    picked = (log_probs * Tensor(one_hot)).sum(axis=-1)
    return -picked.mean()


def supcon_loss(features: Tensor, labels: np.ndarray, temperature: float = 0.07) -> Tensor:
    """Supervised contrastive loss (Khosla et al. 2020; paper Eq. 13).

    Parameters
    ----------
    features:
        Projected representations, shape ``(batch, dim)``. They are
        L2-normalized internally, as is standard for SupCon.
    labels:
        Integer labels, shape ``(batch,)``. Samples with equal labels form
        positive pairs.
    temperature:
        The ``tau`` scalar (paper uses 0.07).

    Anchors without any positive in the batch contribute zero, matching the
    ``1/|P(i)|`` convention with empty positive sets skipped.
    """
    labels = np.asarray(labels).reshape(-1)
    n = features.data.shape[0]
    dtype = features.data.dtype
    if labels.shape[0] != n:
        raise ValueError("labels must match the batch size")
    if n < 2:
        return Tensor(0.0, dtype=dtype)

    z = F.l2_normalize(features, axis=-1)
    logits = (z @ z.T) / temperature

    not_self = 1.0 - np.eye(n, dtype=dtype)
    pos_mask = (labels[:, None] == labels[None, :]).astype(dtype) * not_self
    pos_counts = pos_mask.sum(axis=1)
    valid = pos_counts > 0
    if not valid.any():
        return Tensor(0.0, dtype=dtype)

    # Exclude self-similarity from the denominator A(i) = I \ {x_i}.
    masked_logits = logits + Tensor(np.where(not_self > 0, 0.0, -1e9), dtype=dtype)
    log_prob = masked_logits - F.logsumexp(masked_logits, axis=1, keepdims=True)

    per_anchor = (log_prob * Tensor(pos_mask)).sum(axis=1) / Tensor(
        np.maximum(pos_counts, 1.0)
    )
    weights = (valid / valid.sum()).astype(dtype)
    return -(per_anchor * Tensor(weights)).sum()


class MSELoss(Module):
    def forward(self, predicted: Tensor, target: np.ndarray | Tensor) -> Tensor:
        return mse_loss(predicted, target)


class CrossEntropyLoss(Module):
    def forward(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        return cross_entropy(logits, labels)


class SupConLoss(Module):
    def __init__(self, temperature: float = 0.07) -> None:
        super().__init__()
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature

    def forward(self, features: Tensor, labels: np.ndarray) -> Tensor:
        return supcon_loss(features, labels, temperature=self.temperature)
