"""Loss functions: MSE, cross-entropy, and supervised contrastive loss.

The supervised contrastive loss follows Khosla et al. (2020), Eq. 13 of the
OmniMatch paper: for every anchor, positives are the samples in the batch
that carry the same label (here: user-item pairs with the same rating, and
the source/target views of the same user-item pair).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .module import Module
from .tensor import Tensor

__all__ = ["MSELoss", "CrossEntropyLoss", "SupConLoss", "mse_loss", "cross_entropy", "supcon_loss"]


def mse_loss(predicted: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    target_data = target.data if isinstance(target, Tensor) else np.asarray(target, dtype=np.float64)
    diff = predicted - Tensor(target_data)
    return (diff * diff).mean()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer ``labels`` under ``logits``.

    ``logits`` has shape ``(batch, num_classes)``; ``labels`` shape ``(batch,)``.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if logits.data.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if labels.shape != (logits.data.shape[0],):
        raise ValueError(f"labels shape {labels.shape} incompatible with logits {logits.shape}")
    log_probs = F.log_softmax(logits, axis=-1)
    picked = (log_probs * Tensor(F.one_hot(labels, logits.data.shape[1]))).sum(axis=-1)
    return -picked.mean()


def supcon_loss(features: Tensor, labels: np.ndarray, temperature: float = 0.07) -> Tensor:
    """Supervised contrastive loss (Khosla et al. 2020; paper Eq. 13).

    Parameters
    ----------
    features:
        Projected representations, shape ``(batch, dim)``. They are
        L2-normalized internally, as is standard for SupCon.
    labels:
        Integer labels, shape ``(batch,)``. Samples with equal labels form
        positive pairs.
    temperature:
        The ``tau`` scalar (paper uses 0.07).

    Anchors without any positive in the batch contribute zero, matching the
    ``1/|P(i)|`` convention with empty positive sets skipped.
    """
    labels = np.asarray(labels).reshape(-1)
    n = features.data.shape[0]
    if labels.shape[0] != n:
        raise ValueError("labels must match the batch size")
    if n < 2:
        return Tensor(0.0)

    z = F.l2_normalize(features, axis=-1)
    logits = (z @ z.T) / temperature

    not_self = 1.0 - np.eye(n)
    pos_mask = (labels[:, None] == labels[None, :]).astype(np.float64) * not_self
    pos_counts = pos_mask.sum(axis=1)
    valid = pos_counts > 0
    if not valid.any():
        return Tensor(0.0)

    # Exclude self-similarity from the denominator A(i) = I \ {x_i}.
    masked_logits = logits + Tensor(np.where(not_self > 0, 0.0, -1e9))
    log_prob = masked_logits - F.logsumexp(masked_logits, axis=1, keepdims=True)

    per_anchor = (log_prob * Tensor(pos_mask)).sum(axis=1) / Tensor(np.maximum(pos_counts, 1.0))
    weights = valid.astype(np.float64) / valid.sum()
    return -(per_anchor * Tensor(weights)).sum()


class MSELoss(Module):
    def forward(self, predicted: Tensor, target: np.ndarray | Tensor) -> Tensor:
        return mse_loss(predicted, target)


class CrossEntropyLoss(Module):
    def forward(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        return cross_entropy(logits, labels)


class SupConLoss(Module):
    def __init__(self, temperature: float = 0.07) -> None:
        super().__init__()
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature

    def forward(self, features: Tensor, labels: np.ndarray) -> Tensor:
        return supcon_loss(features, labels, temperature=self.temperature)
