"""Optimizers: SGD (momentum), Adam, and Adadelta.

The paper trains OmniMatch with Adadelta (lr = 0.02, rho = 0.95), so
Adadelta receives a faithful implementation (Zeiler 2012, with the learning
-rate scaling variant PyTorch uses). SGD and Adam serve the baselines.
"""

from __future__ import annotations

import numpy as np

from .module import Parameter
from .tensor import _step_boundary

__all__ = ["Optimizer", "SGD", "Adam", "Adadelta", "clip_grad_norm"]


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for divergence diagnostics). A
    non-finite norm (any NaN/Inf gradient) is returned unchanged and the
    gradients are left unscaled: dividing by NaN would poison every
    parameter, and dividing by Inf would silently zero the whole update —
    callers must treat a non-finite return as a divergence signal instead.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g**2).sum()) for g in grads)))
    if not np.isfinite(total):
        return total
    if total > max_norm and total > 0:
        scale = max_norm / total
        for grad in grads:
            grad *= scale
    return total


class Optimizer:
    """Base class holding the parameter list and the zero-grad convenience."""

    def __init__(self, parameters: list[Parameter]) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        """Clear gradients of every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the current gradients."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Serialization (crash-safe training checkpoints)
    # ------------------------------------------------------------------
    def _buffers(self) -> dict[str, list[np.ndarray]]:
        """Named per-parameter state buffers (the *live* lists, not copies)."""
        return {}

    def _hyper(self) -> dict[str, float | int]:
        """Scalar hyperparameters / counters worth persisting."""
        return {}

    def _set_hyper(self, hyper: dict[str, float | int]) -> None:
        """Restore the scalars captured by :meth:`_hyper`."""

    def state_dict(self) -> dict:
        """Snapshot of optimizer kind, hyperparameters, and state buffers.

        Buffer arrays are copied, so the snapshot is immune to later
        :meth:`step` calls — a resumed run continues bit-identically.
        """
        return {
            "kind": type(self).__name__.lower(),
            "hyper": dict(self._hyper()),
            "buffers": {
                name: [array.copy() for array in arrays]
                for name, arrays in self._buffers().items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`.

        The optimizer kind, buffer names, per-buffer counts, and array
        shapes must all match the receiving optimizer; mismatches raise
        ``ValueError`` naming the offending entry.
        """
        kind = type(self).__name__.lower()
        if state.get("kind") != kind:
            raise ValueError(
                f"optimizer state is for {state.get('kind')!r}, not {kind!r}"
            )
        buffers = self._buffers()
        loaded = state.get("buffers", {})
        if set(loaded) != set(buffers):
            raise ValueError(
                f"optimizer buffer mismatch: state has {sorted(loaded)}, "
                f"expected {sorted(buffers)}"
            )
        for name, arrays in buffers.items():
            values = loaded[name]
            if len(values) != len(arrays):
                raise ValueError(
                    f"buffer {name!r} holds {len(values)} arrays for "
                    f"{len(arrays)} parameters"
                )
            for index, (current, value) in enumerate(zip(arrays, values)):
                value = np.asarray(value)
                if value.shape != current.shape:
                    raise ValueError(
                        f"buffer {name}[{index}]: shape {value.shape} != "
                        f"{current.shape}"
                    )
                arrays[index] = value.astype(current.dtype, copy=True)
        self._set_hyper(dict(state.get("hyper", {})))


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def _buffers(self) -> dict[str, list[np.ndarray]]:
        return {"velocity": self._velocity}

    def _hyper(self) -> dict[str, float | int]:
        return {"lr": self.lr, "momentum": self.momentum,
                "weight_decay": self.weight_decay}

    def _set_hyper(self, hyper: dict[str, float | int]) -> None:
        self.lr = float(hyper.get("lr", self.lr))
        self.momentum = float(hyper.get("momentum", self.momentum))
        self.weight_decay = float(hyper.get("weight_decay", self.weight_decay))

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update
        # Step boundary: recycle the graph optimizer's arena (gradients are
        # consumed, the step's activations are dead) and mark peak stats.
        _step_boundary()


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _buffers(self) -> dict[str, list[np.ndarray]]:
        return {"m": self._m, "v": self._v}

    def _hyper(self) -> dict[str, float | int]:
        return {"lr": self.lr, "beta1": self.beta1, "beta2": self.beta2,
                "eps": self.eps, "weight_decay": self.weight_decay,
                "step_count": self._step_count}

    def _set_hyper(self, hyper: dict[str, float | int]) -> None:
        self.lr = float(hyper.get("lr", self.lr))
        self.beta1 = float(hyper.get("beta1", self.beta1))
        self.beta2 = float(hyper.get("beta2", self.beta2))
        self.eps = float(hyper.get("eps", self.eps))
        self.weight_decay = float(hyper.get("weight_decay", self.weight_decay))
        self._step_count = int(hyper.get("step_count", self._step_count))

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        _step_boundary()


class Adadelta(Optimizer):
    """Adadelta (Zeiler 2012) — the paper's optimizer (lr=0.02, rho=0.95)."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.02,
        rho: float = 0.95,
        eps: float = 1e-6,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= rho < 1.0:
            raise ValueError("rho must be in [0, 1)")
        self.lr = lr
        self.rho = rho
        self.eps = eps
        self.weight_decay = weight_decay
        self._avg_sq_grad = [np.zeros_like(p.data) for p in self.parameters]
        self._avg_sq_delta = [np.zeros_like(p.data) for p in self.parameters]
        # Scratch buffers so step() allocates nothing: the update for each
        # parameter needs two temporaries at a time (numerator / denominator,
        # then delta / delta**2).
        self._scratch_a = [np.empty_like(p.data) for p in self.parameters]
        self._scratch_b = [np.empty_like(p.data) for p in self.parameters]

    def _buffers(self) -> dict[str, list[np.ndarray]]:
        # Scratch buffers are overwritten on every step — only the running
        # averages carry state across steps.
        return {"avg_sq_grad": self._avg_sq_grad,
                "avg_sq_delta": self._avg_sq_delta}

    def _hyper(self) -> dict[str, float | int]:
        return {"lr": self.lr, "rho": self.rho, "eps": self.eps,
                "weight_decay": self.weight_decay}

    def _set_hyper(self, hyper: dict[str, float | int]) -> None:
        self.lr = float(hyper.get("lr", self.lr))
        self.rho = float(hyper.get("rho", self.rho))
        self.eps = float(hyper.get("eps", self.eps))
        self.weight_decay = float(hyper.get("weight_decay", self.weight_decay))

    def step(self) -> None:
        rho, eps = self.rho, self.eps
        for param, sq_grad, sq_delta, a, b in zip(
            self.parameters,
            self._avg_sq_grad,
            self._avg_sq_delta,
            self._scratch_a,
            self._scratch_b,
        ):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            # In-place formulation of the reference update; the operand
            # order of every floating-point op matches the textbook
            # expressions, so results are bit-identical:
            #   sq_grad  = rho * sq_grad + (1 - rho) * grad**2
            #   delta    = sqrt(sq_delta + eps) / sqrt(sq_grad + eps) * grad
            #   sq_delta = rho * sq_delta + (1 - rho) * delta**2
            #   param   -= lr * delta
            np.multiply(grad, grad, out=a)
            a *= 1.0 - rho
            sq_grad *= rho
            sq_grad += a
            np.add(sq_delta, eps, out=a)
            np.sqrt(a, out=a)
            np.add(sq_grad, eps, out=b)
            np.sqrt(b, out=b)
            a /= b
            a *= grad  # a == delta
            sq_delta *= rho
            np.multiply(a, a, out=b)
            b *= 1.0 - rho
            sq_delta += b
            a *= self.lr
            param.data -= a
        _step_boundary()
