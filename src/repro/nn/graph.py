"""Tape-level graph optimizer: automatic kernel fusion + arena buffer reuse.

PR 1's fast path is built from hand-written fused kernels behind
``set_fast_math`` — every new fusion is bespoke work, and models that do not
route through those kernels (the BERT-ablation transformer extractor, the
neural baselines' custom towers) never benefit. This module makes *every*
workload fast by default with two orthogonal passes over the autograd tape
recorded by :mod:`repro.nn.tensor`:

**Fusion (chain absorption).** Every tape node carries a lightweight IR —
its op name (``_op``), consumer count (``_users``), fusion depth
(``_fdepth``), and a purity flag (``_pure``). When a new node is recorded,
:meth:`GraphOptimizer.absorb` absorbs the leftmost *pure* single-consumer
prefix of its parents: the new node's ``_backward`` closure is rewritten to
*replay* the absorbed closures immediately after its own, which is exactly
the prefix of the sequence the global reverse-topological pass executes
(the leftmost parent's region fires directly after its consumer, with
nothing in between). Parent tuples are never rewritten — the traversal
graph stays literally the original — and the backward DFS simply skips
absorbed subtrees that are pure, so shared junctions keep their exact
composed slots and every gradient accumulates in the exact composed order.
Fused execution is therefore bit-identical (float32 and float64) to the
unfused tape — asserted model-by-model in ``tests/nn/test_graph_fusion.py``.
Chains collapse transitively, so the familiar patterns fall out of one
rule with zero per-kernel code:

* ``linear -> relu``: ``x @ W.T + b`` followed by ``relu`` becomes one tape
  node (transpose, matmul, add all absorbed);
* ``conv1d -> relu -> max-pool``: the single-GEMM ``conv1d_text`` node plus
  ``max_over_time`` become one node;
* ``softmax -> nll``: the composed ``log_softmax -> one-hot mul -> sum ->
  mean`` chain of ``cross_entropy`` (and the ``supcon_loss`` variant)
  collapses to a single fused node, mirroring the hand-written
  ``softmax_cross_entropy`` kernel's shape;
* arbitrary elementwise chains (``exp``/``log``/``sqrt``/scalar arithmetic).

If an absorbed node later gains a second consumer (e.g. a residual
connection reuses an activation that a chain already swallowed), the
absorption is *repaired*: the node — and every replay-list member after it,
whose early replay its purity justified — is evicted from the replay list.
Since parent tuples were never rewritten, the evicted nodes still occupy
their original graph positions and the global pass fires each of them at
its exact composed slot, after all consumers contributed.

**Arena allocation.** Activation and gradient buffers are served from a
per-step arena of keyed free lists instead of fresh ``np.ndarray``
allocations. The first step is the warmup that populates the arena
(``arena_misses``); once shapes are stable every request is a hit and the
steady-state fresh-allocation rate drops to (near) zero. ``Optimizer.step``
ends with a step boundary hook that recycles all buffers handed out during
the step — by then gradients have been consumed and the step's activations
are dead, and a recycled buffer is never written until the next forward
requests it, so post-step reads (e.g. ``loss.item()``) stay valid. A shape
change (last ragged batch, a different model) simply misses and falls back
to a fresh allocation — copy-always semantics are preserved bit-for-bit
because buffers only ever receive full ``out=``/``copyto`` writes.

Both passes are driven by the ``REPRO_TENSOR_STATS`` counters
(``arena_hits``/``arena_misses``, ``graph_bytes``/``backward_bytes``/
``peak_bytes``, ``fused_ops``) and engaged via
:func:`set_graph_optimizer` / ``OmniMatchConfig.graph_opt`` (default on for
fast-math runs) or the :func:`graph_scope` context manager used by the
baseline ``fit`` loops.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from . import tensor as _tensor
from .tensor import Tensor

__all__ = [
    "Arena",
    "GraphOptimizer",
    "set_graph_optimizer",
    "graph_optimizer",
    "graph_scope",
    "tape_ops",
    "tape_size",
]


class Arena:
    """Keyed free lists of step-scoped numpy buffers.

    ``request`` hands out a buffer for ``(shape, dtype)`` — reusing one
    released by a previous step when available, allocating fresh otherwise —
    and ``release_all`` returns everything handed out during the step to the
    free lists. Buffers below ``min_bytes`` are not worth the bookkeeping
    and are declined (the caller allocates normally): small blocks come out
    of the allocator's own free lists essentially for free, while blocks
    past the mmap threshold cost fresh zero pages — and their page faults —
    every single step, which is exactly what recycling eliminates.
    ``max_bytes`` caps the total footprint so a pathological workload
    degrades to plain allocation instead of hoarding memory.
    """

    def __init__(self, min_bytes: int = 1 << 16, max_bytes: int = 1 << 30) -> None:
        self.min_bytes = min_bytes
        self.max_bytes = max_bytes
        self.total_bytes = 0
        self._free: dict[tuple, list[np.ndarray]] = {}
        self._handed: list[tuple[tuple, np.ndarray]] = []

    def request(self, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray | None:
        """A writable ``shape``/``dtype`` buffer, or None to allocate normally."""
        dtype = np.dtype(dtype)
        nbytes = math.prod(shape) * dtype.itemsize
        if nbytes < self.min_bytes:
            return None
        key = (shape, dtype.char)
        free = self._free.get(key)
        if free:
            buf = free.pop()
            if _tensor._TENSOR_STATS_ENABLED:
                _tensor._TENSOR_STATS["arena_hits"] += 1
        else:
            if self.total_bytes + nbytes > self.max_bytes:
                return None
            buf = np.empty(shape, dtype)
            self.total_bytes += nbytes
            if _tensor._TENSOR_STATS_ENABLED:
                _tensor._TENSOR_STATS["arena_misses"] += 1
        self._handed.append((key, buf))
        return buf

    def release_all(self) -> None:
        """Return every buffer handed out this step to the free lists."""
        for key, buf in self._handed:
            self._free.setdefault(key, []).append(buf)
        self._handed.clear()


class GraphOptimizer:
    """The active fusion + arena pass over the autograd tape.

    Install with :func:`set_graph_optimizer` (or :func:`graph_scope`);
    :meth:`absorb` is invoked by ``Tensor._make`` for every recorded node,
    and :meth:`end_step` by ``Optimizer.step`` at each step boundary.
    """

    def __init__(
        self,
        fuse: bool = True,
        max_depth: int = 32,
        min_bytes: int = 1 << 16,
        max_arena_bytes: int = 1 << 30,
    ) -> None:
        self.fuse = fuse
        self.max_depth = max_depth
        self.arena = Arena(min_bytes=min_bytes, max_bytes=max_arena_bytes)
        self.fused_nodes = 0

    # ------------------------------------------------------------------
    # Fusion pass
    # ------------------------------------------------------------------
    def absorb(self, out: Tensor) -> None:
        """Absorb the leftmost pure single-consumer parent prefix of ``out``.

        Bit-identity argument: the global backward executes closures in the
        reversed postorder of a right-to-left DFS, which fires the leftmost
        parent's entire region *immediately* after the host with nothing in
        between. So replaying a left-to-right prefix of parents straight
        after the host's own closure reproduces the composed sequence
        exactly — provided each replayed parent is *pure* (its whole region
        is itself covered by replay, so no junction inside it needs a global
        slot between prefix members). The parent tuple is never rewritten:
        the traversal graph stays literally the original, absorbed-and-pure
        subtrees are merely skipped by the DFS, and impure absorbed nodes
        are walked through so interior junctions keep their exact slots.

        A parent joins the prefix when ``out`` is its only consumer, it has
        a backward closure (a recorded op, not a leaf), no gradient is
        pending on it, and the fusion depth stays within bounds. Parents
        without a closure (inputs, parameters) are transparent — they fire
        nothing, so the prefix continues past them (and their consumer
        counts are not even tracked: a leaf can never be absorbed or
        hosted, so nothing reads them). The first parent that is neither
        transparent nor absorbable-and-pure ends the prefix and marks
        ``out`` impure.

        Consumer counting and the prefix scan run in one pass. That is
        sound even when a parent recurs in ``parents`` (``x * x``): every
        consumer slot belongs to ``out`` itself, and the fused replay fires
        only after ``out``'s own closure has delivered *all* of its
        contributions, so a parent absorbed at its first slot still
        receives its complete gradient before replay.
        """
        max_depth = self.max_depth
        fuse = self.fuse and out._backward is not None
        scanning = fuse
        absorbed: list[Tensor] | None = None
        depth = out._fdepth
        pure = True
        for p in out._parents:
            if p._backward is None:
                continue  # transparent: a leaf fires no closure
            n = p._users + 1
            p._users = n
            if n == 2 and p._host is not None:
                _repair(p)
            if not scanning:
                continue
            if n == 1 and p.grad is None and p._fdepth < max_depth:
                if absorbed is None:
                    absorbed = []
                absorbed.append(p)
                if p._fdepth + 1 > depth:
                    depth = p._fdepth + 1
                if p._pure:
                    continue
            pure = False
            scanning = False
        if not fuse:
            return
        out._pure = pure
        if absorbed is None:
            return
        out._fdepth = depth
        for p in absorbed:
            p._host = (out, absorbed)
        inner = out._backward
        interior = absorbed

        def fused_backward(grad: np.ndarray) -> None:
            # Replay of the fused region: the node's own closure, then each
            # absorbed parent's closure with its accumulated gradient, left
            # to right — exactly the prefix of the composed reversed-
            # postorder sequence (see absorb's docstring). Clearing the
            # gradient afterwards makes the global pass skip the node when
            # the DFS walked through it (impure hosts).
            inner(grad)
            for node in interior:
                if node._backward is not None and node.grad is not None:
                    node._backward(node.grad)
                node.grad = None

        out._backward = fused_backward
        self.fused_nodes += len(absorbed)
        if _tensor._TENSOR_STATS_ENABLED:
            _tensor._TENSOR_STATS["fused_ops"] += len(absorbed)

    # ------------------------------------------------------------------
    # Step lifecycle
    # ------------------------------------------------------------------
    def end_step(self) -> None:
        """Recycle the step's arena buffers and mark the stats boundary."""
        self.arena.release_all()
        _tensor._mark_step()


def _repair(p: Tensor) -> None:
    """Undo an absorption when ``p`` gains a second consumer.

    ``p`` (and every replay-list member after it — their early replay was
    justified only by ``p``'s region being pure) is removed from the host's
    replay list. Because absorption never rewrites parent tuples, the
    removed nodes still sit at their original positions in the graph, so
    the global pass fires each of them exactly at its composed
    reversed-postorder slot, after all consumers contributed. The impurity
    cascades upward: each host on the chain becomes impure (its region now
    contains globally-fired nodes), so replay-list members *after* it at
    the next level up are evicted the same way.
    """
    host, interior = p._host
    idx = interior.index(p)
    for node in interior[idx:]:
        node._host = None
    del interior[idx:]
    host._pure = False
    while host._host is not None:
        up, up_interior = host._host
        idx = up_interior.index(host)
        for node in up_interior[idx + 1 :]:
            node._host = None
        del up_interior[idx + 1 :]
        host = up
        host._pure = False


def set_graph_optimizer(graph: GraphOptimizer | None) -> GraphOptimizer | None:
    """Install ``graph`` as the process-wide pass; returns the previous one.

    Pass None to disable. Only tensors recorded while gradients are enabled
    participate; ``no_grad`` (inference) execution is never touched.
    """
    return _tensor._set_graph(graph)


def graph_optimizer() -> GraphOptimizer | None:
    """The currently installed :class:`GraphOptimizer` (None when off)."""
    return _tensor._GRAPH


class graph_scope:
    """Context manager installing a (fresh) graph optimizer for a block.

    Used by baseline ``fit`` loops and tests::

        with nn.graph_scope():
            ... training steps ...

    On exit the previous optimizer is restored and the scope's arena is
    dropped wholesale (buffers go back to the allocator with the scope).
    """

    def __init__(self, graph: GraphOptimizer | None = None, enabled: bool = True) -> None:
        self.graph = graph if graph is not None else (GraphOptimizer() if enabled else None)

    def __enter__(self) -> GraphOptimizer | None:
        self._previous = set_graph_optimizer(self.graph)
        return self.graph

    def __exit__(self, *exc_info: object) -> None:
        set_graph_optimizer(self._previous)


def _walk(t: Tensor):
    """Yield the tape nodes the backward pass actually visits from ``t``.

    Mirrors ``Tensor.backward``'s traversal: pure absorbed subtrees are
    skipped (their closures run via fused replay), and absorbed nodes the
    walk passes through do not fire on their own, so they are not yielded.
    """
    visited: set[int] = set()
    stack = [t]
    while stack:
        node = stack.pop()
        if id(node) in visited:
            continue
        visited.add(id(node))
        if node._backward is not None and node._host is None:
            yield node
        for parent in node._parents:
            if parent._host is not None and parent._pure:
                continue
            stack.append(parent)


def tape_size(t: Tensor) -> int:
    """Number of tape nodes reachable from ``t`` (fused chains count once)."""
    return sum(1 for _ in _walk(t))


def tape_ops(t: Tensor) -> Counter:
    """Histogram of op names reachable from ``t`` — the visible tape IR."""
    return Counter(node._op or "?" for node in _walk(t))
