"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the ``repro.nn`` deep-learning substrate.
The paper's reference implementation uses PyTorch; since PyTorch is not
available in this environment, we provide a small but complete tape-based
autograd engine that supports every operation OmniMatch and the baselines
need: broadcasting arithmetic, matrix products, reductions, indexing /
embedding gathers, stable softmax building blocks, concatenation, and the
gradient-reversal trick used by the Domain Adversarial Training Module.

Design notes
------------
* A :class:`Tensor` wraps a ``float64`` or ``float32`` numpy array. The
  dtype used for freshly-created tensors (python scalars, lists, integer
  arrays) is governed by :func:`set_default_dtype`; floating numpy arrays
  keep their dtype, so a graph built from float32 parameters stays float32
  end to end. Each differentiable operation records a backward closure and
  its parent tensors; :meth:`Tensor.backward` topologically sorts the tape
  and accumulates gradients into ``.grad`` arrays.
* Scalars and plain-python operands in binary ops are coerced to the dtype
  of the tensor they combine with, so a constant like ``x * 0.5`` never
  silently promotes a float32 graph to float64.
* Broadcasting is handled by :func:`_unbroadcast`, which sums gradients over
  broadcast axes so shapes always match their tensors.
* Gradients are accumulated with ``+=`` so diamond-shaped graphs (a tensor
  consumed by several ops) are correct.
"""

from __future__ import annotations

import functools
import os
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "default_dtype",
    "set_fast_math",
    "fast_math_enabled",
    "set_tensor_stats",
    "tensor_stats_enabled",
    "tensor_stats",
    "reset_tensor_stats",
]

_GRAD_ENABLED = True

_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))
_DEFAULT_DTYPE = np.dtype(np.float64)

_FAST_MATH = True


def set_default_dtype(dtype: "str | np.dtype | type") -> np.dtype:
    """Set the dtype of freshly-created tensors; returns the previous dtype.

    Accepts ``'float32'``/``'float64'``, ``np.float32``/``np.float64`` or
    their dtype objects. Training runs float32 for speed (see
    ``OmniMatchConfig.dtype``); gradient checking opts into float64.
    """
    global _DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved not in _FLOAT_DTYPES:
        raise ValueError(f"default dtype must be float32 or float64, got {resolved}")
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolved
    return previous


def get_default_dtype() -> np.dtype:
    """The dtype new tensors are created with (float64 unless changed)."""
    return _DEFAULT_DTYPE


class default_dtype:
    """Context manager scoping :func:`set_default_dtype` to a block."""

    def __init__(self, dtype: "str | np.dtype | type") -> None:
        self.dtype = np.dtype(dtype)

    def __enter__(self) -> "default_dtype":
        self._previous = set_default_dtype(self.dtype)
        return self

    def __exit__(self, *exc_info: object) -> None:
        set_default_dtype(self._previous)


def set_fast_math(enabled: bool) -> bool:
    """Toggle the fused-kernel fast path; returns the previous setting.

    With fast math on (the default), ``cross_entropy`` uses the fused
    softmax-cross-entropy kernel, ``MLP`` hidden layers use the fused
    ``linear_relu`` kernel, and ``conv1d_text`` uses the buffer-reusing
    im2col path. Turning it off restores the op-by-op compositions — the
    seed implementation — which the throughput benchmark uses as its
    ``legacy`` baseline and the gradcheck suite uses for cross-validation.
    """
    global _FAST_MATH
    previous = _FAST_MATH
    _FAST_MATH = bool(enabled)
    return previous


def fast_math_enabled() -> bool:
    """Whether fused kernels are active (see :func:`set_fast_math`)."""
    return _FAST_MATH


# Lightweight allocation / FLOP accounting, off by default. Enabled either
# by exporting ``REPRO_TENSOR_STATS=1`` before import or by calling
# :func:`set_tensor_stats` at runtime; the disabled path costs one global
# bool check per graph node, which is lost in the noise next to the GEMMs.
TENSOR_STATS_ENV = "REPRO_TENSOR_STATS"

_TENSOR_STATS_ENABLED = os.environ.get(TENSOR_STATS_ENV, "").strip() not in ("", "0")
_TENSOR_STATS = {
    "graph_tensors": 0,
    "graph_bytes": 0,
    "matmul_flops": 0,
    "backward_bytes": 0,
    "peak_bytes": 0,
    "arena_hits": 0,
    "arena_misses": 0,
    "fused_ops": 0,
}

# Fresh bytes (graph_bytes + backward_bytes) at the last optimizer-step
# boundary; _mark_step() turns the delta since then into ``peak_bytes``.
_STEP_BASE = [0]

# The active graph optimizer (repro.nn.graph.GraphOptimizer) or None.
# Installed via _set_graph() so tensor ops can serve output buffers from
# its arena and hand fresh nodes to its fusion pass without importing the
# graph module (which imports this one).
_GRAPH = None

# Mirror of the active arena's ``min_bytes``, kept as a module global so hot
# call sites can decline small buffers with one attribute-free comparison
# instead of a ``request`` call that would decline them anyway.
_ARENA_MIN = 0


def _set_graph(graph):
    """Install ``graph`` as the active optimizer; returns the previous one."""
    global _GRAPH, _ARENA_MIN
    previous = _GRAPH
    _GRAPH = graph
    _ARENA_MIN = graph.arena.min_bytes if graph is not None else 0
    return previous


def _mark_step() -> None:
    """Record an optimizer-step boundary for ``peak_bytes`` accounting."""
    if not _TENSOR_STATS_ENABLED:
        return
    current = _TENSOR_STATS["graph_bytes"] + _TENSOR_STATS["backward_bytes"]
    delta = current - _STEP_BASE[0]
    if delta > _TENSOR_STATS["peak_bytes"]:
        _TENSOR_STATS["peak_bytes"] = delta
    _STEP_BASE[0] = current


def _step_boundary() -> None:
    """Optimizer-step hook: cycle the arena and mark peak allocation.

    Called from ``Optimizer.step`` implementations so every training loop —
    the OmniMatch trainer and each baseline ``fit`` — gets per-step arena
    recycling without per-model wiring.
    """
    graph = _GRAPH
    if graph is not None:
        graph.end_step()
    elif _TENSOR_STATS_ENABLED:
        _mark_step()


def set_tensor_stats(enabled: bool) -> bool:
    """Toggle graph-node allocation/FLOP counting; returns prior setting."""
    global _TENSOR_STATS_ENABLED
    previous = _TENSOR_STATS_ENABLED
    _TENSOR_STATS_ENABLED = bool(enabled)
    return previous


def tensor_stats_enabled() -> bool:
    """Whether allocation/FLOP counting is active (see ``REPRO_TENSOR_STATS``)."""
    return _TENSOR_STATS_ENABLED


def tensor_stats() -> dict:
    """Snapshot of the accumulated counters.

    ``graph_tensors`` counts every tensor created through the autograd graph
    helper (:meth:`Tensor._make`) while gradients are enabled — inference
    (``no_grad``) tensors are excluded so serving traffic does not inflate
    training-graph stats. ``graph_bytes`` counts the *freshly allocated*
    bytes behind those tensors (outputs served from the graph arena count as
    ``arena_hits``/``arena_misses`` instead), ``backward_bytes`` counts
    freshly allocated gradient storage, ``peak_bytes`` is the largest fresh
    allocation footprint observed in a single optimizer step, ``fused_ops``
    counts tape nodes absorbed by the graph optimizer's fusion pass, and
    ``matmul_flops`` counts ``2 * m * n * k`` multiply-adds per ``@``
    forward pass.
    """
    return dict(_TENSOR_STATS)


def reset_tensor_stats() -> None:
    """Zero all counters (the enabled flag is left as-is)."""
    for key in _TENSOR_STATS:
        _TENSOR_STATS[key] = 0
    _STEP_BASE[0] = 0


class no_grad:
    """Disables graph construction (inference mode).

    Usable both as a context manager::

        with no_grad():
            model(x)

    and as a decorator::

        @no_grad()
        def predict(...): ...
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with no_grad():
                return fn(*args, **kwargs)

        return wrapper


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the autograd tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were size 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _segment_sum_rows(
    indices: np.ndarray, grad: np.ndarray, num_rows: int
) -> np.ndarray:
    """Row-wise scatter-add via one ``np.bincount`` call.

    Equivalent to ``np.add.at(out, indices, grad)`` for integer row indices
    but ~an order of magnitude faster — ``np.add.at`` runs an unbuffered
    per-element inner loop, while ``bincount`` over offset-expanded indices
    is a single vectorized pass. This is the embedding-gather backward.
    """
    cols = grad.shape[1] if grad.ndim > 1 else 1
    flat_grad = grad.reshape(-1, cols)
    expanded = indices.reshape(-1, 1) * cols + np.arange(cols)
    summed = np.bincount(
        expanded.ravel(), weights=flat_grad.ravel(), minlength=num_rows * cols
    )
    return summed.reshape(num_rows, cols).astype(grad.dtype, copy=False)


def _ew_binary(ufunc, a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, bool]:
    """Apply a binary ufunc, writing into a graph-arena buffer when active.

    Returns ``(result, served)`` — ``served`` tells :meth:`Tensor._make`
    whether the output bytes came from the arena (and therefore should not
    count as a fresh allocation). ``ufunc(a, b, out=buf)`` computes exactly
    the same values as ``ufunc(a, b)``, so arena service never changes bits.
    """
    if (
        _GRAPH is not None
        and _GRAD_ENABLED
        and a.dtype == b.dtype
        and (a.nbytes >= _ARENA_MIN or b.nbytes >= _ARENA_MIN)
    ):
        shape = a.shape if a.shape == b.shape else np.broadcast_shapes(a.shape, b.shape)
        buf = _GRAPH.arena.request(shape, a.dtype)
        if buf is not None:
            return ufunc(a, b, out=buf), True
    return ufunc(a, b), False


def _ew_unary(ufunc, a: np.ndarray) -> tuple[np.ndarray, bool]:
    """Unary counterpart of :func:`_ew_binary`."""
    if _GRAPH is not None and _GRAD_ENABLED and a.nbytes >= _ARENA_MIN:
        buf = _GRAPH.arena.request(a.shape, a.dtype)
        if buf is not None:
            return ufunc(a, out=buf), True
    return ufunc(a), False


def _matmul_grad(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, bool]:
    """``a @ b`` with the result ownership flag the accumulate path expects.

    The conv kernels' gradient GEMMs are deliberately *not* served from the
    graph arena: their big-K reduction shapes take a measurably slower
    ``np.matmul(..., out=)`` BLAS path than a fresh ``a @ b``, so recycling
    would cost more than the allocation it saves. The constant False keeps
    call sites uniform with :func:`_matmul_arena` and the ufunc helpers.
    """
    return a @ b, False


def _matmul_arena(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, bool]:
    """2-D ``a @ b`` into a recycled arena buffer when one is available.

    Used by the dense-layer kernels, whose GEMM shapes pay no measurable
    ``out=`` penalty (unlike the conv gradient reductions — see
    :func:`_matmul_grad`); ``np.matmul(..., out=)`` computes the same bits
    as ``@``.
    """
    if _GRAPH is not None and _GRAD_ENABLED and a.dtype == b.dtype:
        if a.shape[0] * b.shape[1] * a.itemsize >= _ARENA_MIN:
            buf = _GRAPH.arena.request((a.shape[0], b.shape[1]), a.dtype)
            if buf is not None:
                return np.matmul(a, b, out=buf), True
    return a @ b, False


class Tensor:
    """A numpy-backed tensor that records operations for backpropagation."""

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "name",
        "_op",
        "_users",
        "_host",
        "_fdepth",
        "_pure",
    )

    def __init__(
        self,
        data: np.ndarray | float | int | Sequence,
        requires_grad: bool = False,
        name: str | None = None,
        dtype: np.dtype | type | None = None,
    ) -> None:
        if dtype is not None:
            array = np.asarray(data, dtype=dtype)
        elif isinstance(data, (np.ndarray, np.floating)) and data.dtype in _FLOAT_DTYPES:
            # Keep float32/float64 arrays (and 0-d reduction results, which
            # numpy hands back as scalars) in their own dtype.
            array = np.asarray(data)
        else:
            array = np.asarray(data, dtype=_DEFAULT_DTYPE)
        self.data: np.ndarray = array
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name
        # Tape IR bookkeeping, used by the graph optimizer (repro.nn.graph):
        # the producing op's name, how many tape nodes consume this one, the
        # (host, interior-list) pair when this node has been absorbed into a
        # fused node, the accumulated fusion depth, and whether the node's
        # entire backward region is covered by fused replay (pure = the
        # backward DFS may skip its subtree).
        self._op: str | None = None
        self._users: int = 0
        self._host: tuple | None = None
        self._fdepth: int = 0
        self._pure: bool = True

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def item(self) -> float:
        """Return the scalar value of a size-1 tensor."""
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but severed from the graph."""
        out = Tensor(self.data)
        out.data = self.data
        return out

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
        op: str | None = None,
        arena: bool = False,
    ) -> "Tensor":
        out = Tensor(data)
        out._op = op
        if _TENSOR_STATS_ENABLED and _GRAD_ENABLED:
            # no_grad (inference) tensors are deliberately excluded so
            # serving traffic does not inflate training-graph stats;
            # arena-served outputs are reuses, not fresh allocations.
            _TENSOR_STATS["graph_tensors"] += 1
            if not arena:
                _TENSOR_STATS["graph_bytes"] += out.data.nbytes
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
            if _GRAPH is not None:
                _GRAPH.absorb(out)
        return out

    def _accumulate(self, grad: np.ndarray, owned: bool = False, arena: bool = False) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            # ``owned=True`` promises the caller freshly allocated ``grad``
            # and will not touch it again, so the defensive copy that keeps
            # ``self.grad`` independent of caller-held buffers can be
            # skipped — backwards on the hot path hand over arrays they
            # just built (GEMM outputs, zeros+scatter results). Honored
            # only in fast-math mode: the reference path keeps the
            # copy-always tape semantics it has always had, which is also
            # what the benchmark's legacy baseline measures.
            # ``arena=True`` additionally marks ``grad`` as served from the
            # graph arena, so it is not counted as a fresh allocation.
            if owned and _FAST_MATH:
                self.grad = grad
                if _TENSOR_STATS_ENABLED and not arena:
                    _TENSOR_STATS["backward_bytes"] += grad.nbytes
            else:
                buf = None
                if _GRAPH is not None and grad.nbytes >= _ARENA_MIN:
                    buf = _GRAPH.arena.request(grad.shape, grad.dtype)
                if buf is not None:
                    np.copyto(buf, grad)
                    self.grad = buf
                else:
                    self.grad = grad.copy()
                    if _TENSOR_STATS_ENABLED:
                        _TENSOR_STATS["backward_bytes"] += grad.nbytes
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to 1 for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                # A parent absorbed into a fused node whose whole region is
                # replayed (pure) contains no junction that needs a slot in
                # the global pass — skip its subtree entirely. This is where
                # fusion shortens the tape walk.
                if parent._host is not None and parent._pure:
                    continue
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Tensor | float") -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        out_data, served = _ew_binary(np.add, self.data, other.data)
        return Tensor._make(out_data, (self, other), backward, op="add", arena=served)

    __radd__ = __add__

    def __sub__(self, other: "Tensor | float") -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        out_data, served = _ew_binary(np.subtract, self.data, other.data)
        return Tensor._make(out_data, (self, other), backward, op="sub", arena=served)

    def __rsub__(self, other: "Tensor | float") -> "Tensor":
        return as_tensor(other, dtype=self.data.dtype) - self

    def __mul__(self, other: "Tensor | float") -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        out_data, served = _ew_binary(np.multiply, self.data, other.data)
        return Tensor._make(out_data, (self, other), backward, op="mul", arena=served)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float") -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        out_data, served = _ew_binary(np.divide, self.data, other.data)
        return Tensor._make(out_data, (self, other), backward, op="div", arena=served)

    def __rtruediv__(self, other: "Tensor | float") -> "Tensor":
        return as_tensor(other, dtype=self.data.dtype) / self

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        out_data, served = _ew_unary(np.negative, self.data)
        return Tensor._make(out_data, (self,), backward, op="neg", arena=served)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(self.data**exponent, (self,), backward, op="pow")

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        a, b = self.data, other.data
        out_data = a @ b
        if _TENSOR_STATS_ENABLED:
            # out.size multiply-add pairs per reduction step over the
            # contracted axis: exact for 2-D, batched, and vector operands.
            _TENSOR_STATS["matmul_flops"] += 2 * out_data.size * self.data.shape[-1]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if self.data.ndim == 2 else grad * other.data)
                else:
                    g, from_arena = _matmul_grad(grad, np.swapaxes(other.data, -1, -2))
                    self._accumulate(g, owned=True, arena=from_arena)
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad) if other.data.ndim == 2 else self.data * grad)
                else:
                    g, from_arena = _matmul_grad(np.swapaxes(self.data, -1, -2), grad)
                    other._accumulate(g, owned=True, arena=from_arena)

        return Tensor._make(out_data, (self, other), backward, op="matmul")

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data, served = _ew_unary(np.exp, self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward, op="exp", arena=served)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        out_data, served = _ew_unary(np.log, self.data)
        return Tensor._make(out_data, (self,), backward, op="log", arena=served)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        out_data, served = _ew_unary(np.sqrt, self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / (2.0 * out_data))

        return Tensor._make(out_data, (self,), backward, op="sqrt", arena=served)

    def relu(self) -> "Tensor":
        """Elementwise max(0, x)."""
        data = self.data
        mask = None
        buf = None
        if _GRAPH is not None and _GRAD_ENABLED and data.nbytes >= _ARENA_MIN:
            mbuf = _GRAPH.arena.request(data.shape, np.dtype(bool))
            if mbuf is not None:
                mask = np.greater(data, 0, out=mbuf)
            buf = _GRAPH.arena.request(data.shape, data.dtype)
        if mask is None:
            mask = data > 0

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        if buf is not None:
            out_data = np.multiply(data, mask, out=buf)
        else:
            out_data = data * mask
        return Tensor._make(out_data, (self,), backward, op="relu", arena=buf is not None)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid."""
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward, op="sigmoid")

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data, served = _ew_unary(np.tanh, self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward, op="tanh", arena=served)

    def abs(self) -> "Tensor":
        """Elementwise absolute value."""
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward, op="abs")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes when None)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), backward, op="sum")

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis`` (all axes when None)."""
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``.

        Fast-math mode routes the whole gradient to the argmax (one
        index-scatter in backward, nothing precomputed in forward); the
        reference mode splits the gradient equally among ties. Both are
        valid subgradients and identical whenever the max is unique.
        """
        if _FAST_MATH:
            winners = np.expand_dims(np.argmax(self.data, axis=axis), axis=axis)
            out_data = np.take_along_axis(self.data, winners, axis=axis)
            if not keepdims:
                out_data = np.squeeze(out_data, axis=axis)

            def backward(grad: np.ndarray) -> None:
                g = np.asarray(grad)
                if not keepdims:
                    g = np.expand_dims(g, axis=axis)
                full = None
                from_arena = False
                if _GRAPH is not None and self.data.nbytes >= _ARENA_MIN:
                    full = _GRAPH.arena.request(self.data.shape, self.data.dtype)
                if full is not None:
                    full.fill(0)
                    from_arena = True
                else:
                    full = np.zeros_like(self.data)
                np.put_along_axis(full, winners, g, axis=axis)
                self._accumulate(full, owned=True, arena=from_arena)

            return Tensor._make(out_data, (self,), backward, op="max")

        out_data = self.data.max(axis=axis, keepdims=keepdims)
        expanded = out_data if keepdims else np.expand_dims(out_data, axis=axis)
        mask = self.data == expanded
        # Split gradient among ties so the total gradient is conserved.
        counts = mask.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(mask * g / counts, owned=True)

        return Tensor._make(out_data, (self,), backward, op="max")

    def min(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Minimum over ``axis`` (implemented as ``-max(-x)``)."""
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        """Reshape to ``shape`` (accepts varargs or a single tuple)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(self.data.reshape(shape), (self,), backward, op="reshape")

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        """Permute axes (full reversal when ``axes`` is None)."""
        if axes is None:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward, op="transpose")

    def __getitem__(self, index) -> "Tensor":
        fast_rows = (
            isinstance(index, np.ndarray)
            and index.dtype.kind in "iu"
            and self.data.ndim >= 1
            and (index.size == 0 or index.min() >= 0)
        )

        def backward(grad: np.ndarray) -> None:
            if fast_rows:
                cols = int(np.prod(self.data.shape[1:], dtype=np.int64)) or 1
                full = _segment_sum_rows(
                    index, grad.reshape(-1, cols), self.data.shape[0]
                ).reshape(self.data.shape)
            else:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
            self._accumulate(full, owned=True)

        return Tensor._make(self.data[index], (self,), backward, op="getitem")

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows (axis 0) — the embedding-lookup primitive."""
        indices = np.asarray(indices)

        def backward(grad: np.ndarray) -> None:
            cols = self.data.shape[-1]
            full = _segment_sum_rows(
                indices, grad.reshape(-1, cols), self.data.shape[0]
            ).reshape(self.data.shape)
            self._accumulate(full, owned=True)

        # Gathers stay on the fancy-index path: ``np.take(..., out=)`` into a
        # recycled buffer measured slower than a fresh ``data[indices]``.
        return Tensor._make(self.data[indices], (self,), backward, op="take_rows")

    # ------------------------------------------------------------------
    # Comparisons (non-differentiable, return arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other) -> np.ndarray:
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other) -> np.ndarray:
        return self.data < (other.data if isinstance(other, Tensor) else other)


def as_tensor(
    value: "Tensor | float | int | np.ndarray | Sequence",
    dtype: np.dtype | type | None = None,
) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no-op when already one).

    ``dtype`` applies only when wrapping a non-Tensor — existing tensors are
    never cast, so mixed-dtype Tensor-Tensor arithmetic still follows numpy
    promotion. Binary ops pass their own dtype here so scalar operands do
    not promote float32 graphs to float64.
    """
    if isinstance(value, Tensor):
        return value
    return Tensor(value, dtype=dtype)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    data = np.concatenate([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tuple(tensors), backward, op="concat")


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]

    def backward(grad: np.ndarray) -> None:
        pieces = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    data = np.stack([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tuple(tensors), backward, op="stack")
