"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the ``repro.nn`` deep-learning substrate.
The paper's reference implementation uses PyTorch; since PyTorch is not
available in this environment, we provide a small but complete tape-based
autograd engine that supports every operation OmniMatch and the baselines
need: broadcasting arithmetic, matrix products, reductions, indexing /
embedding gathers, stable softmax building blocks, concatenation, and the
gradient-reversal trick used by the Domain Adversarial Training Module.

Design notes
------------
* A :class:`Tensor` wraps a ``float64`` (default) or ``float32`` numpy array.
  Each differentiable operation records a backward closure and its parent
  tensors; :meth:`Tensor.backward` topologically sorts the tape and
  accumulates gradients into ``.grad`` arrays.
* Broadcasting is handled by :func:`_unbroadcast`, which sums gradients over
  broadcast axes so shapes always match their tensors.
* Gradients are accumulated with ``+=`` so diamond-shaped graphs (a tensor
  consumed by several ops) are correct.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the autograd tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were size 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that records operations for backpropagation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: np.ndarray | float | int | Sequence,
        requires_grad: bool = False,
        name: str | None = None,
    ) -> None:
        array = np.asarray(data, dtype=np.float64)
        self.data: np.ndarray = array
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def item(self) -> float:
        """Return the scalar value of a size-1 tensor."""
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but severed from the graph."""
        out = Tensor(self.data)
        out.data = self.data
        return out

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to 1 for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Tensor | float") -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other: "Tensor | float") -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return Tensor._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other: "Tensor | float") -> "Tensor":
        return as_tensor(other) - self

    def __mul__(self, other: "Tensor | float") -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float") -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: "Tensor | float") -> "Tensor":
        return as_tensor(other) / self

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(self.data**exponent, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if self.data.ndim == 2 else grad * other.data)
                else:
                    self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad) if other.data.ndim == 2 else self.data * grad)
                else:
                    other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / (2.0 * out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        """Elementwise max(0, x)."""
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid."""
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        """Elementwise absolute value."""
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes when None)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis`` (all axes when None)."""
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``; ties share the gradient equally."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        expanded = out_data if keepdims else np.expand_dims(out_data, axis=axis)
        mask = self.data == expanded
        # Split gradient among ties so the total gradient is conserved.
        counts = mask.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(mask * g / counts)

        return Tensor._make(out_data, (self,), backward)

    def min(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Minimum over ``axis`` (implemented as ``-max(-x)``)."""
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        """Reshape to ``shape`` (accepts varargs or a single tuple)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        """Permute axes (full reversal when ``axes`` is None)."""
        if axes is None:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(self.data[index], (self,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows (axis 0) — the embedding-lookup primitive."""
        indices = np.asarray(indices)

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, indices.reshape(-1), grad.reshape(-1, self.data.shape[-1]))
            self._accumulate(full)

        return Tensor._make(self.data[indices], (self,), backward)

    # ------------------------------------------------------------------
    # Comparisons (non-differentiable, return arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other) -> np.ndarray:
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other) -> np.ndarray:
        return self.data < (other.data if isinstance(other, Tensor) else other)


def as_tensor(value: "Tensor | float | int | np.ndarray | Sequence") -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no-op when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    data = np.concatenate([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]

    def backward(grad: np.ndarray) -> None:
        pieces = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    data = np.stack([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tuple(tensors), backward)
