"""Module base class: parameter registration, traversal, train/eval modes.

Mirrors the slice of ``torch.nn.Module`` the reproduction needs: recursive
parameter collection, named parameters for serialization, and a
training-mode flag that layers such as dropout consult.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter(Tensor):
    """A tensor that is a learnable parameter of a :class:`Module`."""

    def __init__(self, data: np.ndarray, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self.training: bool = True

    # ------------------------------------------------------------------
    # Registration via attribute assignment
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """All learnable parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, recursively."""
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters (useful for model cards)."""
        return sum(p.data.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode on this module and all children."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode (disables dropout etc.)."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array, keyed by dotted path."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters from a :meth:`state_dict` mapping."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.data.shape}")
            param.data = value.copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the module's output (implemented by subclasses)."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(layers):
            setattr(self, f"layer{index}", layer)

    def forward(self, x: Tensor) -> Tensor:
        """Apply every layer in order."""
        for layer in self.layers:
            x = layer(x)
        return x
