"""``repro.nn`` — a from-scratch deep-learning substrate on numpy.

Provides the tensor autograd engine, layers, losses, and optimizers that
OmniMatch and the neural baselines are built on. The public surface mirrors
the small slice of PyTorch the paper's implementation relies on.
"""

from .attention import MultiHeadSelfAttention, TransformerEncoder, TransformerEncoderLayer
from .conv import (
    TextConv,
    clear_conv_workspace,
    conv1d_text,
    conv_bank_pool,
    max_mean_pool,
    max_over_time,
    mean_over_time,
)
from .graph import (
    Arena,
    GraphOptimizer,
    graph_optimizer,
    graph_scope,
    set_graph_optimizer,
    tape_ops,
    tape_size,
)
from .layers import MLP, Dropout, Embedding, LayerNorm, Linear, ReLU, Tanh
from .loss import (
    CrossEntropyLoss,
    MSELoss,
    SupConLoss,
    cross_entropy,
    mse_loss,
    softmax_cross_entropy,
    supcon_loss,
)
from .module import Module, Parameter, Sequential
from .optim import SGD, Adadelta, Adam, Optimizer, clip_grad_norm
from .serialization import load_module, save_module
from .tensor import (
    Tensor,
    as_tensor,
    concat,
    default_dtype,
    fast_math_enabled,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    reset_tensor_stats,
    set_default_dtype,
    set_fast_math,
    set_tensor_stats,
    stack,
    tensor_stats,
    tensor_stats_enabled,
)
from . import functional
from . import init

__all__ = [
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "default_dtype",
    "set_fast_math",
    "fast_math_enabled",
    "set_tensor_stats",
    "tensor_stats_enabled",
    "tensor_stats",
    "reset_tensor_stats",
    "Arena",
    "GraphOptimizer",
    "set_graph_optimizer",
    "graph_optimizer",
    "graph_scope",
    "tape_ops",
    "tape_size",
    "clear_conv_workspace",
    "conv_bank_pool",
    "max_mean_pool",
    "softmax_cross_entropy",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Embedding",
    "Dropout",
    "ReLU",
    "Tanh",
    "LayerNorm",
    "MLP",
    "TextConv",
    "conv1d_text",
    "max_over_time",
    "mean_over_time",
    "MultiHeadSelfAttention",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "MSELoss",
    "CrossEntropyLoss",
    "SupConLoss",
    "mse_loss",
    "cross_entropy",
    "supcon_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "Adadelta",
    "clip_grad_norm",
    "save_module",
    "load_module",
    "functional",
    "init",
]
