"""Functional building blocks composed from :class:`~repro.nn.tensor.Tensor` ops.

Everything here is differentiable unless noted. The implementations favour
numerical stability (log-sum-exp shifted softmax) because the supervised
contrastive loss and the domain classifier both exponentiate logits.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, _matmul_arena, as_tensor, get_default_dtype

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "logsumexp",
    "dropout",
    "gradient_reversal",
    "l2_normalize",
    "linear_relu",
    "one_hot",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, the paper's activation throughout (Eq. 5)."""
    return as_tensor(x).relu()


def sigmoid(x: Tensor) -> Tensor:
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    return as_tensor(x).tanh()


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(x)))`` along ``axis``."""
    x = as_tensor(x)
    shift = Tensor(x.data.max(axis=axis, keepdims=True))  # constant, no grad
    shifted = x - shift
    out = shifted.exp().sum(axis=axis, keepdims=True).log() + shift
    if not keepdims:
        out = out.reshape(*np.squeeze(out.data, axis=axis).shape)
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Stable log-softmax along ``axis``."""
    x = as_tensor(x)
    return x - logsumexp(x, axis=axis, keepdims=True)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Stable softmax along ``axis``."""
    return log_softmax(x, axis=axis).exp()


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-rate)``.

    At evaluation time (``training=False``) this is the identity, so no
    rescaling is needed at inference.
    """
    if not training or rate <= 0.0:
        return as_tensor(x)
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    x = as_tensor(x)
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    return x * Tensor(mask)


def gradient_reversal(x: Tensor, lam: float = 1.0) -> Tensor:
    """Gradient Reversal Layer (Ganin & Lempitsky 2015).

    Forward pass is the identity; the backward pass multiplies gradients by
    ``-lam``. This is the mechanism the Domain Adversarial Training Module
    uses to *maximize* the domain-classification loss with respect to the
    feature-extractor parameters while the classifier itself minimizes it.
    """
    x = as_tensor(x)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(-lam * grad)

    return Tensor._make(x.data.copy(), (x,), backward)


def linear_relu(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fused ``relu(x @ W.T + b)`` with a hand-written backward pass.

    Functionally identical to composing :class:`~repro.nn.Linear` with
    :func:`relu`, but records one tape node instead of three and reuses the
    forward activation as the backward mask — the MLP hot path (rating head,
    domain classifiers, projection head) spends most of its non-GEMM time in
    tape bookkeeping, which this removes. ``x`` must be 2-D ``(batch, in)``.
    """
    if x.data.ndim != 2:
        raise ValueError(f"linear_relu expects 2-D input, got shape {x.data.shape}")
    out_data, served = _matmul_arena(x.data, weight.data.T)
    if bias is not None:
        out_data += bias.data
    np.maximum(out_data, 0.0, out=out_data)
    mask = out_data > 0

    def backward(grad: np.ndarray) -> None:
        masked = grad * mask
        if x.requires_grad:
            g, from_arena = _matmul_arena(masked, weight.data)
            x._accumulate(g, owned=True, arena=from_arena)
        if weight.requires_grad:
            g, from_arena = _matmul_arena(masked.T, x.data)
            weight._accumulate(g, owned=True, arena=from_arena)
        if bias is not None and bias.requires_grad:
            bias._accumulate(masked.sum(axis=0), owned=True)

    parents = (x, weight) + ((bias,) if bias is not None else ())
    return Tensor._make(out_data, parents, backward, op="linear_relu", arena=served)


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Project rows onto the unit sphere (used before the contrastive loss)."""
    x = as_tensor(x)
    norm = ((x * x).sum(axis=axis, keepdims=True) + eps).sqrt()
    return x / norm


def one_hot(
    labels: np.ndarray, num_classes: int, dtype: np.dtype | type | None = None
) -> np.ndarray:
    """Dense one-hot encoding of integer ``labels`` (non-differentiable)."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= num_classes):
        raise ValueError("labels out of range for one_hot")
    out = np.zeros(
        (labels.size, num_classes),
        dtype=np.dtype(dtype) if dtype is not None else get_default_dtype(),
    )
    out[np.arange(labels.size), labels.reshape(-1)] = 1.0
    return out.reshape(*labels.shape, num_classes)
