"""Crash-safe file writes, durable line appends, and content digests.

Every durable artifact the training runtime produces (checkpoint payloads,
manifests, exported datasets, benchmark reports) goes through
:func:`atomic_write_bytes`: the bytes land in a temporary file in the *same
directory*, are flushed and ``fsync``-ed, and only then renamed over the
destination. A reader therefore observes either the old file or the complete
new file — never a torn write — and a process killed mid-write leaves the
destination untouched.

Append-only streams (the telemetry ``run.jsonl`` of :mod:`repro.obs`) use
:class:`LineAppender` instead: whole lines are appended and flushed one at a
time, so a crash can tear at most the final line — which line-oriented
readers skip — and size-based rotation renames the full segment with the
same ``os.replace`` + directory-fsync discipline as the atomic writers.

The SHA-256 helpers back the checkpoint manifest: digests are computed over
the exact bytes written, so any later bit-flip or truncation is detectable.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
    "LineAppender",
    "sha256_bytes",
    "sha256_file",
]


def fsync_directory(path: str | os.PathLike) -> None:
    """Flush a directory entry so a preceding rename survives power loss.

    Best-effort: platforms that cannot ``fsync`` a directory (or open one
    read-only) simply skip the flush — atomicity of the rename still holds.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + fsync + rename)."""
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass
    fsync_directory(path.parent)


def atomic_write_text(path: str | os.PathLike, text: str) -> None:
    """UTF-8 convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"))


class LineAppender:
    """Durable append-only line stream with size-based rotation.

    Each :meth:`append` writes one complete line and flushes it to the OS,
    so a crash tears at most the line in flight. When the active file would
    exceed ``max_bytes``, it is rotated: ``path`` -> ``path.1`` ->
    ``path.2`` … up to ``max_files`` retained segments, each shift an
    ``os.replace`` (atomic on POSIX) followed by a directory fsync. Readers
    therefore always see whole rotated segments plus an active file whose
    only possibly-incomplete content is its final line.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        max_bytes: int | None = None,
        max_files: int = 3,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None to disable rotation)")
        if max_files < 1:
            raise ValueError("max_files must be at least 1")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.max_files = max_files
        self._handle = None
        self._size = self.path.stat().st_size if self.path.exists() else 0
        self.rotations = 0

    def _open(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def rotated_paths(self) -> list[Path]:
        """Existing rotated segments, oldest last (``path.1`` is newest)."""
        found = []
        for index in range(1, self.max_files + 1):
            candidate = self.path.with_name(f"{self.path.name}.{index}")
            if candidate.exists():
                found.append(candidate)
        return found

    def _rotate(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
        # Shift path.N-1 -> path.N (dropping the oldest), then path -> path.1.
        oldest = self.path.with_name(f"{self.path.name}.{self.max_files}")
        if oldest.exists():
            oldest.unlink()
        for index in range(self.max_files - 1, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{index}")
            if src.exists():
                os.replace(src, self.path.with_name(f"{self.path.name}.{index + 1}"))
        if self.path.exists():
            os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        fsync_directory(self.path.parent)
        self._size = 0
        self.rotations += 1

    def append(self, line: str) -> None:
        """Append one line (a trailing newline is added when missing)."""
        if not line.endswith("\n"):
            line += "\n"
        encoded_size = len(line.encode("utf-8"))
        if (
            self.max_bytes is not None
            and self._size > 0
            and self._size + encoded_size > self.max_bytes
        ):
            self._rotate()
        handle = self._open()
        handle.write(line)
        handle.flush()
        self._size += encoded_size

    def flush(self, fsync: bool = False) -> None:
        """Flush buffered lines; with ``fsync`` also force them to disk."""
        if self._handle is not None:
            self._handle.flush()
            if fsync:
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush, fsync, and close the active file (idempotent)."""
        if self._handle is not None:
            self.flush(fsync=True)
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "LineAppender":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def sha256_bytes(data: bytes) -> str:
    """Hex SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: str | os.PathLike, chunk_size: int = 1 << 20) -> str:
    """Hex SHA-256 digest of a file, streamed in ``chunk_size`` blocks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()
