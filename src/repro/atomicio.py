"""Crash-safe file writes and content digests.

Every durable artifact the training runtime produces (checkpoint payloads,
manifests, exported datasets) goes through :func:`atomic_write_bytes`:
the bytes land in a temporary file in the *same directory*, are flushed and
``fsync``-ed, and only then renamed over the destination. A reader therefore
observes either the old file or the complete new file — never a torn write —
and a process killed mid-write leaves the destination untouched.

The SHA-256 helpers back the checkpoint manifest: digests are computed over
the exact bytes written, so any later bit-flip or truncation is detectable.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
    "sha256_bytes",
    "sha256_file",
]


def fsync_directory(path: str | os.PathLike) -> None:
    """Flush a directory entry so a preceding rename survives power loss.

    Best-effort: platforms that cannot ``fsync`` a directory (or open one
    read-only) simply skip the flush — atomicity of the rename still holds.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + fsync + rename)."""
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass
    fsync_directory(path.parent)


def atomic_write_text(path: str | os.PathLike, text: str) -> None:
    """UTF-8 convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"))


def sha256_bytes(data: bytes) -> str:
    """Hex SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: str | os.PathLike, chunk_size: int = 1 << 20) -> str:
    """Hex SHA-256 digest of a file, streamed in ``chunk_size`` blocks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()
