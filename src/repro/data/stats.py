"""Dataset statistics: the sanity report printed before every experiment.

Collects the numbers a recommender-systems paper's dataset table reports:
user/item/interaction counts, density, rating histogram, reviews-per-user
and reviews-per-item distributions, and overlap statistics for a
cross-domain pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .records import CrossDomainDataset, DomainData, RATING_LEVELS

__all__ = ["DomainStats", "domain_stats", "cross_domain_stats", "format_stats"]


@dataclass(frozen=True)
class DomainStats:
    """Summary statistics of one domain."""

    name: str
    num_users: int
    num_items: int
    num_reviews: int
    density: float
    rating_histogram: dict[float, int]
    mean_rating: float
    reviews_per_user_mean: float
    reviews_per_user_median: float
    reviews_per_item_mean: float
    reviews_per_item_median: float


def domain_stats(domain: DomainData) -> DomainStats:
    """Compute :class:`DomainStats` for ``domain``."""
    per_user = [len(v) for v in domain.by_user.values()] or [0]
    per_item = [len(v) for v in domain.by_item.values()] or [0]
    ratings = [r.rating for r in domain.reviews]
    histogram = {level: 0 for level in RATING_LEVELS}
    for rating in ratings:
        histogram[rating] += 1
    return DomainStats(
        name=domain.name,
        num_users=len(domain.by_user),
        num_items=len(domain.by_item),
        num_reviews=len(domain.reviews),
        density=domain.density(),
        rating_histogram=histogram,
        mean_rating=float(np.mean(ratings)) if ratings else 0.0,
        reviews_per_user_mean=float(np.mean(per_user)),
        reviews_per_user_median=float(np.median(per_user)),
        reviews_per_item_mean=float(np.mean(per_item)),
        reviews_per_item_median=float(np.median(per_item)),
    )


def cross_domain_stats(dataset: CrossDomainDataset) -> dict:
    """Per-domain stats plus overlap figures for a scenario."""
    overlap = dataset.overlapping_users
    source_users = dataset.source.users
    target_users = dataset.target.users
    return {
        "scenario": dataset.scenario,
        "source": domain_stats(dataset.source),
        "target": domain_stats(dataset.target),
        "overlap_users": len(overlap),
        "overlap_fraction_of_source": len(overlap) / max(1, len(source_users)),
        "overlap_fraction_of_target": len(overlap) / max(1, len(target_users)),
    }


def format_stats(dataset: CrossDomainDataset) -> str:
    """Human-readable multi-line report."""
    stats = cross_domain_stats(dataset)
    lines = [f"scenario: {stats['scenario']}"]
    for side in ("source", "target"):
        s: DomainStats = stats[side]
        hist = " ".join(f"{int(k)}:{v}" for k, v in sorted(s.rating_histogram.items()))
        lines.append(
            f"  {side} ({s.name}): users={s.num_users} items={s.num_items} "
            f"reviews={s.num_reviews} density={s.density:.4f} "
            f"mean_rating={s.mean_rating:.2f}"
        )
        lines.append(
            f"    reviews/user mean={s.reviews_per_user_mean:.1f} "
            f"median={s.reviews_per_user_median:.0f} | "
            f"reviews/item mean={s.reviews_per_item_mean:.1f} "
            f"median={s.reviews_per_item_median:.0f}"
        )
        lines.append(f"    rating histogram: {hist}")
    lines.append(
        f"  overlap: {stats['overlap_users']} users "
        f"({stats['overlap_fraction_of_source']:.0%} of source, "
        f"{stats['overlap_fraction_of_target']:.0%} of target)"
    )
    return "\n".join(lines)
