"""Synthetic cross-domain review corpus generator.

Substitution note (DESIGN.md §2): the paper evaluates on the public Amazon
Review and Douban datasets, which cannot be downloaded here. This generator
produces a corpus in which the paper's two modelling assumptions hold *by
construction*, so every experiment exercises the same code paths and keeps
its qualitative shape:

1. **Cross-domain preference consistency.** Each user owns a single latent
   topic-preference vector shared by all domains; a small domain-specific
   perturbation is added per domain. A sci-fi lover loves sci-fi books and
   sci-fi movies.
2. **Like-mindedness.** Ratings are a monotone function of user-item topic
   affinity plus user/item biases and noise, so two users who give the same
   item the same rating tend to have correlated preference vectors.

Review *summaries* are short and topical: words drawn from the item's topic
mixture weighted by the user's interest, plus sentiment words determined by
the rating, plus a couple of domain-specific words (so the domain classifier
has real signal to fight the GRL over). Full review *texts* are longer and
noisier — they mix in filler words — which reproduces the paper's finding
that summaries beat full texts (Table 5, OmniMatch-ReviewText).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace

import numpy as np

from .records import CrossDomainDataset, DomainData, Review

__all__ = [
    "GeneratorConfig",
    "DATASET_PROFILES",
    "DOMAINS",
    "TOPICS",
    "generate_scenario",
    "generate_domain_pair",
    "scale_target_catalog",
]

# ---------------------------------------------------------------------------
# Lexicons
# ---------------------------------------------------------------------------
TOPICS: dict[str, list[str]] = {
    "vampire": [
        "vampire", "fangs", "blood", "immortal", "nocturnal", "bite", "coven",
        "undead", "gothic", "pale", "thirst", "eternal", "nightwalker", "stake",
    ],
    "scifi": [
        "scifi", "spaceship", "galaxy", "robot", "alien", "future", "laser",
        "android", "warp", "cyber", "dystopia", "quantum", "starship", "clone",
    ],
    "horror": [
        "horror", "scary", "boogeyman", "creepy", "haunted", "ghost", "demon",
        "nightmare", "terrifying", "shadows", "sinister", "chilling", "eerie",
        "macabre",
    ],
    "adventure": [
        "adventure", "quest", "journey", "explorer", "treasure", "wilderness",
        "expedition", "daring", "escape", "survival", "trek", "voyage",
        "frontier", "discovery",
    ],
    "romance": [
        "romance", "love", "heart", "passion", "sweet", "tender", "kiss",
        "longing", "devotion", "soulmate", "swoon", "yearning", "beloved",
        "courtship",
    ],
    "mystery": [
        "mystery", "detective", "clue", "suspect", "twist", "puzzle", "secret",
        "whodunit", "alibi", "motive", "conspiracy", "riddle", "sleuth",
        "redherring",
    ],
    "comedy": [
        "comedy", "funny", "hilarious", "laugh", "witty", "absurd", "satire",
        "gag", "quirky", "slapstick", "banter", "parody", "deadpan", "goofy",
    ],
    "history": [
        "history", "historical", "war", "empire", "ancient", "medieval",
        "revolution", "dynasty", "battlefield", "heritage", "era", "archive",
        "chronicle", "regency",
    ],
}

SENTIMENT: dict[int, list[str]] = {
    1: ["terrible", "awful", "waste", "boring", "worst", "disappointing", "dull", "hated"],
    2: ["weak", "mediocre", "forgettable", "flat", "lacking", "tedious", "underwhelming", "meh"],
    3: ["okay", "decent", "average", "fine", "passable", "middling", "fair", "alright"],
    4: ["good", "enjoyable", "solid", "engaging", "liked", "recommended", "pleasant", "nice"],
    5: ["amazing", "fantastic", "masterpiece", "loved", "brilliant", "perfect", "stunning", "superb"],
}

DOMAIN_WORDS: dict[str, list[str]] = {
    "books": ["read", "pages", "chapter", "author", "prose", "paperback", "novel", "writing"],
    "movies": ["watched", "film", "screen", "director", "acting", "cinematography", "scenes", "cast"],
    "music": ["listened", "album", "tracks", "vocals", "melody", "lyrics", "rhythm", "chorus"],
}

FILLER_WORDS: list[str] = [
    "really", "very", "quite", "just", "maybe", "somehow", "definitely",
    "honestly", "probably", "overall", "though", "actually", "perhaps",
    "anyway", "basically", "certainly", "mostly", "rather", "slightly",
    "totally", "arrived", "quickly", "gift", "bought", "price", "package",
    "delivery", "ordered", "again", "friend", "family", "weekend", "evening",
]

DOMAINS = tuple(DOMAIN_WORDS)


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic world.

    The two named profiles in :data:`DATASET_PROFILES` mirror the characters
    of the paper's datasets: ``amazon`` is sparser with milder rating noise;
    ``douban`` is denser, with stronger user/item bias variance — the regime
    in which mapping-based baselines (EMCDR/PTUPCDR) degrade hardest, which
    is exactly what Table 3 shows.
    """

    num_users: int = 320
    num_items_per_domain: int = 160
    overlap_fraction: float = 0.65
    reviews_per_user_mean: float = 9.0
    reviews_per_user_min: int = 3
    summary_topic_words: int = 4
    summary_sentiment_words: int = 2
    summary_domain_words: int = 1
    text_extra_words: int = 18
    affinity_scale: float = 1.2
    exposure_uniform_mix: float = 0.15
    exposure_sharpness: float = 4.0
    user_bias_std: float = 0.40
    item_bias_std: float = 0.35
    rating_noise_std: float = 0.35
    domain_preference_jitter: float = 0.15
    topic_concentration: float = 0.4
    item_topic_concentration: float = 0.25
    seed: int = 7


DATASET_PROFILES: dict[str, GeneratorConfig] = {
    "amazon": GeneratorConfig(
        num_users=500,
        num_items_per_domain=200,
        reviews_per_user_mean=8.0,
        seed=11,
    ),
    "douban": GeneratorConfig(
        num_users=420,
        num_items_per_domain=240,
        reviews_per_user_mean=7.0,
        rating_noise_std=0.45,
        user_bias_std=0.60,
        item_bias_std=0.50,
        domain_preference_jitter=0.12,
        seed=23,
    ),
}


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------
def _sample_ratings_curve(affinity: float, user_bias: float, item_bias: float,
                          noise: float, scale: float) -> float:
    """Map latent affinity to a 1..5 star rating."""
    raw = 3.0 + scale * affinity + user_bias + item_bias + noise
    return float(np.clip(np.rint(raw), 1, 5))


def _compose_summary(
    rng: np.random.Generator,
    topic_names: list[str],
    item_topics: np.ndarray,
    user_prefs: np.ndarray,
    rating: int,
    domain: str,
    config: GeneratorConfig,
) -> str:
    """Short topical summary: topic words + sentiment words + domain words."""
    blend = item_topics * (0.5 + user_prefs)
    blend = blend / blend.sum()
    words: list[str] = []
    for _ in range(config.summary_topic_words):
        topic = topic_names[int(rng.choice(len(topic_names), p=blend))]
        words.append(str(rng.choice(TOPICS[topic])))
    words.extend(
        str(w) for w in rng.choice(SENTIMENT[rating], size=config.summary_sentiment_words)
    )
    words.extend(
        str(w) for w in rng.choice(DOMAIN_WORDS[domain], size=config.summary_domain_words)
    )
    rng.shuffle(words)
    return " ".join(words)


def _compose_text(rng: np.random.Generator, summary: str, config: GeneratorConfig,
                  domain: str) -> str:
    """Longer noisy body: the summary diluted with filler and domain words."""
    extra = [str(w) for w in rng.choice(FILLER_WORDS, size=config.text_extra_words)]
    extra.extend(str(w) for w in rng.choice(DOMAIN_WORDS[domain], size=3))
    body = summary.split() + extra
    rng.shuffle(body)
    return " ".join(body)


def generate_domain_pair(
    source_domain: str,
    target_domain: str,
    config: GeneratorConfig,
) -> CrossDomainDataset:
    """Generate one cross-domain scenario.

    Users are drawn from a shared pool; ``overlap_fraction`` of them review
    in both domains, the rest in only one (keeping the like-minded index
    populated with non-overlapping users, as in the real datasets).
    """
    for domain in (source_domain, target_domain):
        if domain not in DOMAIN_WORDS:
            raise ValueError(f"unknown domain {domain!r}; choose from {sorted(DOMAIN_WORDS)}")
    if source_domain == target_domain:
        raise ValueError("source and target domains must differ")

    # Mix the scenario name into the seed so each (source, target) pair is a
    # distinct world — otherwise every scenario would share one latent
    # structure and the six table rows would be copies of each other.
    scenario_salt = zlib.crc32(f"{source_domain}->{target_domain}".encode())
    rng = np.random.default_rng((config.seed, scenario_salt))
    topic_names = list(TOPICS)
    num_topics = len(topic_names)

    # --- latent user structure (shared across domains: paper assumption 1)
    prefs = rng.dirichlet([config.topic_concentration] * num_topics, size=config.num_users)
    user_bias = rng.normal(0.0, config.user_bias_std, size=config.num_users)
    user_ids = [f"U{index:04d}" for index in range(config.num_users)]

    # membership: overlap users belong to both domains
    num_overlap = int(round(config.overlap_fraction * config.num_users))
    shuffled = rng.permutation(config.num_users)
    overlap = set(shuffled[:num_overlap].tolist())
    rest = shuffled[num_overlap:]
    half = len(rest) // 2
    source_only = set(rest[:half].tolist())
    target_only = set(rest[half:].tolist())

    domains_data: dict[str, list[Review]] = {source_domain: [], target_domain: []}
    for domain, member_extra in (
        (source_domain, source_only),
        (target_domain, target_only),
    ):
        members = sorted(overlap | member_extra)
        item_topics = rng.dirichlet(
            [config.item_topic_concentration] * num_topics,
            size=config.num_items_per_domain,
        )
        item_bias = rng.normal(0.0, config.item_bias_std, size=config.num_items_per_domain)
        item_ids = [f"{domain[:2].upper()}{index:04d}" for index in range(config.num_items_per_domain)]

        for user_index in members:
            jitter = rng.normal(0.0, config.domain_preference_jitter, size=num_topics)
            domain_prefs = np.clip(prefs[user_index] + jitter, 1e-6, None)
            domain_prefs = domain_prefs / domain_prefs.sum()

            count = max(
                config.reviews_per_user_min,
                int(rng.poisson(config.reviews_per_user_mean)),
            )
            count = min(count, config.num_items_per_domain)
            # Item exposure mixes preference-biased picks (users buy what
            # they like) with uniform picks (gifts, impulse buys) — pure
            # preference-biased exposure would compress each user's rating
            # spread and destroy the cross-domain bias signal.
            preference_part = (item_topics @ domain_prefs) ** config.exposure_sharpness
            preference_part = preference_part / preference_part.sum()
            uniform_part = np.full(config.num_items_per_domain, 1.0 / config.num_items_per_domain)
            mix = config.exposure_uniform_mix
            exposure = mix * uniform_part + (1.0 - mix) * preference_part
            chosen = rng.choice(
                config.num_items_per_domain, size=count, replace=False, p=exposure
            )
            # Users rate on a personal curve: affinity is standardized over
            # the user's *own* selected items, so preference-concentrated
            # exposure (which drives like-mindedness) does not inflate the
            # rating distribution toward the 5-star ceiling.
            raw = item_topics[chosen] @ domain_prefs
            centered = (raw - raw.mean()) / (raw.std() + 1e-9)
            for z, item_index in zip(centered, chosen):
                rating = _sample_ratings_curve(
                    float(z),
                    user_bias[user_index],
                    item_bias[item_index],
                    float(rng.normal(0.0, config.rating_noise_std)),
                    config.affinity_scale,
                )
                summary = _compose_summary(
                    rng, topic_names, item_topics[item_index], domain_prefs,
                    int(rating), domain, config,
                )
                text = _compose_text(rng, summary, config, domain)
                domains_data[domain].append(
                    Review(
                        user_id=user_ids[user_index],
                        item_id=item_ids[item_index],
                        rating=rating,
                        summary=summary,
                        text=text,
                    )
                )

    dataset = CrossDomainDataset(
        source=DomainData(source_domain, domains_data[source_domain]),
        target=DomainData(target_domain, domains_data[target_domain]),
        metadata={"config": config},
    )
    return dataset


def scale_target_catalog(
    dataset: CrossDomainDataset,
    extra_items: int,
    *,
    reviews_per_item: int = 2,
    seed: int = 0,
) -> CrossDomainDataset:
    """Grow the *target* catalog to serving scale after training.

    This models the production pattern the ANN retriever exists for: the
    model was trained on the original corpus, then the live catalog grows by
    ``extra_items`` new target-domain items, each carrying a few reviews
    from *new* users (ids disjoint from the original pool, so the
    cold-start split, the training interactions, and every user document
    are untouched — only item documents are new). Pair the result with
    :meth:`repro.data.DocumentStore.with_dataset` to serve the grown
    catalog through a trained model's frozen vocabulary.

    Unlike :func:`generate_domain_pair`, composition here is vectorized
    (one word-table gather per lexicon instead of per-review ``rng.choice``
    calls), which is what makes 10^5-10^6-item catalogs practical to
    synthesize; full texts reuse the summaries since only summaries feed
    item documents. Deterministic in ``(dataset sizes, extra_items,
    reviews_per_item, seed)``.
    """
    if extra_items < 0:
        raise ValueError("extra_items must be >= 0")
    if reviews_per_item < 1:
        raise ValueError("reviews_per_item must be >= 1")
    if extra_items == 0:
        return dataset
    config: GeneratorConfig = dataset.metadata.get("config", GeneratorConfig())
    domain = dataset.target.name
    rng = np.random.default_rng((seed, zlib.crc32(f"scale:{domain}".encode())))
    topic_names = list(TOPICS)
    num_topics = len(topic_names)
    n_reviews = extra_items * reviews_per_item

    # Latent structure, all drawn at once: one topic mixture + bias per new
    # item, one preference vector + bias per new (single-review) user.
    item_topics = rng.dirichlet(
        [config.item_topic_concentration] * num_topics, size=extra_items
    )
    item_bias = rng.normal(0.0, config.item_bias_std, size=extra_items)
    prefs = rng.dirichlet([config.topic_concentration] * num_topics, size=n_reviews)
    user_bias = rng.normal(0.0, config.user_bias_std, size=n_reviews)
    review_item = np.repeat(np.arange(extra_items), reviews_per_item)

    # Ratings: the same latent->stars curve as generate_domain_pair, with
    # the affinity standardized over the whole batch (each new user has a
    # single review, so there is no per-user curve to standardize against).
    raw = np.einsum("ij,ij->i", item_topics[review_item], prefs)
    z = (raw - raw.mean()) / (raw.std() + 1e-9)
    stars = np.clip(
        np.rint(
            3.0
            + config.affinity_scale * z
            + user_bias
            + item_bias[review_item]
            + rng.normal(0.0, config.rating_noise_std, size=n_reviews)
        ),
        1,
        5,
    ).astype(np.intp)

    # Word tables: every lexicon list has a fixed length, so each word slot
    # is a single fancy-index gather over a rectangular table.
    topic_table = np.array([TOPICS[name] for name in topic_names])
    sent_table = np.array([SENTIMENT[r] for r in sorted(SENTIMENT)])
    domain_words = np.array(DOMAIN_WORDS[domain])

    # Topic index per word slot via per-review inverse CDF over the same
    # user-weighted blend as _compose_summary.
    blend = item_topics[review_item] * (0.5 + prefs)
    cum = np.cumsum(blend / blend.sum(axis=1, keepdims=True), axis=1)
    draws = rng.random((n_reviews, config.summary_topic_words))
    topic_idx = np.minimum(
        (draws[:, :, None] > cum[:, None, :]).sum(axis=2), num_topics - 1
    )
    word_cols = [
        topic_table[topic_idx[:, slot],
                    rng.integers(0, topic_table.shape[1], size=n_reviews)]
        for slot in range(config.summary_topic_words)
    ]
    word_cols.extend(
        sent_table[stars - 1, rng.integers(0, sent_table.shape[1], size=n_reviews)]
        for _ in range(config.summary_sentiment_words)
    )
    word_cols.extend(
        domain_words[rng.integers(0, len(domain_words), size=n_reviews)]
        for _ in range(config.summary_domain_words)
    )
    words = np.stack(word_cols, axis=1)

    base_items = len(dataset.target.items)
    item_ids = [f"{domain[:2].upper()}N{base_items + i:06d}" for i in range(extra_items)]
    reviews = list(dataset.target.reviews)
    for r in range(n_reviews):
        summary = " ".join(words[r])
        reviews.append(
            Review(
                user_id=f"UN{r:06d}",
                item_id=item_ids[review_item[r]],
                rating=float(stars[r]),
                summary=summary,
                text=summary,
            )
        )
    return CrossDomainDataset(
        source=dataset.source,
        target=DomainData(domain, reviews),
        metadata={**dataset.metadata, "scaled_items": extra_items},
    )


def generate_scenario(
    dataset: str,
    source_domain: str,
    target_domain: str,
    seed: int | None = None,
    **overrides,
) -> CrossDomainDataset:
    """Generate a named-profile scenario, e.g. ``("amazon", "books", "movies")``.

    ``seed`` (when given) and any :class:`GeneratorConfig` field overrides
    are applied on top of the dataset profile.
    """
    if dataset not in DATASET_PROFILES:
        raise ValueError(f"unknown dataset {dataset!r}; choose from {sorted(DATASET_PROFILES)}")
    config = DATASET_PROFILES[dataset]
    if seed is not None:
        overrides["seed"] = seed
    if overrides:
        config = replace(config, **overrides)
    cdd = generate_domain_pair(source_domain, target_domain, config)
    cdd.metadata["dataset"] = dataset
    return cdd
