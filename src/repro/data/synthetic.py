"""Synthetic cross-domain review corpus generator.

Substitution note (DESIGN.md §2): the paper evaluates on the public Amazon
Review and Douban datasets, which cannot be downloaded here. This generator
produces a corpus in which the paper's two modelling assumptions hold *by
construction*, so every experiment exercises the same code paths and keeps
its qualitative shape:

1. **Cross-domain preference consistency.** Each user owns a single latent
   topic-preference vector shared by all domains; a small domain-specific
   perturbation is added per domain. A sci-fi lover loves sci-fi books and
   sci-fi movies.
2. **Like-mindedness.** Ratings are a monotone function of user-item topic
   affinity plus user/item biases and noise, so two users who give the same
   item the same rating tend to have correlated preference vectors.

Review *summaries* are short and topical: words drawn from the item's topic
mixture weighted by the user's interest, plus sentiment words determined by
the rating, plus a couple of domain-specific words (so the domain classifier
has real signal to fight the GRL over). Full review *texts* are longer and
noisier — they mix in filler words — which reproduces the paper's finding
that summaries beat full texts (Table 5, OmniMatch-ReviewText).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace

import numpy as np

from .records import CrossDomainDataset, DomainData, Review

__all__ = [
    "GeneratorConfig",
    "DATASET_PROFILES",
    "DOMAINS",
    "TOPICS",
    "generate_scenario",
    "generate_domain_pair",
]

# ---------------------------------------------------------------------------
# Lexicons
# ---------------------------------------------------------------------------
TOPICS: dict[str, list[str]] = {
    "vampire": [
        "vampire", "fangs", "blood", "immortal", "nocturnal", "bite", "coven",
        "undead", "gothic", "pale", "thirst", "eternal", "nightwalker", "stake",
    ],
    "scifi": [
        "scifi", "spaceship", "galaxy", "robot", "alien", "future", "laser",
        "android", "warp", "cyber", "dystopia", "quantum", "starship", "clone",
    ],
    "horror": [
        "horror", "scary", "boogeyman", "creepy", "haunted", "ghost", "demon",
        "nightmare", "terrifying", "shadows", "sinister", "chilling", "eerie",
        "macabre",
    ],
    "adventure": [
        "adventure", "quest", "journey", "explorer", "treasure", "wilderness",
        "expedition", "daring", "escape", "survival", "trek", "voyage",
        "frontier", "discovery",
    ],
    "romance": [
        "romance", "love", "heart", "passion", "sweet", "tender", "kiss",
        "longing", "devotion", "soulmate", "swoon", "yearning", "beloved",
        "courtship",
    ],
    "mystery": [
        "mystery", "detective", "clue", "suspect", "twist", "puzzle", "secret",
        "whodunit", "alibi", "motive", "conspiracy", "riddle", "sleuth",
        "redherring",
    ],
    "comedy": [
        "comedy", "funny", "hilarious", "laugh", "witty", "absurd", "satire",
        "gag", "quirky", "slapstick", "banter", "parody", "deadpan", "goofy",
    ],
    "history": [
        "history", "historical", "war", "empire", "ancient", "medieval",
        "revolution", "dynasty", "battlefield", "heritage", "era", "archive",
        "chronicle", "regency",
    ],
}

SENTIMENT: dict[int, list[str]] = {
    1: ["terrible", "awful", "waste", "boring", "worst", "disappointing", "dull", "hated"],
    2: ["weak", "mediocre", "forgettable", "flat", "lacking", "tedious", "underwhelming", "meh"],
    3: ["okay", "decent", "average", "fine", "passable", "middling", "fair", "alright"],
    4: ["good", "enjoyable", "solid", "engaging", "liked", "recommended", "pleasant", "nice"],
    5: ["amazing", "fantastic", "masterpiece", "loved", "brilliant", "perfect", "stunning", "superb"],
}

DOMAIN_WORDS: dict[str, list[str]] = {
    "books": ["read", "pages", "chapter", "author", "prose", "paperback", "novel", "writing"],
    "movies": ["watched", "film", "screen", "director", "acting", "cinematography", "scenes", "cast"],
    "music": ["listened", "album", "tracks", "vocals", "melody", "lyrics", "rhythm", "chorus"],
}

FILLER_WORDS: list[str] = [
    "really", "very", "quite", "just", "maybe", "somehow", "definitely",
    "honestly", "probably", "overall", "though", "actually", "perhaps",
    "anyway", "basically", "certainly", "mostly", "rather", "slightly",
    "totally", "arrived", "quickly", "gift", "bought", "price", "package",
    "delivery", "ordered", "again", "friend", "family", "weekend", "evening",
]

DOMAINS = tuple(DOMAIN_WORDS)


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic world.

    The two named profiles in :data:`DATASET_PROFILES` mirror the characters
    of the paper's datasets: ``amazon`` is sparser with milder rating noise;
    ``douban`` is denser, with stronger user/item bias variance — the regime
    in which mapping-based baselines (EMCDR/PTUPCDR) degrade hardest, which
    is exactly what Table 3 shows.
    """

    num_users: int = 320
    num_items_per_domain: int = 160
    overlap_fraction: float = 0.65
    reviews_per_user_mean: float = 9.0
    reviews_per_user_min: int = 3
    summary_topic_words: int = 4
    summary_sentiment_words: int = 2
    summary_domain_words: int = 1
    text_extra_words: int = 18
    affinity_scale: float = 1.2
    exposure_uniform_mix: float = 0.15
    exposure_sharpness: float = 4.0
    user_bias_std: float = 0.40
    item_bias_std: float = 0.35
    rating_noise_std: float = 0.35
    domain_preference_jitter: float = 0.15
    topic_concentration: float = 0.4
    item_topic_concentration: float = 0.25
    seed: int = 7


DATASET_PROFILES: dict[str, GeneratorConfig] = {
    "amazon": GeneratorConfig(
        num_users=500,
        num_items_per_domain=200,
        reviews_per_user_mean=8.0,
        seed=11,
    ),
    "douban": GeneratorConfig(
        num_users=420,
        num_items_per_domain=240,
        reviews_per_user_mean=7.0,
        rating_noise_std=0.45,
        user_bias_std=0.60,
        item_bias_std=0.50,
        domain_preference_jitter=0.12,
        seed=23,
    ),
}


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------
def _sample_ratings_curve(affinity: float, user_bias: float, item_bias: float,
                          noise: float, scale: float) -> float:
    """Map latent affinity to a 1..5 star rating."""
    raw = 3.0 + scale * affinity + user_bias + item_bias + noise
    return float(np.clip(np.rint(raw), 1, 5))


def _compose_summary(
    rng: np.random.Generator,
    topic_names: list[str],
    item_topics: np.ndarray,
    user_prefs: np.ndarray,
    rating: int,
    domain: str,
    config: GeneratorConfig,
) -> str:
    """Short topical summary: topic words + sentiment words + domain words."""
    blend = item_topics * (0.5 + user_prefs)
    blend = blend / blend.sum()
    words: list[str] = []
    for _ in range(config.summary_topic_words):
        topic = topic_names[int(rng.choice(len(topic_names), p=blend))]
        words.append(str(rng.choice(TOPICS[topic])))
    words.extend(
        str(w) for w in rng.choice(SENTIMENT[rating], size=config.summary_sentiment_words)
    )
    words.extend(
        str(w) for w in rng.choice(DOMAIN_WORDS[domain], size=config.summary_domain_words)
    )
    rng.shuffle(words)
    return " ".join(words)


def _compose_text(rng: np.random.Generator, summary: str, config: GeneratorConfig,
                  domain: str) -> str:
    """Longer noisy body: the summary diluted with filler and domain words."""
    extra = [str(w) for w in rng.choice(FILLER_WORDS, size=config.text_extra_words)]
    extra.extend(str(w) for w in rng.choice(DOMAIN_WORDS[domain], size=3))
    body = summary.split() + extra
    rng.shuffle(body)
    return " ".join(body)


def generate_domain_pair(
    source_domain: str,
    target_domain: str,
    config: GeneratorConfig,
) -> CrossDomainDataset:
    """Generate one cross-domain scenario.

    Users are drawn from a shared pool; ``overlap_fraction`` of them review
    in both domains, the rest in only one (keeping the like-minded index
    populated with non-overlapping users, as in the real datasets).
    """
    for domain in (source_domain, target_domain):
        if domain not in DOMAIN_WORDS:
            raise ValueError(f"unknown domain {domain!r}; choose from {sorted(DOMAIN_WORDS)}")
    if source_domain == target_domain:
        raise ValueError("source and target domains must differ")

    # Mix the scenario name into the seed so each (source, target) pair is a
    # distinct world — otherwise every scenario would share one latent
    # structure and the six table rows would be copies of each other.
    scenario_salt = zlib.crc32(f"{source_domain}->{target_domain}".encode())
    rng = np.random.default_rng((config.seed, scenario_salt))
    topic_names = list(TOPICS)
    num_topics = len(topic_names)

    # --- latent user structure (shared across domains: paper assumption 1)
    prefs = rng.dirichlet([config.topic_concentration] * num_topics, size=config.num_users)
    user_bias = rng.normal(0.0, config.user_bias_std, size=config.num_users)
    user_ids = [f"U{index:04d}" for index in range(config.num_users)]

    # membership: overlap users belong to both domains
    num_overlap = int(round(config.overlap_fraction * config.num_users))
    shuffled = rng.permutation(config.num_users)
    overlap = set(shuffled[:num_overlap].tolist())
    rest = shuffled[num_overlap:]
    half = len(rest) // 2
    source_only = set(rest[:half].tolist())
    target_only = set(rest[half:].tolist())

    domains_data: dict[str, list[Review]] = {source_domain: [], target_domain: []}
    for domain, member_extra in (
        (source_domain, source_only),
        (target_domain, target_only),
    ):
        members = sorted(overlap | member_extra)
        item_topics = rng.dirichlet(
            [config.item_topic_concentration] * num_topics,
            size=config.num_items_per_domain,
        )
        item_bias = rng.normal(0.0, config.item_bias_std, size=config.num_items_per_domain)
        item_ids = [f"{domain[:2].upper()}{index:04d}" for index in range(config.num_items_per_domain)]

        for user_index in members:
            jitter = rng.normal(0.0, config.domain_preference_jitter, size=num_topics)
            domain_prefs = np.clip(prefs[user_index] + jitter, 1e-6, None)
            domain_prefs = domain_prefs / domain_prefs.sum()

            count = max(
                config.reviews_per_user_min,
                int(rng.poisson(config.reviews_per_user_mean)),
            )
            count = min(count, config.num_items_per_domain)
            # Item exposure mixes preference-biased picks (users buy what
            # they like) with uniform picks (gifts, impulse buys) — pure
            # preference-biased exposure would compress each user's rating
            # spread and destroy the cross-domain bias signal.
            preference_part = (item_topics @ domain_prefs) ** config.exposure_sharpness
            preference_part = preference_part / preference_part.sum()
            uniform_part = np.full(config.num_items_per_domain, 1.0 / config.num_items_per_domain)
            mix = config.exposure_uniform_mix
            exposure = mix * uniform_part + (1.0 - mix) * preference_part
            chosen = rng.choice(
                config.num_items_per_domain, size=count, replace=False, p=exposure
            )
            # Users rate on a personal curve: affinity is standardized over
            # the user's *own* selected items, so preference-concentrated
            # exposure (which drives like-mindedness) does not inflate the
            # rating distribution toward the 5-star ceiling.
            raw = item_topics[chosen] @ domain_prefs
            centered = (raw - raw.mean()) / (raw.std() + 1e-9)
            for z, item_index in zip(centered, chosen):
                rating = _sample_ratings_curve(
                    float(z),
                    user_bias[user_index],
                    item_bias[item_index],
                    float(rng.normal(0.0, config.rating_noise_std)),
                    config.affinity_scale,
                )
                summary = _compose_summary(
                    rng, topic_names, item_topics[item_index], domain_prefs,
                    int(rating), domain, config,
                )
                text = _compose_text(rng, summary, config, domain)
                domains_data[domain].append(
                    Review(
                        user_id=user_ids[user_index],
                        item_id=item_ids[item_index],
                        rating=rating,
                        summary=summary,
                        text=text,
                    )
                )

    dataset = CrossDomainDataset(
        source=DomainData(source_domain, domains_data[source_domain]),
        target=DomainData(target_domain, domains_data[target_domain]),
        metadata={"config": config},
    )
    return dataset


def generate_scenario(
    dataset: str,
    source_domain: str,
    target_domain: str,
    seed: int | None = None,
    **overrides,
) -> CrossDomainDataset:
    """Generate a named-profile scenario, e.g. ``("amazon", "books", "movies")``.

    ``seed`` (when given) and any :class:`GeneratorConfig` field overrides
    are applied on top of the dataset profile.
    """
    if dataset not in DATASET_PROFILES:
        raise ValueError(f"unknown dataset {dataset!r}; choose from {sorted(DATASET_PROFILES)}")
    config = DATASET_PROFILES[dataset]
    if seed is not None:
        overrides["seed"] = seed
    if overrides:
        config = replace(config, **overrides)
    cdd = generate_domain_pair(source_domain, target_domain, config)
    cdd.metadata["dataset"] = dataset
    return cdd
