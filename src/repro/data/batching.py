"""Document store and mini-batch iteration.

The :class:`DocumentStore` materializes, once per experiment, the encoded
token documents the feature extractors consume:

* a user's **source document** — concatenation of their source-domain
  reviews (visible for every user, including cold-start users);
* a user's **target document** — concatenation of their target-domain
  reviews, *only* for training users (cold users' target reviews are hidden
  by the protocol and never enter the store);
* an **item document** — concatenation of the reviews written about the
  item by visible users (training + non-overlapping target users). Reviews
  written by cold-start users are excluded to avoid evaluation leakage.

The vocabulary is likewise built only from visible text.

:meth:`DocumentStore.build_matrices` additionally packs every document into
contiguous ``int32`` matrices keyed by integer slots, so the trainer's batch
assembly is a fancy-index gather instead of a per-sample dict-lookup loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..text import REVIEW_SEPARATOR, Vocabulary, build_document
from .records import CrossDomainDataset, Review
from .split import ColdStartSplit

__all__ = ["DocumentMatrices", "DocumentStore", "iter_batches"]


@dataclass(frozen=True)
class DocumentMatrices:
    """Contiguous int32 document tensors for vectorized batch assembly.

    ``source`` has a valid row for every user slot. ``target`` rows are only
    valid for training (non-cold) users — cold slots hold zeros (= padding
    tokens) and ``target_valid`` is False there, mirroring the protocol that
    hides cold users' target reviews. ``items`` covers every target item.
    """

    user_slots: dict[str, int]
    item_slots: dict[str, int]
    source: np.ndarray
    target: np.ndarray
    target_valid: np.ndarray
    items: np.ndarray

    def user_slot(self, user_id: str) -> int:
        """Row index of ``user_id`` in ``source`` / ``target``."""
        return self.user_slots[user_id]

    def item_slot(self, item_id: str) -> int:
        """Row index of ``item_id`` in ``items``."""
        return self.item_slots[item_id]


class DocumentStore:
    """Encoded documents + vocabulary for one (dataset, split) pair."""

    def __init__(
        self,
        dataset: CrossDomainDataset,
        split: ColdStartSplit,
        doc_len: int = 64,
        vocab_size: int = 4000,
        field: str = "summary",
    ) -> None:
        if field not in ("summary", "text"):
            raise ValueError("field must be 'summary' or 'text'")
        self.dataset = dataset
        self.split = split
        self.doc_len = doc_len
        self.vocab_size = vocab_size
        self.field = field
        self._cold = set(split.cold_users)
        self._train = set(split.train_users)

        self._user_source_cache: dict[str, np.ndarray] = {}
        self._user_target_cache: dict[str, np.ndarray] = {}
        self._item_cache: dict[str, np.ndarray] = {}
        self._matrices: DocumentMatrices | None = None

        self._token_docs = self._tokenize_corpus()  # kept for embedding training
        self.vocab = Vocabulary.build(
            self._token_docs, max_size=vocab_size, specials=[REVIEW_SEPARATOR]
        )

    @classmethod
    def from_matrices(
        cls,
        dataset: CrossDomainDataset,
        split: ColdStartSplit,
        *,
        matrices: DocumentMatrices,
        vocab: Vocabulary,
        doc_len: int,
        vocab_size: int = 4000,
        field: str = "summary",
    ) -> "DocumentStore":
        """Wrap pre-built matrices + vocabulary without re-encoding.

        Used by the parallel engine: the parent builds the store once,
        publishes its matrices through shared memory, and each worker
        reconstructs an equivalent store around the zero-copy views. The
        token corpus (needed only for embedding training) is re-tokenized
        lazily on first use; every encoding the store can produce is
        bit-identical to the parent's because tokenization, the published
        vocabulary, and the published matrices are all deterministic
        functions of (dataset, split).
        """
        if field not in ("summary", "text"):
            raise ValueError("field must be 'summary' or 'text'")
        store = cls.__new__(cls)
        store.dataset = dataset
        store.split = split
        store.doc_len = doc_len
        store.vocab_size = vocab_size
        store.field = field
        store._cold = set(split.cold_users)
        store._train = set(split.train_users)
        store._user_source_cache = {}
        store._user_target_cache = {}
        store._item_cache = {}
        store._matrices = matrices
        store._token_docs = None
        store.vocab = vocab
        return store

    def with_dataset(self, dataset: CrossDomainDataset) -> "DocumentStore":
        """A new store over ``dataset`` with this store's vocabulary frozen.

        The serving-scale pattern: the catalog grows *after* training (see
        :func:`repro.data.scale_target_catalog`), and the trained extractors
        only understand the vocabulary they were trained with — so the new
        store must encode the grown corpus through the original vocab, with
        unseen words mapping to the OOV token exactly as they would in
        production. Documents for unchanged entities encode bit-identically
        to this store's; caches start empty.
        """
        store = type(self).__new__(type(self))
        store.dataset = dataset
        store.split = self.split
        store.doc_len = self.doc_len
        store.vocab_size = self.vocab_size
        store.field = self.field
        store._cold = set(self._cold)
        store._train = set(self._train)
        store._user_source_cache = {}
        store._user_target_cache = {}
        store._item_cache = {}
        store._matrices = None
        store._token_docs = None  # re-tokenized lazily from the new corpus
        store.vocab = self.vocab
        return store

    def _tokenize_corpus(self) -> list[list[str]]:
        corpus = [self._review_text(r) for r in self._visible_reviews()]
        return [build_document([text]) for text in corpus]

    # ------------------------------------------------------------------
    # Visibility rules
    # ------------------------------------------------------------------
    def _review_text(self, review: Review) -> str:
        return review.text if self.field == "text" else review.summary

    def _visible_reviews(self) -> list[Review]:
        """Everything the model may read: all source reviews + non-cold target."""
        visible = list(self.dataset.source.reviews)
        visible.extend(
            r for r in self.dataset.target.reviews if r.user_id not in self._cold
        )
        return visible

    def visible_token_documents(self) -> list[list[str]]:
        """Per-review token lists — the embedding-training corpus."""
        if self._token_docs is None:  # store built via :meth:`from_matrices`
            self._token_docs = self._tokenize_corpus()
        return self._token_docs

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_reviews(self, reviews: Sequence[str]) -> np.ndarray:
        """Concatenate ``reviews`` with separators and encode to ``doc_len`` ids."""
        tokens = build_document(reviews, max_tokens=self.doc_len)
        return self.vocab.encode(tokens, length=self.doc_len)

    def user_source_doc(self, user_id: str) -> np.ndarray:
        """Encoded source-domain document (available for every user)."""
        if user_id not in self._user_source_cache:
            reviews = [
                self._review_text(r)
                for r in self.dataset.source.reviews_of_user(user_id)
            ]
            self._user_source_cache[user_id] = self.encode_reviews(reviews)
        return self._user_source_cache[user_id]

    def user_target_doc(self, user_id: str) -> np.ndarray:
        """Real target-domain document — training users only."""
        if user_id in self._cold:
            raise KeyError(
                f"user {user_id!r} is cold-start: its target reviews are hidden"
            )
        if user_id not in self._user_target_cache:
            reviews = [
                self._review_text(r)
                for r in self.dataset.target.reviews_of_user(user_id)
            ]
            self._user_target_cache[user_id] = self.encode_reviews(reviews)
        return self._user_target_cache[user_id]

    def item_doc(self, item_id: str) -> np.ndarray:
        """Encoded item document from visible target-domain reviews."""
        if item_id not in self._item_cache:
            reviews = [
                self._review_text(r)
                for r in self.dataset.target.reviews_of_item(item_id)
                if r.user_id not in self._cold
            ]
            self._item_cache[item_id] = self.encode_reviews(reviews)
        return self._item_cache[item_id]

    # ------------------------------------------------------------------
    # Vectorized access
    # ------------------------------------------------------------------
    def build_matrices(self) -> DocumentMatrices:
        """Pack every document into contiguous int32 matrices, once.

        User slots cover the union of source- and target-domain users;
        item slots cover every target-domain item. Repeated calls return
        the same :class:`DocumentMatrices` instance.
        """
        if self._matrices is not None:
            return self._matrices

        users = sorted(self.dataset.source.users | self.dataset.target.users)
        items = sorted(self.dataset.target.items)
        user_slots = {user_id: slot for slot, user_id in enumerate(users)}
        item_slots = {item_id: slot for slot, item_id in enumerate(items)}

        source = np.zeros((len(users), self.doc_len), dtype=np.int32)
        target = np.zeros((len(users), self.doc_len), dtype=np.int32)
        target_valid = np.zeros(len(users), dtype=bool)
        for user_id, slot in user_slots.items():
            source[slot] = self.user_source_doc(user_id)
            if user_id not in self._cold and user_id in self.dataset.target.users:
                target[slot] = self.user_target_doc(user_id)
                target_valid[slot] = True

        item_matrix = np.zeros((len(items), self.doc_len), dtype=np.int32)
        for item_id, slot in item_slots.items():
            item_matrix[slot] = self.item_doc(item_id)

        self._matrices = DocumentMatrices(
            user_slots=user_slots,
            item_slots=item_slots,
            source=source,
            target=target,
            target_valid=target_valid,
            items=item_matrix,
        )
        return self._matrices


def iter_batches(
    interactions: Sequence[Review],
    batch_size: int,
    rng: np.random.Generator,
    shuffle: bool = True,
) -> Iterator[list[Review]]:
    """Yield mini-batches of interactions, reshuffled each pass."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    order = np.arange(len(interactions))
    if shuffle:
        rng.shuffle(order)
    for start in range(0, len(order), batch_size):
        yield [interactions[i] for i in order[start : start + batch_size]]
