"""Document store and mini-batch iteration.

The :class:`DocumentStore` materializes, once per experiment, the encoded
token documents the feature extractors consume:

* a user's **source document** — concatenation of their source-domain
  reviews (visible for every user, including cold-start users);
* a user's **target document** — concatenation of their target-domain
  reviews, *only* for training users (cold users' target reviews are hidden
  by the protocol and never enter the store);
* an **item document** — concatenation of the reviews written about the
  item by visible users (training + non-overlapping target users). Reviews
  written by cold-start users are excluded to avoid evaluation leakage.

The vocabulary is likewise built only from visible text.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..text import REVIEW_SEPARATOR, Vocabulary, build_document
from .records import CrossDomainDataset, Review
from .split import ColdStartSplit

__all__ = ["DocumentStore", "iter_batches"]


class DocumentStore:
    """Encoded documents + vocabulary for one (dataset, split) pair."""

    def __init__(
        self,
        dataset: CrossDomainDataset,
        split: ColdStartSplit,
        doc_len: int = 64,
        vocab_size: int = 4000,
        field: str = "summary",
    ) -> None:
        if field not in ("summary", "text"):
            raise ValueError("field must be 'summary' or 'text'")
        self.dataset = dataset
        self.split = split
        self.doc_len = doc_len
        self.field = field
        self._cold = set(split.cold_users)
        self._train = set(split.train_users)

        self._user_source_cache: dict[str, np.ndarray] = {}
        self._user_target_cache: dict[str, np.ndarray] = {}
        self._item_cache: dict[str, np.ndarray] = {}

        corpus = [self._review_text(r) for r in self._visible_reviews()]
        token_docs = [build_document([text]) for text in corpus]
        self.vocab = Vocabulary.build(
            token_docs, max_size=vocab_size, specials=[REVIEW_SEPARATOR]
        )
        self._token_docs = token_docs  # kept for embedding training

    # ------------------------------------------------------------------
    # Visibility rules
    # ------------------------------------------------------------------
    def _review_text(self, review: Review) -> str:
        return review.text if self.field == "text" else review.summary

    def _visible_reviews(self) -> list[Review]:
        """Everything the model may read: all source reviews + non-cold target."""
        visible = list(self.dataset.source.reviews)
        visible.extend(
            r for r in self.dataset.target.reviews if r.user_id not in self._cold
        )
        return visible

    def visible_token_documents(self) -> list[list[str]]:
        """Per-review token lists — the embedding-training corpus."""
        return self._token_docs

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_reviews(self, reviews: Sequence[str]) -> np.ndarray:
        """Concatenate ``reviews`` with separators and encode to ``doc_len`` ids."""
        tokens = build_document(reviews, max_tokens=self.doc_len)
        return self.vocab.encode(tokens, length=self.doc_len)

    def user_source_doc(self, user_id: str) -> np.ndarray:
        """Encoded source-domain document (available for every user)."""
        if user_id not in self._user_source_cache:
            reviews = [
                self._review_text(r)
                for r in self.dataset.source.reviews_of_user(user_id)
            ]
            self._user_source_cache[user_id] = self.encode_reviews(reviews)
        return self._user_source_cache[user_id]

    def user_target_doc(self, user_id: str) -> np.ndarray:
        """Real target-domain document — training users only."""
        if user_id in self._cold:
            raise KeyError(
                f"user {user_id!r} is cold-start: its target reviews are hidden"
            )
        if user_id not in self._user_target_cache:
            reviews = [
                self._review_text(r)
                for r in self.dataset.target.reviews_of_user(user_id)
            ]
            self._user_target_cache[user_id] = self.encode_reviews(reviews)
        return self._user_target_cache[user_id]

    def item_doc(self, item_id: str) -> np.ndarray:
        """Encoded item document from visible target-domain reviews."""
        if item_id not in self._item_cache:
            reviews = [
                self._review_text(r)
                for r in self.dataset.target.reviews_of_item(item_id)
                if r.user_id not in self._cold
            ]
            self._item_cache[item_id] = self.encode_reviews(reviews)
        return self._item_cache[item_id]


def iter_batches(
    interactions: Sequence[Review],
    batch_size: int,
    rng: np.random.Generator,
    shuffle: bool = True,
) -> Iterator[list[Review]]:
    """Yield mini-batches of interactions, reshuffled each pass."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    order = np.arange(len(interactions))
    if shuffle:
        rng.shuffle(order)
    for start in range(0, len(order), batch_size):
        yield [interactions[i] for i in order[start : start + batch_size]]
