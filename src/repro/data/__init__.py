"""``repro.data`` — review records, synthetic corpora, splits, and batching."""

from .batching import DocumentMatrices, DocumentStore, iter_batches
from .io import load_cross_domain_jsonl, load_domain_jsonl, save_domain_jsonl
from .records import RATING_LEVELS, CrossDomainDataset, DomainData, Review
from .split import ColdStartSplit, cold_start_split
from .stats import DomainStats, cross_domain_stats, domain_stats, format_stats
from .synthetic import (
    DATASET_PROFILES,
    DOMAINS,
    TOPICS,
    GeneratorConfig,
    generate_domain_pair,
    generate_scenario,
    scale_target_catalog,
)

__all__ = [
    "Review",
    "DomainData",
    "CrossDomainDataset",
    "RATING_LEVELS",
    "ColdStartSplit",
    "cold_start_split",
    "GeneratorConfig",
    "DATASET_PROFILES",
    "DOMAINS",
    "TOPICS",
    "generate_scenario",
    "generate_domain_pair",
    "scale_target_catalog",
    "DocumentMatrices",
    "DocumentStore",
    "iter_batches",
    "load_domain_jsonl",
    "save_domain_jsonl",
    "load_cross_domain_jsonl",
    "DomainStats",
    "domain_stats",
    "cross_domain_stats",
    "format_stats",
]
