"""Dataset persistence: JSON-lines import/export.

The paper evaluates on the public Amazon Review and Douban dumps, which are
distributed as JSON-lines with (at least) ``reviewerID``, ``asin``,
``overall``, ``summary`` and ``reviewText`` fields. This module reads that
format (and writes a compatible one), so the reproduction runs unchanged on
the real data when it is available — swap ``generate_scenario`` for two
:func:`load_domain_jsonl` calls.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Iterable

from ..atomicio import atomic_write_bytes
from ..obs import emit_event
from .records import CrossDomainDataset, DomainData, Review

__all__ = ["load_domain_jsonl", "save_domain_jsonl", "load_cross_domain_jsonl"]

#: Default field mapping: ours -> Amazon Review dump names.
AMAZON_FIELDS = {
    "user_id": "reviewerID",
    "item_id": "asin",
    "rating": "overall",
    "summary": "summary",
    "text": "reviewText",
}


def load_domain_jsonl(
    path: str | os.PathLike,
    name: str,
    fields: dict[str, str] | None = None,
    drop_empty_reviews: bool = True,
    max_bad_records: int = 0,
) -> DomainData:
    """Load one domain from a JSON-lines file.

    Parameters
    ----------
    path:
        File with one JSON object per line.
    name:
        Domain name (e.g. ``"books"``).
    fields:
        Mapping from our field names (``user_id``, ``item_id``, ``rating``,
        ``summary``, ``text``) to the file's key names. Defaults to the
        Amazon Review dump's keys.
    drop_empty_reviews:
        Skip records without a summary and without a review body — the
        paper's preprocessing ("we removed the records that do not include
        reviews", §5.2).
    max_bad_records:
        Error budget for malformed input. Lines that are invalid JSON, not
        a JSON object, missing the user/item/rating fields, or carrying a
        non-numeric rating are *skipped* — each reported with ``path:line``
        context — as long as at most this many occur; one more aborts the
        load with :class:`ValueError`. The default ``0`` keeps the strict
        behaviour (the first bad line aborts) but with a diagnostic that
        names the line and the problem instead of a bare ``KeyError``.
    """
    mapping = dict(AMAZON_FIELDS)
    if fields:
        mapping.update(fields)
    reviews: list[Review] = []
    bad: list[str] = []

    def record_bad(line_number: int, reason: str) -> None:
        message = f"{path}:{line_number}: {reason}"
        bad.append(message)
        if len(bad) > max_bad_records:
            raise ValueError(
                f"{message} (bad record {len(bad)} exceeds "
                f"max_bad_records={max_bad_records})"
            )

    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                record_bad(line_number, "invalid JSON")
                continue
            if not isinstance(record, dict):
                record_bad(line_number, "not a JSON object")
                continue
            summary = str(record.get(mapping["summary"], "") or "")
            text = str(record.get(mapping["text"], "") or "")
            if drop_empty_reviews and not summary and not text:
                continue
            missing = [
                mapping[key]
                for key in ("user_id", "item_id", "rating")
                if mapping[key] not in record
            ]
            if missing:
                record_bad(
                    line_number,
                    f"missing required field(s): {', '.join(missing)}",
                )
                continue
            try:
                rating = float(record[mapping["rating"]])
            except (TypeError, ValueError):
                record_bad(
                    line_number,
                    f"non-numeric rating {record[mapping['rating']]!r}",
                )
                continue
            reviews.append(
                Review(
                    user_id=str(record[mapping["user_id"]]),
                    item_id=str(record[mapping["item_id"]]),
                    rating=float(min(5.0, max(1.0, round(rating)))),
                    summary=summary or text,
                    text=text,
                )
            )
    if bad:
        shown = "; ".join(bad[:5]) + (" …" if len(bad) > 5 else "")
        warnings.warn(
            f"{path}: skipped {len(bad)} bad record(s): {shown}",
            RuntimeWarning,
            stacklevel=2,
        )
    emit_event(
        "dataset_load",
        path=str(path),
        domain=name,
        records=len(reviews),
        skipped=len(bad),
    )
    return DomainData(name, reviews)


def save_domain_jsonl(
    domain: DomainData,
    path: str | os.PathLike,
    fields: dict[str, str] | None = None,
) -> None:
    """Write a domain in the (Amazon-compatible) JSON-lines format.

    The file is written atomically (temp file + fsync + rename): a process
    killed mid-export never leaves a truncated dataset at ``path``.
    """
    mapping = dict(AMAZON_FIELDS)
    if fields:
        mapping.update(fields)
    lines: list[str] = []
    for review in domain.reviews:
        record = {
            mapping["user_id"]: review.user_id,
            mapping["item_id"]: review.item_id,
            mapping["rating"]: review.rating,
            mapping["summary"]: review.summary,
            mapping["text"]: review.text,
        }
        lines.append(json.dumps(record) + "\n")
    atomic_write_bytes(path, "".join(lines).encode("utf-8"))
    emit_event(
        "dataset_save",
        path=str(path),
        domain=domain.name,
        records=len(domain.reviews),
    )


def load_cross_domain_jsonl(
    source_path: str | os.PathLike,
    target_path: str | os.PathLike,
    source_name: str,
    target_name: str,
    overlap_only: bool = False,
    fields: dict[str, str] | None = None,
) -> CrossDomainDataset:
    """Load a (source, target) scenario from two JSON-lines files.

    With ``overlap_only`` the dataset is restricted to overlapping users,
    matching the paper's preprocessing ("for each cross-domain scenario, we
    only keep users who have records in both domains").
    """
    source = load_domain_jsonl(source_path, source_name, fields=fields)
    target = load_domain_jsonl(target_path, target_name, fields=fields)
    if overlap_only:
        shared = source.users & target.users
        source = DomainData(source_name, [r for r in source.reviews if r.user_id in shared])
        target = DomainData(target_name, [r for r in target.reviews if r.user_id in shared])
    return CrossDomainDataset(source, target)
