"""Review records, per-domain datasets, and cross-domain containers.

``DomainData`` pre-builds the two dictionaries the paper's §4.1 complexity
analysis calls for:

1. ``by_user``   — user_id -> list of that user's reviews (item, rating, text)
2. ``like_minded`` — (item_id, rating) -> list of user_ids who gave that
   item that rating

With these, every data-retrieval step of Algorithm 1 is O(1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["Review", "DomainData", "CrossDomainDataset", "RATING_LEVELS"]

RATING_LEVELS = (1.0, 2.0, 3.0, 4.0, 5.0)


@dataclass(frozen=True)
class Review:
    """One user-item interaction: rating plus review text.

    ``summary`` is the short "review summary" field the paper trains on;
    ``text`` is the full review body used by the ``OmniMatch-ReviewText``
    ablation (Table 5).
    """

    user_id: str
    item_id: str
    rating: float
    summary: str
    text: str = ""

    def __post_init__(self) -> None:
        if self.rating not in RATING_LEVELS:
            raise ValueError(f"rating must be one of {RATING_LEVELS}, got {self.rating}")

    @property
    def rating_index(self) -> int:
        """Zero-based class index for the 5-way rating classifier."""
        return int(self.rating) - 1


class DomainData:
    """All reviews of one domain plus the O(1) lookup indexes."""

    def __init__(self, name: str, reviews: Iterable[Review]) -> None:
        self.name = name
        self.reviews: list[Review] = list(reviews)
        self.by_user: dict[str, list[Review]] = {}
        self.by_item: dict[str, list[Review]] = {}
        self.like_minded: dict[tuple[str, float], list[str]] = {}
        for review in self.reviews:
            self.by_user.setdefault(review.user_id, []).append(review)
            self.by_item.setdefault(review.item_id, []).append(review)
            self.like_minded.setdefault((review.item_id, review.rating), []).append(
                review.user_id
            )

    # ------------------------------------------------------------------
    @property
    def users(self) -> set[str]:
        return set(self.by_user)

    @property
    def items(self) -> set[str]:
        return set(self.by_item)

    def __len__(self) -> int:
        return len(self.reviews)

    def reviews_of_user(self, user_id: str) -> list[Review]:
        """The user's purchase records in this domain (Algorithm 1, line 4)."""
        return self.by_user.get(user_id, [])

    def reviews_of_item(self, item_id: str) -> list[Review]:
        """All reviews written about ``item_id`` in this domain."""
        return self.by_item.get(item_id, [])

    def like_minded_users(self, item_id: str, rating: float) -> list[str]:
        """Users who rated ``item_id`` exactly ``rating`` (Algorithm 1, line 7)."""
        return self.like_minded.get((item_id, rating), [])

    def user_summaries(self, user_id: str) -> list[str]:
        """The user's review summaries, in insertion order."""
        return [r.summary for r in self.reviews_of_user(user_id)]

    def user_texts(self, user_id: str) -> list[str]:
        """The user's full review bodies (summary fallback when empty)."""
        return [r.text or r.summary for r in self.reviews_of_user(user_id)]

    def item_summaries(self, item_id: str) -> list[str]:
        """Summaries of all reviews about ``item_id``."""
        return [r.summary for r in self.reviews_of_item(item_id)]

    def density(self) -> float:
        """Interaction density |R| / (|U| * |I|) — a sparsity diagnostic."""
        denom = len(self.by_user) * len(self.by_item)
        return len(self.reviews) / denom if denom else 0.0


@dataclass
class CrossDomainDataset:
    """A (source domain, target domain) pair for one CDR scenario."""

    source: DomainData
    target: DomainData
    metadata: dict = field(default_factory=dict)

    @property
    def overlapping_users(self) -> set[str]:
        """U^o = U^s intersect U^t (paper §2)."""
        return self.source.users & self.target.users

    @property
    def scenario(self) -> str:
        return f"{self.source.name} -> {self.target.name}"

    def summary(self) -> dict:
        """Size card used by the experiment harness logs."""
        return {
            "scenario": self.scenario,
            "source_users": len(self.source.users),
            "target_users": len(self.target.users),
            "overlap_users": len(self.overlapping_users),
            "source_items": len(self.source.items),
            "target_items": len(self.target.items),
            "source_reviews": len(self.source),
            "target_reviews": len(self.target),
        }
