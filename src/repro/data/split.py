"""Cold-start evaluation protocol (paper §5.2).

Among overlapping users, 80 % are training users; the remaining 20 % are
cold-start users whose *target-domain* reviews are hidden from the model and
used only for evaluation — half as validation, half as test.

Table 4 additionally varies the *proportion of training users actually
used* (100 / 80 / 50 / 20 %); that is the ``train_fraction`` knob, applied
after the 80/20 cold-start split so the evaluation population never changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .records import CrossDomainDataset, Review

__all__ = ["ColdStartSplit", "cold_start_split"]


@dataclass(frozen=True)
class ColdStartSplit:
    """Partition of the overlapping users for one scenario."""

    train_users: tuple[str, ...]
    valid_users: tuple[str, ...]
    test_users: tuple[str, ...]

    @property
    def cold_users(self) -> tuple[str, ...]:
        return self.valid_users + self.test_users

    def eval_interactions(
        self, dataset: CrossDomainDataset, subset: str
    ) -> list[Review]:
        """Hidden target-domain reviews of the validation or test users."""
        if subset not in ("valid", "test"):
            raise ValueError("subset must be 'valid' or 'test'")
        users = self.valid_users if subset == "valid" else self.test_users
        out: list[Review] = []
        for user in users:
            out.extend(dataset.target.reviews_of_user(user))
        return out

    def train_interactions(self, dataset: CrossDomainDataset) -> list[Review]:
        """Target-domain reviews of the training users (the rating labels)."""
        out: list[Review] = []
        for user in self.train_users:
            out.extend(dataset.target.reviews_of_user(user))
        return out


def cold_start_split(
    dataset: CrossDomainDataset,
    cold_fraction: float = 0.2,
    train_fraction: float = 1.0,
    seed: int = 0,
) -> ColdStartSplit:
    """Split overlapping users into train / validation / test populations.

    Parameters
    ----------
    dataset:
        The cross-domain scenario.
    cold_fraction:
        Fraction of overlapping users held out as cold-start (paper: 0.2).
    train_fraction:
        Fraction of the *remaining* training users actually kept — the
        Table 4 sweep (1.0, 0.8, 0.5, 0.2).
    seed:
        Controls the shuffle; the same seed always yields the same split.
    """
    if not 0.0 < cold_fraction < 1.0:
        raise ValueError("cold_fraction must be in (0, 1)")
    if not 0.0 < train_fraction <= 1.0:
        raise ValueError("train_fraction must be in (0, 1]")

    overlap = sorted(dataset.overlapping_users)
    if len(overlap) < 5:
        raise ValueError(f"too few overlapping users ({len(overlap)}) to split")

    rng = np.random.default_rng(seed)
    order = rng.permutation(len(overlap))

    num_cold = max(2, int(round(cold_fraction * len(overlap))))
    cold = [overlap[i] for i in order[:num_cold]]
    train = [overlap[i] for i in order[num_cold:]]

    keep = max(1, int(round(train_fraction * len(train))))
    train = train[:keep]

    half = len(cold) // 2
    return ColdStartSplit(
        train_users=tuple(train),
        valid_users=tuple(cold[:half]),
        test_users=tuple(cold[half:]),
    )
