"""Method registry: name -> factory producing a fitted predictor.

Every method — the six baselines and OmniMatch — is exposed behind one
uniform callable so the experiment protocol and the benchmark harness can
sweep over methods by name, exactly like the paper's tables do.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..baselines import (
    CMF,
    EMCDR,
    NGCF,
    PTUPCDR,
    DeepCoNN,
    GlobalMean,
    HeroGraph,
    ItemMean,
    LightGCN,
)
from ..core import ColdStartPredictor, OmniMatchConfig, OmniMatchTrainer
from ..data.records import CrossDomainDataset, Review
from ..data.split import ColdStartSplit

__all__ = ["METHODS", "PAPER_METHODS", "make_predictor", "FittedMethod"]


class FittedMethod:
    """A fitted method exposing ``predict_interactions``."""

    def __init__(self, name: str, predict_fn: Callable[[list[Review]], np.ndarray]) -> None:
        self.name = name
        self._predict_fn = predict_fn

    def predict_interactions(self, interactions: list[Review]) -> np.ndarray:
        """Predict ratings for the given held-out interactions."""
        return self._predict_fn(interactions)


def _fit_omnimatch(
    dataset: CrossDomainDataset,
    split: ColdStartSplit,
    seed: int,
    config: OmniMatchConfig | None = None,
    store=None,
) -> FittedMethod:
    if config is None:
        config = OmniMatchConfig(seed=seed)
    elif config.seed != seed:
        import dataclasses

        config = dataclasses.replace(config, seed=seed)
    trainer = OmniMatchTrainer(dataset, split, config, store=store)
    result = trainer.fit()
    predictor = ColdStartPredictor(result)
    return FittedMethod("OmniMatch", predictor.predict_interactions)


def _baseline_factory(cls, **kwargs):
    def fit(dataset: CrossDomainDataset, split: ColdStartSplit, seed: int,
            config=None, store=None):
        extra = dict(kwargs)
        model = cls(**extra)
        # Baselines take their seed through their own config objects where
        # applicable; the simple ones are deterministic given the split.
        if hasattr(model, "seed"):
            model.seed = seed
        if hasattr(model, "config") and hasattr(model.config, "seed"):
            import dataclasses

            model.config = dataclasses.replace(model.config, seed=seed)
        if hasattr(model, "mf_config"):
            import dataclasses

            model.mf_config = dataclasses.replace(model.mf_config, seed=seed)
            model.source_mf.config = model.mf_config
            model.target_mf.config = model.mf_config
        model.fit(dataset, split)
        return FittedMethod(model.name, model.predict_interactions)

    return fit


#: All registered methods. Values: fn(dataset, split, seed, config, store) -> FittedMethod
METHODS: dict[str, Callable] = {
    "OmniMatch": _fit_omnimatch,
    "CMF": _baseline_factory(CMF),
    "EMCDR": _baseline_factory(EMCDR),
    "PTUPCDR": _baseline_factory(PTUPCDR),
    "NGCF": _baseline_factory(NGCF),
    "LIGHTGCN": _baseline_factory(LightGCN),
    "HeroGraph": _baseline_factory(HeroGraph),
    "DeepCoNN": _baseline_factory(DeepCoNN),
    "global-mean": _baseline_factory(GlobalMean),
    "item-mean": _baseline_factory(ItemMean),
}

#: The methods that appear in the paper's Tables 2-3, in column order.
PAPER_METHODS: tuple[str, ...] = (
    "NGCF",
    "LIGHTGCN",
    "CMF",
    "EMCDR",
    "PTUPCDR",
    "HeroGraph",
    "OmniMatch",
)


def make_predictor(
    name: str,
    dataset: CrossDomainDataset,
    split: ColdStartSplit,
    seed: int = 0,
    config: OmniMatchConfig | None = None,
    store=None,
) -> FittedMethod:
    """Fit the named method and return its predictor.

    ``store`` (optional) is a pre-built :class:`~repro.data.batching.
    DocumentStore` for this exact (dataset, split); the parallel engine
    passes one reconstructed from shared memory so document-based methods
    skip re-encoding the corpus. Methods that do not read documents ignore
    it.
    """
    if name not in METHODS:
        raise KeyError(f"unknown method {name!r}; choose from {sorted(METHODS)}")
    return METHODS[name](dataset, split, seed, config, store)
