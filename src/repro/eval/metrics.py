"""Evaluation metrics: RMSE and MAE (paper Eq. 22-23)."""

from __future__ import annotations

import numpy as np

__all__ = ["rmse", "mae"]


def _validate(actual: np.ndarray, predicted: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    actual = np.asarray(actual, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if actual.shape != predicted.shape:
        raise ValueError(f"shape mismatch: {actual.shape} vs {predicted.shape}")
    if actual.size == 0:
        raise ValueError("cannot compute a metric over zero interactions")
    # A NaN/Inf silently poisons the whole average; fail loudly instead so a
    # diverged model (or corrupted ground truth) cannot report a NaN score.
    if not np.all(np.isfinite(actual)):
        raise ValueError("actual ratings contain non-finite values (NaN/Inf)")
    if not np.all(np.isfinite(predicted)):
        raise ValueError(
            "predictions contain non-finite values (NaN/Inf) — did the model diverge?"
        )
    return actual, predicted


def rmse(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Root mean squared error over the cold-start test set (Eq. 22)."""
    actual, predicted = _validate(actual, predicted)
    return float(np.sqrt(np.mean((actual - predicted) ** 2)))


def mae(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute error (Eq. 23)."""
    actual, predicted = _validate(actual, predicted)
    return float(np.mean(np.abs(actual - predicted)))
