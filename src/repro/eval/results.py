"""Result-table formatting: render experiment results like the paper's tables."""

from __future__ import annotations

import dataclasses
import json
import os

from ..atomicio import atomic_write_text
from .protocol import ExperimentResult

__all__ = [
    "format_table",
    "format_comparison",
    "improvement_over_best_baseline",
    "write_results_json",
]


def write_results_json(
    path: str | os.PathLike, results: list[ExperimentResult]
) -> None:
    """Persist experiment results as JSON, atomically.

    The whole payload is serialized before any byte reaches disk and the
    file lands via temp-file + fsync + rename, so an existing results file
    is never truncated by a crash (or an unserializable value) mid-write.
    """
    payload = {"results": [dataclasses.asdict(r) for r in results]}
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def format_table(results: list[ExperimentResult], metric: str = "RMSE") -> str:
    """Plain-text grid: rows = scenarios, columns = methods."""
    metric_attr = metric.lower()
    scenarios = list(dict.fromkeys(r.scenario for r in results))
    methods = list(dict.fromkeys(r.method for r in results))
    cell = {(r.scenario, r.method): getattr(r, metric_attr) for r in results}

    width = max(12, max(len(m) for m in methods) + 2)
    header = f"{'scenario':24s}" + "".join(f"{m:>{width}s}" for m in methods)
    lines = [header, "-" * len(header)]
    for scenario in scenarios:
        row = f"{scenario:24s}"
        for method in methods:
            value = cell.get((scenario, method))
            row += f"{value:>{width}.3f}" if value is not None else " " * width
        lines.append(row)
    return "\n".join(lines)


def improvement_over_best_baseline(
    results: list[ExperimentResult], ours: str = "OmniMatch", metric: str = "rmse"
) -> float:
    """Paper's Δ%: relative improvement of ``ours`` over the best baseline."""
    our = [r for r in results if r.method == ours]
    others = [r for r in results if r.method != ours]
    if not our or not others:
        raise ValueError("need both our method and at least one baseline")
    our_value = getattr(our[0], metric)
    best_other = min(getattr(r, metric) for r in others)
    return 100.0 * (best_other - our_value) / best_other


def format_comparison(results: list[ExperimentResult]) -> str:
    """Both metrics plus the paper's Δ% column for one scenario."""
    lines = [f"{'method':>12s} {'RMSE':>8s} {'MAE':>8s}"]
    for r in results:
        lines.append(f"{r.method:>12s} {r.rmse:>8.3f} {r.mae:>8.3f}")
    try:
        delta_rmse = improvement_over_best_baseline(results, metric="rmse")
        delta_mae = improvement_over_best_baseline(results, metric="mae")
        lines.append(f"{'Δ% (ours)':>12s} {delta_rmse:>7.1f}% {delta_mae:>7.1f}%")
    except ValueError:
        pass
    return "\n".join(lines)
