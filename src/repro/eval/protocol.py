"""Experiment protocol: one call = one cell of a paper table.

``run_experiment`` generates the scenario, applies the cold-start split,
fits a method, and scores RMSE/MAE on the held-out cold-start test users —
averaged over ``trials`` random trials, as in the paper (§5.4: "5 random
trials ... reported the average").

When a :class:`~repro.obs.TelemetrySink` is passed (or active via
:func:`~repro.obs.use_sink`), every trial emits a ``trial`` event tagged
with its span path and seed, and each experiment closes with an
``experiment`` summary event; the trainer's own per-epoch/per-batch events
flow into the same sink because the experiment installs it as the ambient
sink while methods fit.

Parallelism: ``run_experiment``, ``run_scenario_methods``, and
:func:`run_table` all take ``workers`` — with ``workers >= 2`` the work
fans out across a :class:`repro.parallel.ParallelExperimentEngine` worker
pool (trials for a single experiment; (method, scenario) cells for the
sweeps) with bit-identical results to serial mode: the same per-trial
seeds drive the same RNG streams, and the parent reassembles per-trial
metrics in trial order before averaging. Datasets and document matrices
travel to workers through shared memory, not pickles (see
``repro.parallel``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..core import OmniMatchConfig
from ..data import CrossDomainDataset, cold_start_split, generate_scenario
from ..data.synthetic import GeneratorConfig
from ..obs import SpanTracer, get_active_sink, use_sink
from .metrics import mae, rmse
from .registry import make_predictor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..data.batching import DocumentStore
    from ..data.split import ColdStartSplit
    from ..obs import TelemetrySink

__all__ = [
    "PAPER_SCENARIOS",
    "ExperimentResult",
    "run_experiment",
    "run_scenario_methods",
    "run_table",
]

#: The six cross-domain scenarios of the paper's Tables 2-3, in row order.
PAPER_SCENARIOS: tuple[tuple[str, str], ...] = (
    ("books", "movies"),
    ("movies", "books"),
    ("books", "music"),
    ("music", "books"),
    ("movies", "music"),
    ("music", "movies"),
)

_GENERATOR_FIELDS = frozenset(f.name for f in dataclass_fields(GeneratorConfig))


def _check_generator_overrides(overrides: dict) -> None:
    """Reject overrides that are not :class:`GeneratorConfig` fields.

    Misrouted split- or protocol-level options (``train_fraction``,
    ``config``, a typo'd knob) used to fall through ``**kwargs`` into
    :func:`generate_scenario` and fail deep inside ``dataclasses.replace``
    — or worse, be silently dropped. Fail here, by name, instead.
    """
    unknown = sorted(set(overrides) - _GENERATOR_FIELDS)
    if unknown:
        raise TypeError(
            f"unknown generator override(s): {', '.join(unknown)}; "
            f"valid fields: {', '.join(sorted(_GENERATOR_FIELDS))}"
        )


@dataclass
class ExperimentResult:
    """Averaged metrics for one (method, scenario) cell."""

    method: str
    dataset: str
    source: str
    target: str
    rmse: float
    mae: float
    trials: int
    rmse_per_trial: list[float] = field(default_factory=list)
    mae_per_trial: list[float] = field(default_factory=list)
    #: Cross-trial standard deviations — the paper averages over random
    #: trials, so the spread is part of faithfully reporting a cell.
    rmse_std: float = 0.0
    mae_std: float = 0.0
    fit_seconds: float = 0.0
    #: Full per-trial wall clock: fit + predict + score. ``fit_seconds``
    #: alone under-reports methods with expensive inference (the Table 6
    #: timing comparison needs the whole cell cost).
    wall_seconds: float = 0.0

    @property
    def scenario(self) -> str:
        return f"{self.source} -> {self.target}"

    def row(self, include_timing: bool = False) -> dict:
        """Render this cell as a flat table row.

        With ``include_timing`` the row additionally carries the trial
        spread and wall-clock columns (off by default so the paper-shaped
        tables stay paper-shaped).
        """
        row = {
            "method": self.method,
            "scenario": self.scenario,
            "RMSE": round(self.rmse, 3),
            "MAE": round(self.mae, 3),
        }
        if include_timing:
            row["RMSE_std"] = round(self.rmse_std, 3)
            row["MAE_std"] = round(self.mae_std, 3)
            row["fit_s"] = round(self.fit_seconds, 3)
            row["wall_s"] = round(self.wall_seconds, 3)
        return row


def _assemble_result(
    method: str,
    dataset_name: str,
    source: str,
    target: str,
    rmses: list[float],
    maes: list[float],
    fit_seconds: float,
    wall_seconds: float,
) -> ExperimentResult:
    """Fold per-trial metrics into a cell result.

    Serial runs and the parallel parent both come through here with the
    per-trial lists in trial order, so the float reductions are performed
    on the same values in the same order — bit-identical output.
    """
    return ExperimentResult(
        method=method,
        dataset=dataset_name,
        source=source,
        target=target,
        rmse=float(np.mean(rmses)),
        mae=float(np.mean(maes)),
        trials=len(rmses),
        rmse_per_trial=rmses,
        mae_per_trial=maes,
        rmse_std=float(np.std(rmses)),
        mae_std=float(np.std(maes)),
        fit_seconds=fit_seconds,
        wall_seconds=wall_seconds,
    )


def run_experiment(
    method: str,
    dataset_name: str,
    source: str,
    target: str,
    trials: int = 3,
    train_fraction: float = 1.0,
    seed: int = 0,
    config: OmniMatchConfig | None = None,
    dataset: CrossDomainDataset | None = None,
    telemetry: "TelemetrySink | None" = None,
    *,
    trial_offset: int = 0,
    emit_summary: bool = True,
    store_provider: "Callable[[CrossDomainDataset, ColdStartSplit, int], DocumentStore | None] | None" = None,
    workers: int = 0,
    telemetry_dir=None,
    **generator_overrides,
) -> ExperimentResult:
    """Evaluate ``method`` on one cross-domain scenario.

    Each trial re-splits the overlapping users (and reseeds the method) so
    the averages carry split variance, matching the paper's protocol. The
    generated world itself is held fixed across trials — it plays the role
    of the (fixed) real dataset.

    ``telemetry`` (optional) receives one ``trial`` event per trial and a
    closing ``experiment`` event; it is installed as the ambient sink for
    the duration of the run so nested emitters (trainer epochs/batches,
    checkpoint I/O) land in the same ``run.jsonl``. Without it, an already
    active ambient sink (if any) is used.

    Engine plumbing (rarely set by hand): ``trial_offset`` renumbers the
    trials ``trial_offset .. trial_offset + trials - 1`` so a worker
    executing a slice of a larger experiment derives the same per-trial
    seeds (``seed + trial``) and labels as the serial run; with
    ``emit_summary=False`` the closing ``experiment`` event is suppressed
    (the parent emits it after merging the slices). ``store_provider``
    maps ``(dataset, split, trial_seed)`` to a pre-built document store —
    or None to build locally. With ``workers >= 2`` the trials themselves
    fan out over a worker pool (``telemetry_dir`` then collects per-worker
    shards; a per-process ``telemetry`` sink cannot cross the process
    boundary and is rejected).
    """
    _check_generator_overrides(generator_overrides)
    if dataset is not None and generator_overrides:
        raise ValueError(
            "generator overrides have no effect when an explicit dataset "
            f"is passed: {', '.join(sorted(generator_overrides))}"
        )
    if workers >= 2:
        if telemetry is not None:
            raise ValueError(
                "a TelemetrySink cannot be shared with worker processes; "
                "pass telemetry_dir=... to collect per-worker shards"
            )
        from ..parallel.engine import ExperimentTask, run_tasks

        tasks = [
            ExperimentTask(
                index=trial,
                method=method,
                dataset_name=dataset_name,
                source=source,
                target=target,
                trials=1,
                trial_offset=trial_offset + trial,
                seed=seed,
                train_fraction=train_fraction,
                config=config,
                generator_overrides=tuple(sorted(generator_overrides.items())),
                emit_summary=False,
            )
            for trial in range(trials)
        ]
        partials = run_tasks(
            tasks, workers=workers, telemetry_dir=telemetry_dir, dataset=dataset
        )
        rmses = [value for part in partials for value in part.rmse_per_trial]
        maes = [value for part in partials for value in part.mae_per_trial]
        return _assemble_result(
            method, dataset_name, source, target, rmses, maes,
            fit_seconds=sum(part.fit_seconds for part in partials),
            wall_seconds=sum(part.wall_seconds for part in partials),
        )

    own_sink = None
    if telemetry is None and telemetry_dir is not None:
        from ..obs import TelemetrySink

        telemetry = own_sink = TelemetrySink(telemetry_dir)
    try:
        return _run_experiment_serial(
            method, dataset_name, source, target, trials, train_fraction,
            seed, config, dataset, telemetry, trial_offset, emit_summary,
            store_provider, generator_overrides,
        )
    finally:
        if own_sink is not None:
            own_sink.close()


def _run_experiment_serial(
    method, dataset_name, source, target, trials, train_fraction, seed,
    config, dataset, telemetry, trial_offset, emit_summary, store_provider,
    generator_overrides,
) -> ExperimentResult:
    with use_sink(telemetry):
        sink = telemetry if telemetry is not None else get_active_sink()
        tracer = SpanTracer()
        if dataset is None:
            dataset = generate_scenario(
                dataset_name, source, target, **generator_overrides
            )
        rmses: list[float] = []
        maes: list[float] = []
        fit_seconds = 0.0
        wall_seconds = 0.0
        scenario = f"{source} -> {target}"
        for index in range(trials):
            trial = trial_offset + index
            trial_seed = seed + trial
            split = cold_start_split(
                dataset, train_fraction=train_fraction, seed=trial_seed
            )
            store = (
                store_provider(dataset, split, trial_seed)
                if store_provider is not None
                else None
            )
            with tracer.span(f"trial[{trial}]"):
                wall_start = time.perf_counter()
                start = time.perf_counter()
                fitted = make_predictor(
                    method, dataset, split, seed=trial_seed, config=config,
                    store=store,
                )
                elapsed = time.perf_counter() - start
                fit_seconds += elapsed
                test = split.eval_interactions(dataset, "test")
                predicted = fitted.predict_interactions(test)
                actual = np.array([r.rating for r in test])
                rmses.append(rmse(actual, predicted))
                maes.append(mae(actual, predicted))
                wall_elapsed = time.perf_counter() - wall_start
                wall_seconds += wall_elapsed
            if sink is not None:
                sink.emit(
                    "trial",
                    method=method,
                    scenario=scenario,
                    trial=trial,
                    seed=trial_seed,
                    span=f"trial[{trial}]",
                    rmse=rmses[-1],
                    mae=maes[-1],
                    fit_seconds=elapsed,
                    wall_seconds=wall_elapsed,
                    test_interactions=len(test),
                )
        result = _assemble_result(
            method, dataset_name, source, target, rmses, maes,
            fit_seconds=fit_seconds, wall_seconds=wall_seconds,
        )
        if sink is not None:
            if emit_summary:
                sink.emit(
                    "experiment",
                    method=method,
                    scenario=scenario,
                    dataset=dataset_name,
                    rmse=result.rmse,
                    mae=result.mae,
                    rmse_std=result.rmse_std,
                    mae_std=result.mae_std,
                    trials=result.trials,
                    fit_seconds=fit_seconds,
                    wall_seconds=wall_seconds,
                    spans=tracer.totals(),
                )
            sink.flush()
        return result


def run_scenario_methods(
    methods: list[str],
    dataset_name: str,
    source: str,
    target: str,
    trials: int = 3,
    seed: int = 0,
    telemetry: "TelemetrySink | None" = None,
    *,
    train_fraction: float = 1.0,
    config: OmniMatchConfig | None = None,
    workers: int = 0,
    telemetry_dir=None,
    **generator_overrides,
) -> list[ExperimentResult]:
    """Evaluate several methods on one scenario, sharing the generated world.

    Split-level options are routed explicitly: ``train_fraction`` goes to
    the cold-start split inside :func:`run_experiment`, ``config`` to the
    method, and only genuine :class:`GeneratorConfig` fields may appear in
    ``**generator_overrides`` — anything else raises ``TypeError`` instead
    of being misapplied to the generator. With ``workers >= 2`` the method
    cells fan out over the parallel engine (one shared-memory copy of the
    world, bit-identical results).
    """
    _check_generator_overrides(generator_overrides)
    if workers >= 2:
        return run_table(
            methods,
            dataset_name,
            scenarios=[(source, target)],
            trials=trials,
            seed=seed,
            train_fraction=train_fraction,
            config=config,
            workers=workers,
            telemetry_dir=telemetry_dir,
            **generator_overrides,
        )
    own_sink = None
    if telemetry is None and telemetry_dir is not None:
        from ..obs import TelemetrySink

        telemetry = own_sink = TelemetrySink(telemetry_dir)
    dataset = generate_scenario(dataset_name, source, target, **generator_overrides)
    try:
        return [
            run_experiment(
                method, dataset_name, source, target,
                trials=trials, seed=seed, dataset=dataset,
                train_fraction=train_fraction, config=config, telemetry=telemetry,
            )
            for method in methods
        ]
    finally:
        if own_sink is not None:
            own_sink.close()


def run_table(
    methods: list[str],
    dataset_name: str,
    scenarios: "list[tuple[str, str]] | None" = None,
    *,
    trials: int = 3,
    seed: int = 0,
    train_fraction: float = 1.0,
    config: OmniMatchConfig | None = None,
    workers: int = 0,
    telemetry_dir=None,
    max_task_retries: int = 2,
    start_method: str | None = None,
    share_documents: bool = True,
    **generator_overrides,
) -> list[ExperimentResult]:
    """Evaluate a full methods × scenarios table through the engine.

    Returns one :class:`ExperimentResult` per (scenario, method) cell, in
    row-major order (scenarios outer, methods inner). Each generated world
    is built exactly once by the parent and shared by every cell — through
    shared memory when ``workers >= 2``, in-process otherwise — so even
    the inline mode is faster than running the cells independently.
    """
    _check_generator_overrides(generator_overrides)
    from ..parallel.engine import ExperimentTask, run_tasks

    if scenarios is None:
        scenarios = list(PAPER_SCENARIOS)
    overrides = tuple(sorted(generator_overrides.items()))
    tasks = [
        ExperimentTask(
            index=index,
            method=method,
            dataset_name=dataset_name,
            source=source,
            target=target,
            trials=trials,
            trial_offset=0,
            seed=seed,
            train_fraction=train_fraction,
            config=config,
            generator_overrides=overrides,
            emit_summary=True,
        )
        for index, (source, target, method) in enumerate(
            (source, target, method)
            for source, target in scenarios
            for method in methods
        )
    ]
    return run_tasks(
        tasks,
        workers=workers,
        telemetry_dir=telemetry_dir,
        max_task_retries=max_task_retries,
        start_method=start_method,
        share_documents=share_documents,
    )
