"""Experiment protocol: one call = one cell of a paper table.

``run_experiment`` generates the scenario, applies the cold-start split,
fits a method, and scores RMSE/MAE on the held-out cold-start test users —
averaged over ``trials`` random trials, as in the paper (§5.4: "5 random
trials ... reported the average").

When a :class:`~repro.obs.TelemetrySink` is passed (or active via
:func:`~repro.obs.use_sink`), every trial emits a ``trial`` event tagged
with its span path and seed, and each experiment closes with an
``experiment`` summary event; the trainer's own per-epoch/per-batch events
flow into the same sink because the experiment installs it as the ambient
sink while methods fit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..core import OmniMatchConfig
from ..data import CrossDomainDataset, cold_start_split, generate_scenario
from ..obs import SpanTracer, get_active_sink, use_sink
from .metrics import mae, rmse
from .registry import make_predictor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import TelemetrySink

__all__ = ["ExperimentResult", "run_experiment", "run_scenario_methods"]


@dataclass
class ExperimentResult:
    """Averaged metrics for one (method, scenario) cell."""

    method: str
    dataset: str
    source: str
    target: str
    rmse: float
    mae: float
    trials: int
    rmse_per_trial: list[float] = field(default_factory=list)
    mae_per_trial: list[float] = field(default_factory=list)
    fit_seconds: float = 0.0

    @property
    def scenario(self) -> str:
        return f"{self.source} -> {self.target}"

    def row(self) -> dict:
        """Render this cell as a flat table row."""
        return {
            "method": self.method,
            "scenario": self.scenario,
            "RMSE": round(self.rmse, 3),
            "MAE": round(self.mae, 3),
        }


def run_experiment(
    method: str,
    dataset_name: str,
    source: str,
    target: str,
    trials: int = 3,
    train_fraction: float = 1.0,
    seed: int = 0,
    config: OmniMatchConfig | None = None,
    dataset: CrossDomainDataset | None = None,
    telemetry: "TelemetrySink | None" = None,
    **generator_overrides,
) -> ExperimentResult:
    """Evaluate ``method`` on one cross-domain scenario.

    Each trial re-splits the overlapping users (and reseeds the method) so
    the averages carry split variance, matching the paper's protocol. The
    generated world itself is held fixed across trials — it plays the role
    of the (fixed) real dataset.

    ``telemetry`` (optional) receives one ``trial`` event per trial and a
    closing ``experiment`` event; it is installed as the ambient sink for
    the duration of the run so nested emitters (trainer epochs/batches,
    checkpoint I/O) land in the same ``run.jsonl``. Without it, an already
    active ambient sink (if any) is used.
    """
    with use_sink(telemetry):
        sink = telemetry if telemetry is not None else get_active_sink()
        tracer = SpanTracer()
        if dataset is None:
            dataset = generate_scenario(
                dataset_name, source, target, **generator_overrides
            )
        rmses: list[float] = []
        maes: list[float] = []
        fit_seconds = 0.0
        scenario = f"{source} -> {target}"
        for trial in range(trials):
            trial_seed = seed + trial
            split = cold_start_split(
                dataset, train_fraction=train_fraction, seed=trial_seed
            )
            with tracer.span(f"trial[{trial}]"):
                start = time.perf_counter()
                fitted = make_predictor(
                    method, dataset, split, seed=trial_seed, config=config
                )
                elapsed = time.perf_counter() - start
                fit_seconds += elapsed
                test = split.eval_interactions(dataset, "test")
                predicted = fitted.predict_interactions(test)
                actual = np.array([r.rating for r in test])
                rmses.append(rmse(actual, predicted))
                maes.append(mae(actual, predicted))
            if sink is not None:
                sink.emit(
                    "trial",
                    method=method,
                    scenario=scenario,
                    trial=trial,
                    seed=trial_seed,
                    span=f"trial[{trial}]",
                    rmse=rmses[-1],
                    mae=maes[-1],
                    fit_seconds=elapsed,
                    test_interactions=len(test),
                )
        result = ExperimentResult(
            method=method,
            dataset=dataset_name,
            source=source,
            target=target,
            rmse=float(np.mean(rmses)),
            mae=float(np.mean(maes)),
            trials=trials,
            rmse_per_trial=rmses,
            mae_per_trial=maes,
            fit_seconds=fit_seconds,
        )
        if sink is not None:
            sink.emit(
                "experiment",
                method=method,
                scenario=scenario,
                dataset=dataset_name,
                rmse=result.rmse,
                mae=result.mae,
                trials=trials,
                fit_seconds=fit_seconds,
                spans=tracer.totals(),
            )
            sink.flush()
        return result


def run_scenario_methods(
    methods: list[str],
    dataset_name: str,
    source: str,
    target: str,
    trials: int = 3,
    seed: int = 0,
    telemetry: "TelemetrySink | None" = None,
    **kwargs,
) -> list[ExperimentResult]:
    """Evaluate several methods on one scenario, sharing the generated world."""
    dataset = generate_scenario(
        dataset_name, source, target,
        **{k: v for k, v in kwargs.items() if k not in ("config",)},
    )
    return [
        run_experiment(
            method, dataset_name, source, target,
            trials=trials, seed=seed, dataset=dataset,
            config=kwargs.get("config"), telemetry=telemetry,
        )
        for method in methods
    ]
