"""``repro.eval`` — metrics, experiment protocol, method registry, tables."""

from .metrics import mae, rmse
from .protocol import (
    PAPER_SCENARIOS,
    ExperimentResult,
    run_experiment,
    run_scenario_methods,
    run_table,
)
from .registry import METHODS, PAPER_METHODS, FittedMethod, make_predictor
from .results import (
    format_comparison,
    format_table,
    improvement_over_best_baseline,
    write_results_json,
)
from .significance import BootstrapResult, paired_bootstrap

__all__ = [
    "rmse",
    "mae",
    "ExperimentResult",
    "PAPER_SCENARIOS",
    "run_experiment",
    "run_scenario_methods",
    "run_table",
    "METHODS",
    "PAPER_METHODS",
    "FittedMethod",
    "make_predictor",
    "format_table",
    "format_comparison",
    "improvement_over_best_baseline",
    "write_results_json",
    "BootstrapResult",
    "paired_bootstrap",
]
