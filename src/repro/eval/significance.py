"""Statistical significance: paired bootstrap for method comparisons.

The paper reports averages over five random trials; when two methods are
close, a paired bootstrap over the *same* test interactions answers whether
the difference is real. ``paired_bootstrap`` resamples test interactions
with replacement and reports how often method A beats method B on the
resampled metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metrics import mae, rmse

__all__ = ["BootstrapResult", "paired_bootstrap"]

_METRICS = {"rmse": rmse, "mae": mae}


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of a paired bootstrap comparison (A vs B).

    ``win_rate_a`` counts a resample where the two metrics tie as half a
    win for each side, so two identical methods read 0.5 rather than 0.0
    — ties are the expected outcome for near-identical methods, exactly
    the case significance testing exists for. ``ties`` reports how many
    resamples tied so callers can tell "A and B trade blows" apart from
    "A and B are the same method".
    """

    metric: str
    observed_a: float
    observed_b: float
    win_rate_a: float  # fraction of resamples where A beats B (ties count 0.5)
    delta_mean: float  # mean of (B - A) over resamples; positive favours A
    delta_ci_low: float
    delta_ci_high: float
    num_samples: int
    ties: int = 0  # resamples where the two metrics were exactly equal

    @property
    def significant_at_95(self) -> bool:
        """True when the 95 % CI of (B - A) excludes zero."""
        return self.delta_ci_low > 0 or self.delta_ci_high < 0


def paired_bootstrap(
    actual: np.ndarray,
    predicted_a: np.ndarray,
    predicted_b: np.ndarray,
    metric: str = "rmse",
    num_samples: int = 2000,
    seed: int = 0,
) -> BootstrapResult:
    """Paired bootstrap comparison of two prediction vectors.

    Both prediction vectors must be aligned to the same ``actual`` ratings
    (same test interactions, in the same order) — that pairing is what
    cancels shared variance and makes the test powerful.
    """
    actual = np.asarray(actual, dtype=np.float64)
    predicted_a = np.asarray(predicted_a, dtype=np.float64)
    predicted_b = np.asarray(predicted_b, dtype=np.float64)
    if not (actual.shape == predicted_a.shape == predicted_b.shape):
        raise ValueError("actual and both prediction vectors must be aligned")
    if actual.size == 0:
        raise ValueError("cannot bootstrap zero interactions")
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {sorted(_METRICS)}")
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")

    metric_fn = _METRICS[metric]
    rng = np.random.default_rng(seed)
    n = actual.size
    deltas = np.empty(num_samples)
    wins = 0.0
    ties = 0
    for sample in range(num_samples):
        index = rng.integers(0, n, size=n)
        score_a = metric_fn(actual[index], predicted_a[index])
        score_b = metric_fn(actual[index], predicted_b[index])
        deltas[sample] = score_b - score_a
        if score_a < score_b:
            wins += 1.0
        elif score_a == score_b:
            # A tie is evidence for neither side; counting it as a loss for
            # A would bias win_rate_a toward 0 for near-identical methods.
            wins += 0.5
            ties += 1
    low, high = np.percentile(deltas, [2.5, 97.5])
    return BootstrapResult(
        metric=metric,
        observed_a=metric_fn(actual, predicted_a),
        observed_b=metric_fn(actual, predicted_b),
        win_rate_a=wins / num_samples,
        delta_mean=float(deltas.mean()),
        delta_ci_low=float(low),
        delta_ci_high=float(high),
        num_samples=num_samples,
        ties=ties,
    )
