"""Offline word embeddings: PPMI co-occurrence + truncated SVD.

Substitution note (see DESIGN.md §2): the paper feeds pretrained 300-d
fastText vectors to the CNN. With no network access, we train embeddings on
the corpus itself using the classic count-based pipeline — positive
pointwise mutual information over a symmetric context window, factorized
with a truncated SVD (Levy & Goldberg 2014 showed this is closely related
to skip-gram with negative sampling). Like fastText in the paper, the
resulting table is *frozen* during model training.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import svds

from .vocab import Vocabulary

__all__ = ["train_ppmi_svd_embeddings", "random_embeddings"]


def _cooccurrence_counts(
    documents: Iterable[Sequence[str]],
    vocab: Vocabulary,
    window: int,
) -> coo_matrix:
    """Symmetric within-window co-occurrence counts over the corpus."""
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for doc in documents:
        ids = [vocab.index_of(tok) for tok in doc]
        for center, wid in enumerate(ids):
            if wid == vocab.pad_index:
                continue
            lo = max(0, center - window)
            for other in ids[lo:center]:
                if other == vocab.pad_index:
                    continue
                rows.append(wid)
                cols.append(other)
                vals.append(1.0)
                rows.append(other)
                cols.append(wid)
                vals.append(1.0)
    size = len(vocab)
    return coo_matrix((vals, (rows, cols)), shape=(size, size))


def train_ppmi_svd_embeddings(
    documents: Iterable[Sequence[str]],
    vocab: Vocabulary,
    dim: int = 64,
    window: int = 4,
    seed: int = 0,
) -> np.ndarray:
    """Train a frozen embedding table of shape ``(len(vocab), dim)``.

    Rows for PAD stay zero; tokens never seen in the corpus (including UNK)
    get small deterministic random vectors so they are distinguishable from
    padding without carrying spurious semantics.
    """
    if dim < 1:
        raise ValueError("embedding dim must be >= 1")
    counts = _cooccurrence_counts(documents, vocab, window).tocsr()
    total = counts.sum()
    if total == 0:
        return random_embeddings(len(vocab), dim, seed=seed, pad_index=vocab.pad_index)

    row_sums = np.asarray(counts.sum(axis=1)).ravel()
    col_sums = np.asarray(counts.sum(axis=0)).ravel()

    coo = counts.tocoo()
    with np.errstate(divide="ignore"):
        pmi = np.log(coo.data * total / (row_sums[coo.row] * col_sums[coo.col]))
    positive = pmi > 0
    ppmi = coo_matrix(
        (pmi[positive], (coo.row[positive], coo.col[positive])), shape=counts.shape
    )

    k = min(dim, min(ppmi.shape) - 1)
    rng = np.random.default_rng(seed)
    if min(ppmi.shape) <= 2048:
        # Small vocabulary: dense SVD is cheap and — unlike ARPACK — exactly
        # deterministic across runs and thread counts.
        u, s, _ = np.linalg.svd(ppmi.toarray(), full_matrices=False)
        u, s = u[:, :k], s[:k]
    else:
        v0 = rng.normal(size=min(ppmi.shape))
        u, s, _ = svds(ppmi.tocsc().astype(np.float64), k=k, v0=v0)
        # svds returns ascending singular values; flip to descending.
        order = np.argsort(s)[::-1]
        u, s = u[:, order], s[order]
    # Fix the sign convention so the factorization itself is canonical.
    signs = np.sign(u[np.argmax(np.abs(u), axis=0), np.arange(u.shape[1])])
    signs[signs == 0] = 1.0
    table = (u * signs) * np.sqrt(s)

    if k < dim:  # tiny vocabularies: pad with zeros to the requested dim
        table = np.concatenate([table, np.zeros((table.shape[0], dim - k))], axis=1)

    # Unseen tokens get small random vectors; PAD stays exactly zero.
    seen = np.asarray(counts.sum(axis=1)).ravel() > 0
    unseen = ~seen
    unseen[vocab.pad_index] = False
    table[unseen] = rng.normal(0.0, 0.01, size=(int(unseen.sum()), dim))
    table[vocab.pad_index] = 0.0
    return table


def random_embeddings(
    vocab_size: int,
    dim: int,
    seed: int = 0,
    pad_index: int | None = 0,
) -> np.ndarray:
    """Deterministic random table — the control condition for ablations."""
    rng = np.random.default_rng(seed)
    table = rng.normal(0.0, 0.1, size=(vocab_size, dim))
    if pad_index is not None:
        table[pad_index] = 0.0
    return table
