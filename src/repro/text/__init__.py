"""``repro.text`` — tokenization, vocabularies, and offline word embeddings."""

from .embeddings import random_embeddings, train_ppmi_svd_embeddings
from .tokenize import REVIEW_SEPARATOR, build_document, tokenize
from .vocab import PAD_TOKEN, UNK_TOKEN, Vocabulary

__all__ = [
    "tokenize",
    "build_document",
    "REVIEW_SEPARATOR",
    "Vocabulary",
    "PAD_TOKEN",
    "UNK_TOKEN",
    "train_ppmi_svd_embeddings",
    "random_embeddings",
]
