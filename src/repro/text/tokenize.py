"""Tokenization and review-document construction.

The paper (§5.2) lowercases the "review summary" field, strips punctuation,
and concatenates a user's (or item's) reviews into a single document that is
then truncated to a fixed token budget. ``<sp>`` separators appear between
reviews in the paper's case study; we reproduce that convention.
"""

from __future__ import annotations

import re
from typing import Iterable

__all__ = ["tokenize", "build_document", "REVIEW_SEPARATOR"]

REVIEW_SEPARATOR = "<sp>"

_PUNCTUATION = re.compile(r"[^\w\s<>]")
_WHITESPACE = re.compile(r"\s+")


def tokenize(text: str) -> list[str]:
    """Lowercase, strip punctuation, and split on whitespace.

    The ``<sp>`` separator token survives tokenization so review boundaries
    remain visible to the feature extractor.
    """
    lowered = text.lower()
    cleaned = _PUNCTUATION.sub(" ", lowered)
    return [tok for tok in _WHITESPACE.split(cleaned) if tok]


def build_document(reviews: Iterable[str], max_tokens: int | None = None) -> list[str]:
    """Concatenate reviews into one token document (paper Eq. 1–2).

    Reviews are joined with the ``<sp>`` separator token; the result is
    truncated to ``max_tokens`` when given.
    """
    tokens: list[str] = []
    for index, review in enumerate(reviews):
        if index > 0:
            tokens.append(REVIEW_SEPARATOR)
        tokens.extend(tokenize(review))
        if max_tokens is not None and len(tokens) >= max_tokens:
            return tokens[:max_tokens]
    return tokens
