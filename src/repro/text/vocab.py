"""Vocabulary: token <-> integer index mapping with PAD/UNK handling."""

from __future__ import annotations

from collections import Counter
from typing import Iterable

import numpy as np

__all__ = ["Vocabulary", "PAD_TOKEN", "UNK_TOKEN"]

PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"


class Vocabulary:
    """Frequency-ordered vocabulary built from token streams.

    Index 0 is always ``<pad>`` and index 1 is always ``<unk>``; real tokens
    start at index 2. Construction is deterministic: ties in frequency are
    broken alphabetically.
    """

    def __init__(self, tokens: list[str]) -> None:
        if tokens[:2] != [PAD_TOKEN, UNK_TOKEN]:
            raise ValueError("vocabulary must start with PAD and UNK")
        self._tokens = list(tokens)
        self._index = {tok: i for i, tok in enumerate(tokens)}
        if len(self._index) != len(self._tokens):
            raise ValueError("duplicate tokens in vocabulary")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        documents: Iterable[Iterable[str]],
        max_size: int | None = None,
        min_count: int = 1,
        specials: Iterable[str] = (),
    ) -> "Vocabulary":
        """Build from an iterable of token lists, keeping the most frequent.

        ``specials`` are always included (right after PAD/UNK) regardless of
        corpus frequency — e.g. the ``<sp>`` review separator.
        """
        counts: Counter[str] = Counter()
        for doc in documents:
            counts.update(doc)
        specials = [tok for tok in specials if tok not in (PAD_TOKEN, UNK_TOKEN)]
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        kept = [tok for tok, cnt in ranked if cnt >= min_count and tok not in specials]
        if max_size is not None:
            kept = kept[: max(0, max_size - 2 - len(specials))]
        return cls([PAD_TOKEN, UNK_TOKEN] + specials + kept)

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._index

    @property
    def pad_index(self) -> int:
        return 0

    @property
    def unk_index(self) -> int:
        return 1

    def index_of(self, token: str) -> int:
        """Index of ``token`` (UNK index when out of vocabulary)."""
        return self._index.get(token, self.unk_index)

    def token_at(self, index: int) -> str:
        """Token at ``index``."""
        return self._tokens[index]

    def encode(self, tokens: Iterable[str], length: int | None = None) -> np.ndarray:
        """Map tokens to indices; pad or truncate to ``length`` when given."""
        ids = [self.index_of(tok) for tok in tokens]
        if length is not None:
            if len(ids) >= length:
                ids = ids[:length]
            else:
                ids = ids + [self.pad_index] * (length - len(ids))
        return np.asarray(ids, dtype=np.int64)

    def decode(self, indices: Iterable[int], skip_pad: bool = True) -> list[str]:
        """Map indices back to tokens, skipping padding by default.

        Out-of-range indices — negative or beyond the vocabulary, e.g. from
        a corrupted checkpointed batch — decode to the unk token, mirroring
        :meth:`index_of`'s fallback for unknown tokens, instead of raising
        ``IndexError`` (or silently decoding ``-1`` as the last token).
        """
        size = len(self._tokens)
        out = []
        for index in indices:
            index = int(index)
            if skip_pad and index == self.pad_index:
                continue
            if not 0 <= index < size:
                index = self.unk_index
            out.append(self._tokens[index])
        return out

    @property
    def tokens(self) -> list[str]:
        return list(self._tokens)
