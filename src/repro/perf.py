"""Per-phase timing hooks and throughput reporting.

The trainer wraps each phase of its hot loop — batch assembly, forward,
backward, optimizer step — in :meth:`PerfRegistry.section`, accumulating
wall-clock per phase. The throughput benchmark
(``benchmarks/test_throughput.py``) reads these to decompose epoch time and
writes ``BENCH_throughput.json`` so every future PR has a perf trajectory
to regress against; the Table 6 reproduction keeps using the per-epoch
totals the same registry feeds.

The registry costs two ``perf_counter`` calls per section — negligible next
to a single batch's GEMMs — so it is always on in the trainer.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PerfRegistry", "throughput", "write_report"]


class PerfRegistry:
    """Accumulates ``{section name: (seconds, calls)}`` wall-clock totals."""

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (re-entrant per name)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
            self._calls[name] = self._calls.get(name, 0) + 1

    def record(self, name: str, seconds: float) -> None:
        """Add an externally-measured duration under ``name``."""
        self._seconds[name] = self._seconds.get(name, 0.0) + float(seconds)
        self._calls[name] = self._calls.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 when never hit)."""
        return self._seconds.get(name, 0.0)

    def summary(self) -> dict[str, dict[str, float]]:
        """``{name: {"seconds": ..., "calls": ...}}`` for every section."""
        return {
            name: {"seconds": self._seconds[name], "calls": self._calls[name]}
            for name in self._seconds
        }

    def reset(self) -> None:
        """Clear all accumulated totals."""
        self._seconds.clear()
        self._calls.clear()


def throughput(samples: int, seconds: float) -> float:
    """Samples per second, 0.0 when no time elapsed."""
    return samples / seconds if seconds > 0 else 0.0


def write_report(path: str | os.PathLike, payload: dict) -> None:
    """Write a benchmark payload as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
