"""Per-phase timing hooks and throughput reporting.

The trainer wraps each phase of its hot loop — batch assembly, forward,
backward, optimizer step — in :meth:`PerfRegistry.section`, accumulating
wall-clock per phase. The throughput benchmark
(``benchmarks/test_throughput.py``) reads these to decompose epoch time and
writes ``BENCH_throughput.json`` so every future PR has a perf trajectory
to regress against; the Table 6 reproduction keeps using the per-epoch
totals the same registry feeds.

The registry costs two ``perf_counter`` calls per section — negligible next
to a single batch's GEMMs — so it is always on in the trainer.

For hierarchical traces (nested spans, exclusive time, telemetry export)
see :class:`repro.obs.SpanTracer`, which subsumes this flat registry; the
trainer feeds both from one measurement so their totals always agree.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PerfRegistry", "throughput", "write_report"]


class PerfRegistry:
    """Accumulates ``{section name: (seconds, calls)}`` wall-clock totals."""

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}
        self._depth: dict[str, int] = {}

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (re-entrant per name).

        Nested sections of the *same* name accumulate wall-clock only at
        the outermost level — the inner block's time is already inside the
        outer measurement, so adding it again would double-count. Calls
        are still counted per entry.
        """
        depth = self._depth.get(name, 0)
        self._depth[name] = depth + 1
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._depth[name] = depth
            self._calls[name] = self._calls.get(name, 0) + 1
            if depth == 0:
                self._seconds[name] = self._seconds.get(name, 0.0) + elapsed

    def record(self, name: str, seconds: float) -> None:
        """Add an externally-measured duration under ``name``."""
        self._seconds[name] = self._seconds.get(name, 0.0) + float(seconds)
        self._calls[name] = self._calls.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 when never hit)."""
        return self._seconds.get(name, 0.0)

    def summary(self) -> dict[str, dict[str, float]]:
        """``{name: {"seconds": ..., "calls": ...}}`` for every section."""
        return {
            name: {"seconds": self._seconds[name], "calls": self._calls[name]}
            for name in self._seconds
        }

    def reset(self) -> None:
        """Clear all accumulated totals."""
        self._seconds.clear()
        self._calls.clear()
        self._depth.clear()


def throughput(samples: int, seconds: float) -> float:
    """Samples per second, 0.0 when no time elapsed (or negative skew)."""
    return samples / seconds if seconds > 0 else 0.0


def write_report(path: str | os.PathLike, payload: dict) -> None:
    """Write a benchmark payload as pretty-printed JSON, atomically.

    The payload is serialized in full before any byte reaches disk and the
    file is replaced via temp-file + fsync + rename
    (:func:`repro.atomicio.atomic_write_text`), so a crash — or an
    unserializable payload — mid-write never truncates an existing report.
    """
    from .atomicio import atomic_write_text  # local import: keep module light

    atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
