"""Biased matrix factorization — the substrate for CMF / EMCDR / PTUPCDR.

Classic SGD-trained MF:  ``r_hat(u, i) = mu + b_u + b_i + p_u . q_i``.
Entities are string ids; unknown users/items at prediction time fall back to
the bias terms they do have (or the global mean), which is precisely the
cold-start failure mode the cross-domain methods try to fix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MFConfig", "BiasedMF"]


@dataclass(frozen=True)
class MFConfig:
    """Hyperparameters of the SGD factorization.

    ``use_bias=False`` reproduces the plain factorization the original
    EMCDR / PTUPCDR papers build on (``r_hat = mu + p_u . q_i``): user
    rating offsets must then travel through the latent factors, which is
    exactly what their mapping functions struggle to transfer.
    """

    num_factors: int = 16
    learning_rate: float = 0.015
    reg: float = 0.05
    epochs: int = 30
    init_std: float = 0.1
    use_bias: bool = True
    seed: int = 0


class BiasedMF:
    """Biased MF over (user_id, item_id, rating) triples."""

    def __init__(self, config: MFConfig | None = None) -> None:
        self.config = config if config is not None else MFConfig()
        self.user_index: dict[str, int] = {}
        self.item_index: dict[str, int] = {}
        self.user_factors: np.ndarray | None = None
        self.item_factors: np.ndarray | None = None
        self.user_bias: np.ndarray | None = None
        self.item_bias: np.ndarray | None = None
        self.global_mean: float = 0.0

    # ------------------------------------------------------------------
    def fit(self, triples: list[tuple[str, str, float]]) -> "BiasedMF":
        """Train on (user, item, rating) triples with SGD."""
        if not triples:
            raise ValueError("cannot fit MF on an empty interaction list")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        self.user_index = {u: k for k, u in enumerate(sorted({t[0] for t in triples}))}
        self.item_index = {i: k for k, i in enumerate(sorted({t[1] for t in triples}))}
        num_users, num_items = len(self.user_index), len(self.item_index)

        self.user_factors = rng.normal(0, cfg.init_std, (num_users, cfg.num_factors))
        self.item_factors = rng.normal(0, cfg.init_std, (num_items, cfg.num_factors))
        self.user_bias = np.zeros(num_users)
        self.item_bias = np.zeros(num_items)
        self.global_mean = float(np.mean([t[2] for t in triples]))

        encoded = np.array(
            [(self.user_index[u], self.item_index[i], r) for u, i, r in triples]
        )
        users = encoded[:, 0].astype(np.int64)
        items = encoded[:, 1].astype(np.int64)
        ratings = encoded[:, 2]

        order = np.arange(len(triples))
        for _ in range(cfg.epochs):
            rng.shuffle(order)
            for idx in order:
                u, i, r = users[idx], items[idx], ratings[idx]
                pu, qi = self.user_factors[u], self.item_factors[i]
                pred = self.global_mean + pu @ qi
                if cfg.use_bias:
                    pred += self.user_bias[u] + self.item_bias[i]
                err = r - pred
                if cfg.use_bias:
                    self.user_bias[u] += cfg.learning_rate * (err - cfg.reg * self.user_bias[u])
                    self.item_bias[i] += cfg.learning_rate * (err - cfg.reg * self.item_bias[i])
                pu_old = pu.copy()
                self.user_factors[u] += cfg.learning_rate * (err * qi - cfg.reg * pu)
                self.item_factors[i] += cfg.learning_rate * (err * pu_old - cfg.reg * qi)
        return self

    # ------------------------------------------------------------------
    def user_vector(self, user_id: str) -> np.ndarray | None:
        """Latent factor of ``user_id`` (None when unseen in training)."""
        index = self.user_index.get(user_id)
        return None if index is None else self.user_factors[index]

    def item_vector(self, item_id: str) -> np.ndarray | None:
        """Latent factor of ``item_id`` (None when unseen in training)."""
        index = self.item_index.get(item_id)
        return None if index is None else self.item_factors[index]

    def predict(
        self,
        user_id: str,
        item_id: str,
        user_vector: np.ndarray | None = None,
        user_bias: float | None = None,
    ) -> float:
        """Predict a rating; external vectors/biases override lookups.

        External overrides are how mapping-based methods (EMCDR, PTUPCDR)
        inject a cold user's *transferred* latent factor.
        """
        pred = self.global_mean
        u = self.user_index.get(user_id)
        i = self.item_index.get(item_id)
        if self.config.use_bias:
            if user_bias is not None:
                pred += user_bias
            elif u is not None:
                pred += self.user_bias[u]
            if i is not None:
                pred += self.item_bias[i]
        vec = user_vector
        if vec is None and u is not None:
            vec = self.user_factors[u]
        if vec is not None and i is not None:
            pred += float(vec @ self.item_factors[i])
        return float(np.clip(pred, 1.0, 5.0))
