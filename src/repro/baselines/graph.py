"""Graph collaborative-filtering substrate shared by NGCF / LightGCN / HeroGraph.

Provides:

* :func:`normalized_adjacency` — symmetric degree-normalized bipartite
  adjacency ``D^-1/2 (A) D^-1/2`` as a ``scipy.sparse`` matrix;
* :func:`sparse_propagate` — autograd-aware sparse-dense product
  ``A_hat @ X`` (backward is ``A_hat.T @ grad``);
* :class:`GraphRecommenderBase` — embedding table + bias terms + full-batch
  training loop on observed ratings; subclasses define the propagation rule.

Rating prediction is ``mu + b_u + b_i + e_u . e_i`` over the propagated
embeddings, trained with MSE — the standard explicit-feedback adaptation of
these (originally ranking-oriented) models.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .. import nn
from ..data.records import CrossDomainDataset
from ..data.split import ColdStartSplit
from .base import BaselineRecommender, clip_rating

__all__ = ["normalized_adjacency", "sparse_propagate", "GraphRecommenderBase"]


def normalized_adjacency(
    num_nodes: int, edges: list[tuple[int, int]]
) -> sp.csr_matrix:
    """Symmetric ``D^-1/2 A D^-1/2`` over undirected ``edges``.

    Isolated nodes (cold-start users in a single-domain graph) simply get
    zero rows — propagation leaves their embeddings untouched.
    """
    if not edges:
        return sp.csr_matrix((num_nodes, num_nodes))
    rows = [e[0] for e in edges] + [e[1] for e in edges]
    cols = [e[1] for e in edges] + [e[0] for e in edges]
    data = np.ones(len(rows))
    adj = sp.coo_matrix((data, (rows, cols)), shape=(num_nodes, num_nodes)).tocsr()
    degree = np.asarray(adj.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv_sqrt = 1.0 / np.sqrt(degree)
    inv_sqrt[~np.isfinite(inv_sqrt)] = 0.0
    d_mat = sp.diags(inv_sqrt)
    return (d_mat @ adj @ d_mat).tocsr()


def sparse_propagate(adjacency: sp.csr_matrix, x: nn.Tensor) -> nn.Tensor:
    """Autograd-aware ``adjacency @ x`` for a constant sparse matrix."""
    out_data = adjacency @ x.data

    def backward(grad: np.ndarray) -> None:
        x._accumulate(adjacency.T @ grad)

    return nn.Tensor._make(out_data, (x,), backward)


class GraphRecommenderBase(BaselineRecommender):
    """Common training / prediction machinery for the graph baselines."""

    name = "graph-base"

    def __init__(
        self,
        embed_dim: int = 24,
        num_layers: int = 2,
        epochs: int = 120,
        learning_rate: float = 0.02,
        reg: float = 1e-4,
        seed: int = 0,
    ) -> None:
        self.embed_dim = embed_dim
        self.num_layers = num_layers
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.reg = reg
        self.seed = seed
        self.node_index: dict[str, int] = {}
        self._adjacency: sp.csr_matrix | None = None
        self._embeddings: nn.Parameter | None = None
        self._bias: nn.Parameter | None = None
        self._final_embeddings: np.ndarray | None = None
        self._final_bias: np.ndarray | None = None
        self._global_mean: float = 3.0

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def propagate(self, embeddings: nn.Tensor) -> nn.Tensor:
        """Produce final node embeddings from the base table (subclass rule)."""
        raise NotImplementedError

    def _graph_elements(
        self, dataset: CrossDomainDataset, split: ColdStartSplit
    ) -> tuple[list[str], list[tuple[str, str]], list[tuple[str, str, float]]]:
        """Return (node names, edge name pairs, target training triples)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def fit(self, dataset: CrossDomainDataset, split: ColdStartSplit) -> "GraphRecommenderBase":
        nodes, edges, triples = self._graph_elements(dataset, split)
        if not triples:
            raise ValueError("no visible target interactions to train on")
        rng = np.random.default_rng(self.seed)
        self.node_index = {name: k for k, name in enumerate(nodes)}
        edge_ids = [(self.node_index[a], self.node_index[b]) for a, b in edges]
        self._adjacency = normalized_adjacency(len(nodes), edge_ids)

        self._embeddings = nn.Parameter(
            rng.normal(0, 0.1, (len(nodes), self.embed_dim))
        )
        self._bias = nn.Parameter(np.zeros(len(nodes)))
        self._global_mean = float(np.mean([t[2] for t in triples]))

        users = np.array([self.node_index[f"u:{u}"] for u, _, _ in triples])
        items = np.array([self.node_index[f"i:{i}"] for _, i, _ in triples])
        ratings = np.array([r for _, _, r in triples])

        optimizer = nn.Adam(self._parameters(), lr=self.learning_rate)
        for _ in range(self.epochs):
            optimizer.zero_grad()
            final = self.propagate(self._embeddings)
            e_u = final.take_rows(users)
            e_i = final.take_rows(items)
            dot = (e_u * e_i).sum(axis=-1)
            preds = dot + self._bias[users] + self._bias[items] + self._global_mean
            err = preds - nn.Tensor(ratings)
            loss = (err * err).mean() + self.reg * (self._embeddings * self._embeddings).sum()
            loss.backward()
            optimizer.step()

        with nn.no_grad():
            self._final_embeddings = self.propagate(self._embeddings).data.copy()
        self._final_bias = self._bias.data.copy()
        return self

    def _parameters(self) -> list[nn.Parameter]:
        return [self._embeddings, self._bias]

    # ------------------------------------------------------------------
    def predict(self, user_id: str, item_id: str) -> float:
        pred = self._global_mean
        u = self.node_index.get(f"u:{user_id}")
        i = self.node_index.get(f"i:{item_id}")
        if u is not None:
            pred += self._final_bias[u]
        if i is not None:
            pred += self._final_bias[i]
        if u is not None and i is not None:
            pred += float(self._final_embeddings[u] @ self._final_embeddings[i])
        return clip_rating(pred)
