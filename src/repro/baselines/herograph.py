"""HeroGraph (Cui et al. 2020) — heterogeneous cross-domain graph baseline.

One shared graph holds every user plus the items of *both* domains; edges
come from all source interactions and the visible target interactions.
Because cold-start users keep their source-domain edges, propagation gives
them informative embeddings — HeroGraph is the strongest baseline in the
paper's tables, and the same holds here.

Simplification note (DESIGN.md §2): the original uses per-edge attention;
we use symmetric degree normalization with a learned per-layer gate, which
preserves the architecture's essential property (cross-domain information
flow through a shared graph) at a fraction of the implementation surface.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.records import CrossDomainDataset
from ..data.split import ColdStartSplit
from .base import visible_target_triples
from .graph import GraphRecommenderBase, sparse_propagate

__all__ = ["HeroGraph"]


class HeroGraph(GraphRecommenderBase):
    name = "HeroGraph"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        # Learned gate per layer: how much of each hop to mix in.
        self._gates = nn.Parameter(np.ones(self.num_layers) * 0.5)

    def _parameters(self) -> list[nn.Parameter]:
        return super()._parameters() + [self._gates]

    def _graph_elements(self, dataset: CrossDomainDataset, split: ColdStartSplit):
        target_triples = visible_target_triples(dataset, split)
        users = sorted(dataset.source.users | dataset.target.users)
        # Domain-qualified item nodes: the same id can exist in both domains.
        source_items = sorted(dataset.source.items)
        target_items = sorted(dataset.target.items)
        nodes = (
            [f"u:{u}" for u in users]
            + [f"i:{i}" for i in target_items]
            + [f"s:{i}" for i in source_items]
        )
        edges = [(f"u:{u}", f"i:{i}") for u, i, _ in target_triples]
        edges += [
            (f"u:{r.user_id}", f"s:{r.item_id}") for r in dataset.source.reviews
        ]
        return nodes, edges, target_triples

    def propagate(self, embeddings: nn.Tensor) -> nn.Tensor:
        layers = [embeddings]
        current = embeddings
        for layer_index in range(self.num_layers):
            aggregated = sparse_propagate(self._adjacency, current)
            gate = self._gates[layer_index]
            current = aggregated * gate + current * (1.0 - gate)
            layers.append(current)
        total = layers[0]
        for layer in layers[1:]:
            total = total + layer
        return total / float(len(layers))
