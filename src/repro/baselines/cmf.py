"""CMF — Collective Matrix Factorization (Singh & Gordon 2008).

Factorizes the source and target rating matrices *simultaneously* with a
shared user-factor matrix: ``r^s(u,i) = mu_s + b_u + b_i^s + p_u . q_i^s``
and ``r^t(u,j) = mu_t + b_u + b_j^t + p_u . q_j^t``. Because ``p_u`` and
``b_u`` are learned from both domains, a cold-start user (who has only
source interactions) still gets a usable latent factor for target-domain
prediction — CMF is the oldest cross-domain transfer mechanism in the
paper's baseline set.
"""

from __future__ import annotations

import numpy as np

from ..data.records import CrossDomainDataset
from ..data.split import ColdStartSplit
from .base import BaselineRecommender, clip_rating, source_triples, visible_target_triples
from .mf import MFConfig

__all__ = ["CMF"]


class CMF(BaselineRecommender):
    """Joint SGD factorization of both domains with shared user factors."""

    name = "CMF"

    def __init__(
        self,
        config: MFConfig | None = None,
        source_weight: float = 1.0,
        use_bias: bool = False,
    ) -> None:
        """``use_bias=False`` (default) matches the original CMF formulation,
        which factorizes the raw rating matrices without user/item bias
        terms — the main reason CMF is the weakest baseline in the paper's
        tables (it must spend factors modelling rating offsets)."""
        self.config = config if config is not None else MFConfig()
        self.source_weight = source_weight
        self.use_bias = use_bias
        self.user_index: dict[str, int] = {}
        self.item_index: dict[tuple[str, str], int] = {}  # (domain, item) -> idx
        self._user_factors: np.ndarray | None = None
        self._item_factors: np.ndarray | None = None
        self._user_bias: np.ndarray | None = None
        self._item_bias: np.ndarray | None = None
        self._mean = {"s": 3.0, "t": 3.0}

    def fit(self, dataset: CrossDomainDataset, split: ColdStartSplit) -> "CMF":
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        src = source_triples(dataset)
        tgt = visible_target_triples(dataset, split)
        if not src or not tgt:
            raise ValueError("CMF needs interactions in both domains")

        users = sorted({u for u, _, _ in src} | {u for u, _, _ in tgt})
        self.user_index = {u: k for k, u in enumerate(users)}
        items = [("s", i) for i in sorted({i for _, i, _ in src})] + [
            ("t", i) for i in sorted({i for _, i, _ in tgt})
        ]
        self.item_index = {key: k for k, key in enumerate(items)}

        self._user_factors = rng.normal(0, cfg.init_std, (len(users), cfg.num_factors))
        self._item_factors = rng.normal(0, cfg.init_std, (len(items), cfg.num_factors))
        self._user_bias = np.zeros(len(users))
        self._item_bias = np.zeros(len(items))
        self._mean["s"] = float(np.mean([r for _, _, r in src]))
        self._mean["t"] = float(np.mean([r for _, _, r in tgt]))

        rows = [
            (self.user_index[u], self.item_index[("s", i)], r, self._mean["s"], self.source_weight)
            for u, i, r in src
        ] + [
            (self.user_index[u], self.item_index[("t", i)], r, self._mean["t"], 1.0)
            for u, i, r in tgt
        ]
        encoded = np.array(rows)
        order = np.arange(len(encoded))
        for _ in range(cfg.epochs):
            rng.shuffle(order)
            for idx in order:
                u, i = int(encoded[idx, 0]), int(encoded[idx, 1])
                r, mean, weight = encoded[idx, 2], encoded[idx, 3], encoded[idx, 4]
                pu, qi = self._user_factors[u], self._item_factors[i]
                pred = pu @ qi
                if self.use_bias:
                    pred += mean + self._user_bias[u] + self._item_bias[i]
                err = weight * (r - pred)
                if self.use_bias:
                    self._user_bias[u] += cfg.learning_rate * (err - cfg.reg * self._user_bias[u])
                    self._item_bias[i] += cfg.learning_rate * (err - cfg.reg * self._item_bias[i])
                pu_old = pu.copy()
                self._user_factors[u] += cfg.learning_rate * (err * qi - cfg.reg * pu)
                self._item_factors[i] += cfg.learning_rate * (err * pu_old - cfg.reg * qi)
        return self

    def predict(self, user_id: str, item_id: str) -> float:
        u = self.user_index.get(user_id)
        i = self.item_index.get(("t", item_id))
        if self.use_bias:
            pred = self._mean["t"]
            if u is not None:
                pred += self._user_bias[u]
            if i is not None:
                pred += self._item_bias[i]
        else:
            pred = self._mean["t"] if (u is None or i is None) else 0.0
        if u is not None and i is not None:
            pred += float(self._user_factors[u] @ self._item_factors[i])
        return clip_rating(pred)
