"""PTUPCDR — Personalized Transfer of User Preferences (Zhu et al. 2022).

Instead of EMCDR's single global mapping, a *meta-network* generates a
personalized bridge for each user from their source-domain interaction
characteristics:

1. Biased MF in both domains (as EMCDR).
2. A characteristics encoder summarizes the user's source history as an
   attention-weighted mean of the source item factors they interacted with
   (weights from a small scoring network over item factor + rating).
3. The meta-network maps the characteristics vector to a personalized
   ``k x k`` bridge matrix ``W_u``; the transferred factor is
   ``W_u p_u^s``.
4. The meta-network is trained task-oriented: minimize the squared error of
   the *predicted target ratings* of training users (not the factor-space
   distance), which is the paper's key improvement over EMCDR.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.records import CrossDomainDataset
from ..data.split import ColdStartSplit
from .base import BaselineRecommender, clip_rating, source_triples, visible_target_triples
from .mf import BiasedMF, MFConfig

__all__ = ["PTUPCDR"]


class PTUPCDR(BaselineRecommender):
    """Meta-network personalized bridge over biased-MF factors."""

    name = "PTUPCDR"

    def __init__(
        self,
        mf_config: MFConfig | None = None,
        meta_hidden: int = 32,
        meta_epochs: int = 40,
        meta_lr: float = 0.005,
        seed: int = 0,
    ) -> None:
        # Plain (bias-free) MF, as in Zhu et al. 2022.
        self.mf_config = mf_config if mf_config is not None else MFConfig(use_bias=False)
        self.meta_hidden = meta_hidden
        self.meta_epochs = meta_epochs
        self.meta_lr = meta_lr
        self.seed = seed
        self.source_mf = BiasedMF(self.mf_config)
        self.target_mf = BiasedMF(self.mf_config)
        self._attention: nn.MLP | None = None
        self._meta: nn.MLP | None = None
        self._train_users: set[str] = set()
        self._dataset: CrossDomainDataset | None = None

    # ------------------------------------------------------------------
    def _characteristics(self, user_id: str) -> np.ndarray | None:
        """Attention-weighted mean of the user's source item factors."""
        assert self._dataset is not None
        reviews = self._dataset.source.reviews_of_user(user_id)
        rows = []
        for review in reviews:
            vec = self.source_mf.item_vector(review.item_id)
            if vec is not None:
                rows.append(np.concatenate([vec, [review.rating / 5.0]]))
        if not rows:
            return None
        features = np.stack(rows)
        if self._attention is None:
            return features[:, :-1].mean(axis=0)
        with nn.no_grad():
            scores = self._attention(nn.Tensor(features)).data.reshape(-1)
        weights = np.exp(scores - scores.max())
        weights = weights / weights.sum()
        return weights @ features[:, :-1]

    def _bridge(self, user_id: str) -> np.ndarray | None:
        """Personalized transferred target factor ``W_u p_u^s``."""
        chars = self._characteristics(user_id)
        p_s = self.source_mf.user_vector(user_id)
        if chars is None or p_s is None or self._meta is None:
            return None
        k = self.mf_config.num_factors
        with nn.no_grad():
            w_flat = self._meta(nn.Tensor(chars[None, :])).data[0]
        return w_flat.reshape(k, k) @ p_s

    # ------------------------------------------------------------------
    def fit(self, dataset: CrossDomainDataset, split: ColdStartSplit) -> "PTUPCDR":
        self._dataset = dataset
        self._train_users = set(split.train_users)
        self.source_mf.fit(source_triples(dataset))
        self.target_mf.fit(visible_target_triples(dataset, split))

        rng = np.random.default_rng(self.seed)
        k = self.mf_config.num_factors
        self._attention = nn.MLP([k + 1, self.meta_hidden, 1], rng)
        self._meta = nn.MLP([k, self.meta_hidden, k * k], rng)

        # Task-oriented training samples: training users' target interactions.
        samples: list[tuple[str, np.ndarray, float, float]] = []
        for user in split.train_users:
            p_s = self.source_mf.user_vector(user)
            if p_s is None:
                continue
            for review in dataset.target.reviews_of_user(user):
                q = self.target_mf.item_vector(review.item_id)
                if q is None:
                    continue
                base = self.target_mf.global_mean
                samples.append((user, q, review.rating - base, float(p_s @ q)))
        if not samples:
            raise ValueError("PTUPCDR found no usable training samples")

        optimizer = nn.Adam(
            self._attention.parameters() + self._meta.parameters(), lr=self.meta_lr
        )
        users = sorted({s[0] for s in samples})
        by_user: dict[str, list[tuple[np.ndarray, float]]] = {u: [] for u in users}
        for user, q, residual, _ in samples:
            by_user[user].append((q, residual))

        for _ in range(self.meta_epochs):
            rng.shuffle(users)
            optimizer.zero_grad()
            total: nn.Tensor | None = None
            count = 0
            for user in users:
                chars = self._characteristics_train(user)
                p_s = self.source_mf.user_vector(user)
                if chars is None or p_s is None:
                    continue
                w_flat = self._meta(chars)
                w = w_flat.reshape(k, k)
                p_t = w @ nn.Tensor(p_s)
                qs = np.stack([q for q, _ in by_user[user]])
                residuals = np.array([r for _, r in by_user[user]])
                preds = nn.Tensor(qs) @ p_t
                err = preds - nn.Tensor(residuals)
                loss = (err * err).sum()
                total = loss if total is None else total + loss
                count += len(residuals)
            if total is None:
                break
            (total / float(count)).backward()
            optimizer.step()
            optimizer.zero_grad()
        self._attention.eval()
        self._meta.eval()
        return self

    def _characteristics_train(self, user_id: str) -> nn.Tensor | None:
        """Differentiable characteristics encoding (training path)."""
        assert self._dataset is not None and self._attention is not None
        rows = []
        for review in self._dataset.source.reviews_of_user(user_id):
            vec = self.source_mf.item_vector(review.item_id)
            if vec is not None:
                rows.append(np.concatenate([vec, [review.rating / 5.0]]))
        if not rows:
            return None
        features = np.stack(rows)
        scores = self._attention(nn.Tensor(features)).reshape(1, -1)
        weights = nn.functional.softmax(scores, axis=-1)
        return (weights @ nn.Tensor(features[:, :-1])).reshape(-1)

    # ------------------------------------------------------------------
    def predict(self, user_id: str, item_id: str) -> float:
        if user_id in self._train_users and self.target_mf.user_vector(user_id) is not None:
            return clip_rating(self.target_mf.predict(user_id, item_id))
        transferred = self._bridge(user_id)
        return clip_rating(
            self.target_mf.predict(user_id, item_id, user_vector=transferred)
        )
