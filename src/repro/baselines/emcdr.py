"""EMCDR — Embedding and Mapping for Cross-Domain Recommendation (Man 2017).

Three stages, exactly the pipeline the paper describes in §5.3 / §7.1:

1. Biased MF learns latent factors independently in the source and target
   domains (target MF sees only protocol-visible interactions).
2. An MLP mapping function ``f: p_u^s -> p_u^t`` is trained on the
   *overlapping training users*, who have factors in both domains.
3. A cold-start user's target factor is ``f(p_u^s)``; prediction uses the
   target MF's item factors and biases with the mapped user factor.

The mapping quality degrades sharply when overlap users are few — the
error-propagation failure mode that Table 4 demonstrates.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.records import CrossDomainDataset
from ..data.split import ColdStartSplit
from .base import BaselineRecommender, clip_rating, source_triples, visible_target_triples
from .mf import BiasedMF, MFConfig

__all__ = ["EMCDR"]


class EMCDR(BaselineRecommender):
    """MF in each domain + MLP bridge learned from overlapping users."""

    name = "EMCDR"

    def __init__(
        self,
        mf_config: MFConfig | None = None,
        hidden_dim: int = 32,
        mapping_epochs: int = 200,
        mapping_lr: float = 0.01,
        seed: int = 0,
    ) -> None:
        # Plain (bias-free) MF, as in Man et al. 2017.
        self.mf_config = mf_config if mf_config is not None else MFConfig(use_bias=False)
        self.hidden_dim = hidden_dim
        self.mapping_epochs = mapping_epochs
        self.mapping_lr = mapping_lr
        self.seed = seed
        self.source_mf = BiasedMF(self.mf_config)
        self.target_mf = BiasedMF(self.mf_config)
        self._mapping: nn.MLP | None = None
        self._train_users: set[str] = set()

    # ------------------------------------------------------------------
    def fit(self, dataset: CrossDomainDataset, split: ColdStartSplit) -> "EMCDR":
        self._train_users = set(split.train_users)
        self.source_mf.fit(source_triples(dataset))
        self.target_mf.fit(visible_target_triples(dataset, split))

        pairs = [
            (self.source_mf.user_vector(u), self.target_mf.user_vector(u))
            for u in split.train_users
        ]
        pairs = [(s, t) for s, t in pairs if s is not None and t is not None]
        if not pairs:
            raise ValueError("EMCDR found no overlapping users with factors in both domains")
        x = np.stack([s for s, _ in pairs])
        y = np.stack([t for _, t in pairs])

        rng = np.random.default_rng(self.seed)
        k = self.mf_config.num_factors
        self._mapping = nn.MLP([k, self.hidden_dim, k], rng)
        optimizer = nn.Adam(self._mapping.parameters(), lr=self.mapping_lr)
        inputs = nn.Tensor(x)
        # Train under the tape-level graph optimizer (fusion + arena);
        # bit-identical to the plain tape.
        with nn.graph_scope():
            for _ in range(self.mapping_epochs):
                optimizer.zero_grad()
                loss = nn.mse_loss(self._mapping(inputs), y)
                loss.backward()
                optimizer.step()
        self._mapping.eval()
        return self

    # ------------------------------------------------------------------
    def _mapped_vector(self, user_id: str) -> np.ndarray | None:
        source_vec = self.source_mf.user_vector(user_id)
        if source_vec is None or self._mapping is None:
            return None
        with nn.no_grad():
            return self._mapping(nn.Tensor(source_vec[None, :])).data[0]

    def predict(self, user_id: str, item_id: str) -> float:
        if user_id in self._train_users and self.target_mf.user_vector(user_id) is not None:
            return clip_rating(self.target_mf.predict(user_id, item_id))
        mapped = self._mapped_vector(user_id)
        return clip_rating(
            self.target_mf.predict(user_id, item_id, user_vector=mapped)
        )
