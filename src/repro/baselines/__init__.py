"""``repro.baselines`` — the paper's six comparison methods plus references.

Single-domain: NGCF, LightGCN. Cross-domain: CMF, EMCDR, PTUPCDR,
HeroGraph. References (not in the paper's tables): GlobalMean, ItemMean.
"""

from .base import (
    BaselineRecommender,
    clip_rating,
    source_triples,
    visible_target_triples,
)
from .cmf import CMF
from .deepconn import DeepCoNN
from .emcdr import EMCDR
from .graph import GraphRecommenderBase, normalized_adjacency, sparse_propagate
from .herograph import HeroGraph
from .lightgcn import LightGCN
from .mf import BiasedMF, MFConfig
from .ngcf import NGCF
from .popularity import GlobalMean, ItemMean
from .ptupcdr import PTUPCDR

__all__ = [
    "BaselineRecommender",
    "visible_target_triples",
    "source_triples",
    "clip_rating",
    "BiasedMF",
    "MFConfig",
    "CMF",
    "DeepCoNN",
    "EMCDR",
    "PTUPCDR",
    "NGCF",
    "LightGCN",
    "HeroGraph",
    "GlobalMean",
    "ItemMean",
    "GraphRecommenderBase",
    "normalized_adjacency",
    "sparse_propagate",
]
