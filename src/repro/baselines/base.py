"""Shared baseline interface and visibility helpers.

Every baseline implements :class:`BaselineRecommender`: ``fit`` on a
(dataset, split) pair under the same visibility rules as OmniMatch — all
source-domain reviews are visible, target-domain reviews of cold-start users
are hidden — then ``predict_interactions`` on held-out reviews.
"""

from __future__ import annotations

import abc

import numpy as np

from ..data.records import CrossDomainDataset, Review
from ..data.split import ColdStartSplit

__all__ = [
    "BaselineRecommender",
    "visible_target_triples",
    "source_triples",
    "clip_rating",
]


def clip_rating(value: float) -> float:
    """Clamp a raw prediction to the 1..5 rating scale."""
    return float(np.clip(value, 1.0, 5.0))


def visible_target_triples(
    dataset: CrossDomainDataset, split: ColdStartSplit
) -> list[tuple[str, str, float]]:
    """Target-domain (user, item, rating) triples visible under the protocol:
    training overlap users plus target-only (non-overlapping) users."""
    cold = set(split.cold_users)
    return [
        (r.user_id, r.item_id, r.rating)
        for r in dataset.target.reviews
        if r.user_id not in cold
    ]


def source_triples(dataset: CrossDomainDataset) -> list[tuple[str, str, float]]:
    """All source-domain triples (cold users' source history is public)."""
    return [(r.user_id, r.item_id, r.rating) for r in dataset.source.reviews]


class BaselineRecommender(abc.ABC):
    """Interface every baseline implements."""

    name: str = "baseline"

    @abc.abstractmethod
    def fit(self, dataset: CrossDomainDataset, split: ColdStartSplit) -> "BaselineRecommender":
        """Train under the cold-start visibility rules."""

    @abc.abstractmethod
    def predict(self, user_id: str, item_id: str) -> float:
        """Predict the rating of one (user, item) pair in the target domain."""

    def predict_interactions(self, interactions: list[Review]) -> np.ndarray:
        """Vectorized convenience over held-out reviews."""
        return np.array([self.predict(r.user_id, r.item_id) for r in interactions])
