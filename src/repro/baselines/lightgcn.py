"""LightGCN (He et al. 2020) — single-domain graph CF baseline.

Propagation is pure neighborhood aggregation — no feature transforms, no
nonlinearities — and the final embedding is the layer average:

    E^(l+1) = A_hat E^(l),     E = mean(E^(0) ... E^(K))

Built only on the *target* domain (it is one of the paper's two
single-domain baselines), so cold-start users are isolated nodes whose
embeddings never move: LightGCN degenerates to bias terms for them, which
is exactly why it trails the cross-domain methods in Tables 2-3.
"""

from __future__ import annotations

from .. import nn
from ..data.records import CrossDomainDataset
from ..data.split import ColdStartSplit
from .base import visible_target_triples
from .graph import GraphRecommenderBase, sparse_propagate

__all__ = ["LightGCN"]


class LightGCN(GraphRecommenderBase):
    name = "LIGHTGCN"

    def _graph_elements(self, dataset: CrossDomainDataset, split: ColdStartSplit):
        triples = visible_target_triples(dataset, split)
        users = sorted(dataset.source.users | dataset.target.users)
        items = sorted(dataset.target.items)
        nodes = [f"u:{u}" for u in users] + [f"i:{i}" for i in items]
        edges = [(f"u:{u}", f"i:{i}") for u, i, _ in triples]
        return nodes, edges, triples

    def propagate(self, embeddings: nn.Tensor) -> nn.Tensor:
        layers = [embeddings]
        current = embeddings
        for _ in range(self.num_layers):
            current = sparse_propagate(self._adjacency, current)
            layers.append(current)
        total = layers[0]
        for layer in layers[1:]:
            total = total + layer
        return total / float(len(layers))
