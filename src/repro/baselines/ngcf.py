"""NGCF — Neural Graph Collaborative Filtering (Wang et al. 2019).

Single-domain baseline. Each propagation layer applies feature transforms
and a bilinear neighbor interaction (the parts LightGCN later removed):

    E^(l+1) = LeakyReLU( A_hat E^(l) W1 + (A_hat E^(l)) * E^(l) W2 )

and the final representation concatenates all layers (here: averages, to
keep the prediction dot-product dimension fixed). As with LightGCN, it sees
only the target domain, so cold users reduce to bias terms.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.records import CrossDomainDataset
from ..data.split import ColdStartSplit
from .base import visible_target_triples
from .graph import GraphRecommenderBase, sparse_propagate

__all__ = ["NGCF"]


def _leaky_relu(x: nn.Tensor, slope: float = 0.2) -> nn.Tensor:
    return x.relu() - slope * (-x).relu()


class NGCF(GraphRecommenderBase):
    name = "NGCF"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        rng = np.random.default_rng(self.seed + 1)
        self._w1: list[nn.Linear] = []
        self._w2: list[nn.Linear] = []
        for _ in range(self.num_layers):
            self._w1.append(nn.Linear(self.embed_dim, self.embed_dim, rng))
            self._w2.append(nn.Linear(self.embed_dim, self.embed_dim, rng))

    def _parameters(self) -> list[nn.Parameter]:
        params = super()._parameters()
        for linear in self._w1 + self._w2:
            params.extend(linear.parameters())
        return params

    def _graph_elements(self, dataset: CrossDomainDataset, split: ColdStartSplit):
        triples = visible_target_triples(dataset, split)
        users = sorted(dataset.source.users | dataset.target.users)
        items = sorted(dataset.target.items)
        nodes = [f"u:{u}" for u in users] + [f"i:{i}" for i in items]
        edges = [(f"u:{u}", f"i:{i}") for u, i, _ in triples]
        return nodes, edges, triples

    def propagate(self, embeddings: nn.Tensor) -> nn.Tensor:
        layers = [embeddings]
        current = embeddings
        for w1, w2 in zip(self._w1, self._w2):
            aggregated = sparse_propagate(self._adjacency, current)
            current = _leaky_relu(w1(aggregated) + w2(aggregated * current))
            layers.append(current)
        total = layers[0]
        for layer in layers[1:]:
            total = total + layer
        return total / float(len(layers))
