"""DeepCoNN (Zheng et al. 2017) — single-domain review-based baseline.

The model the paper's related-work section (§7.2) builds from: two parallel
text CNNs encode the user's review document and the item's review document;
the concatenated features feed a factorization-machine-style interaction
layer that regresses the rating.

Not part of the paper's comparison tables (it has no cross-domain transfer
mechanism), but a natural reference: for cold-start users its *target*
review document is empty, so it degenerates to item-side evidence — the
precise failure OmniMatch's auxiliary reviews repair. Registered in
``repro.eval`` as ``"DeepCoNN"``.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.batching import DocumentStore, iter_batches
from ..data.records import CrossDomainDataset
from ..data.split import ColdStartSplit
from ..text import train_ppmi_svd_embeddings
from .base import BaselineRecommender, clip_rating

__all__ = ["DeepCoNN"]


class DeepCoNN(BaselineRecommender):
    """Two parallel text CNNs + interaction layer, trained on MSE."""

    name = "DeepCoNN"

    def __init__(
        self,
        embed_dim: int = 32,
        num_filters: int = 16,
        kernel_sizes: tuple[int, ...] = (3,),
        latent_dim: int = 16,
        doc_len: int = 48,
        epochs: int = 8,
        batch_size: int = 64,
        learning_rate: float = 1e-3,
        seed: int = 0,
    ) -> None:
        self.embed_dim = embed_dim
        self.num_filters = num_filters
        self.kernel_sizes = kernel_sizes
        self.latent_dim = latent_dim
        self.doc_len = doc_len
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self._store: DocumentStore | None = None
        self._mean = 3.0

    # ------------------------------------------------------------------
    def _build(self, vocab_size: int, table: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        self._embedding = nn.Embedding(
            vocab_size, self.embed_dim, weights=table, trainable=False, padding_idx=0
        )
        self._user_conv = nn.TextConv(self.embed_dim, self.num_filters,
                                      self.kernel_sizes, rng)
        self._item_conv = nn.TextConv(self.embed_dim, self.num_filters,
                                      self.kernel_sizes, rng)
        self._user_head = nn.Linear(self._user_conv.output_dim, self.latent_dim, rng)
        self._item_head = nn.Linear(self._item_conv.output_dim, self.latent_dim, rng)
        self._bias_head = nn.Linear(2 * self.latent_dim, 1, rng)

    def _parameters(self):
        return (
            self._user_conv.parameters() + self._item_conv.parameters()
            + self._user_head.parameters() + self._item_head.parameters()
            + self._bias_head.parameters()
        )

    def _forward(self, user_docs: np.ndarray, item_docs: np.ndarray) -> nn.Tensor:
        z_user = self._user_head(self._user_conv(self._embedding(user_docs))).relu()
        z_item = self._item_head(self._item_conv(self._embedding(item_docs))).relu()
        # FM-style: first-order linear term + second-order interaction (dot).
        interaction = (z_user * z_item).sum(axis=-1)
        linear = self._bias_head(nn.concat([z_user, z_item], axis=-1)).reshape(-1)
        return interaction + linear + self._mean

    # ------------------------------------------------------------------
    def fit(self, dataset: CrossDomainDataset, split: ColdStartSplit) -> "DeepCoNN":
        self._store = DocumentStore(dataset, split, doc_len=self.doc_len)
        table = train_ppmi_svd_embeddings(
            self._store.visible_token_documents(), self._store.vocab,
            dim=self.embed_dim, seed=self.seed,
        )
        self._build(len(self._store.vocab), table)

        interactions = split.train_interactions(dataset)
        cold = set(split.cold_users)
        interactions += [
            r for r in dataset.target.reviews
            if r.user_id not in cold and r.user_id not in set(split.train_users)
        ]
        self._mean = float(np.mean([r.rating for r in interactions]))

        rng = np.random.default_rng(self.seed)
        optimizer = nn.Adam(self._parameters(), lr=self.learning_rate)
        # Train under the tape-level graph optimizer: chain fusion plus
        # arena buffer reuse, bit-identical to the plain tape.
        with nn.graph_scope():
            for _ in range(self.epochs):
                for batch in iter_batches(interactions, self.batch_size, rng):
                    user_docs = np.stack(
                        [self._store.user_target_doc(r.user_id) for r in batch]
                    )
                    item_docs = np.stack([self._store.item_doc(r.item_id) for r in batch])
                    ratings = np.array([r.rating for r in batch])
                    optimizer.zero_grad()
                    loss = nn.mse_loss(self._forward(user_docs, item_docs), ratings)
                    loss.backward()
                    optimizer.step()
        return self

    # ------------------------------------------------------------------
    def predict(self, user_id: str, item_id: str) -> float:
        assert self._store is not None, "fit() must be called first"
        try:
            user_doc = self._store.user_target_doc(user_id)
        except KeyError:  # cold-start user: no target reviews exist
            user_doc = np.zeros(self.doc_len, dtype=np.int64)
        item_doc = self._store.item_doc(item_id)
        with nn.no_grad():
            value = self._forward(user_doc[None, :], item_doc[None, :]).data[0]
        return clip_rating(float(value))
