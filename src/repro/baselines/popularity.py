"""Trivial reference baselines: global mean and item mean.

Not in the paper's tables, but indispensable sanity anchors: any method
below the item-mean line is not using personalization at all.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..data.records import CrossDomainDataset
from ..data.split import ColdStartSplit
from .base import BaselineRecommender, clip_rating, visible_target_triples

__all__ = ["GlobalMean", "ItemMean"]


class GlobalMean(BaselineRecommender):
    """Predict the visible target-domain mean rating for everything."""

    name = "global-mean"

    def __init__(self) -> None:
        self._mean = 3.0

    def fit(self, dataset: CrossDomainDataset, split: ColdStartSplit) -> "GlobalMean":
        triples = visible_target_triples(dataset, split)
        if triples:
            self._mean = float(np.mean([t[2] for t in triples]))
        return self

    def predict(self, user_id: str, item_id: str) -> float:
        return clip_rating(self._mean)


class ItemMean(BaselineRecommender):
    """Predict each item's visible mean rating (damped toward the global mean)."""

    name = "item-mean"

    def __init__(self, damping: float = 3.0) -> None:
        self.damping = damping
        self._global = 3.0
        self._item_mean: dict[str, float] = {}

    def fit(self, dataset: CrossDomainDataset, split: ColdStartSplit) -> "ItemMean":
        triples = visible_target_triples(dataset, split)
        if not triples:
            return self
        self._global = float(np.mean([t[2] for t in triples]))
        sums: dict[str, float] = defaultdict(float)
        counts: dict[str, int] = defaultdict(int)
        for _, item, rating in triples:
            sums[item] += rating
            counts[item] += 1
        self._item_mean = {
            item: (sums[item] + self.damping * self._global)
            / (counts[item] + self.damping)
            for item in sums
        }
        return self

    def predict(self, user_id: str, item_id: str) -> float:
        return clip_rating(self._item_mean.get(item_id, self._global))
