"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the library version and the registered methods/datasets.
``generate``
    Generate a scenario and print its size card.
``compare``
    Fit every paper method on one scenario and print the comparison table.
``train``
    Train OmniMatch on one scenario, report cold-start RMSE/MAE, and
    optionally save a checkpoint.
``case-study``
    Print the §5.10-style auxiliary-review generation trace for one
    cold-start user.
``recommend``
    Train briefly, then rank the full target catalog for one (cold-start)
    user through the serving engine — encode-once caches, blocked
    full-catalog scoring, exact top-K.
``experiment``
    Run one method on one scenario through the experiment protocol,
    optionally fanning the trials across ``--workers`` processes.
``bench``
    Run a methods × scenarios table through the parallel engine
    (``--workers N``) and print every cell with timing columns.
``report``
    Summarize a telemetry file (``run.jsonl``) written by a run with
    ``--telemetry``: phase time breakdown, health events, final metrics.
    Also accepts a directory of per-worker shards from a parallel run.
``tune``
    Distributed hyperparameter search with deterministic successive
    halving (ASHA): a declarative search space fans over worker
    processes, losing trials are killed at rung barriers, promoted
    trials resume from their checkpoints, and the winner lands in a
    byte-deterministic ``best_config.json``.
``serve``
    Train briefly, then run the resilient serving daemon — a supervised
    multi-worker fleet sharding the catalog behind a JSON-lines socket,
    with deadlines, retries, load shedding and graceful degradation.
``loadtest``
    Start a daemon, drive it with zipf-skewed traffic (optionally killing
    workers mid-traffic), verify every completed response bit-exactly
    against a single-process engine, and print the outcome census.
"""

from __future__ import annotations

import argparse

import numpy as np

from . import __version__
from .core import (
    AuxiliaryReviewGenerator,
    ColdStartPredictor,
    OmniMatchConfig,
    OmniMatchTrainer,
    save_checkpoint,
)
from .data import DATASET_PROFILES, DOMAINS, cold_start_split, generate_scenario
from .eval import (
    METHODS,
    PAPER_METHODS,
    PAPER_SCENARIOS,
    format_comparison,
    mae,
    rmse,
    run_experiment,
    run_scenario_methods,
    run_table,
)
from .obs import TelemetrySink, load_run_events, render_report, validate_run_file

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OmniMatch (EDBT 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and registry information")

    def add_scenario_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", default="amazon", choices=sorted(DATASET_PROFILES))
        p.add_argument("--source", default="books", choices=sorted(DOMAINS))
        p.add_argument("--target", default="movies", choices=sorted(DOMAINS))
        p.add_argument("--seed", type=int, default=0)

    generate = sub.add_parser("generate", help="generate a scenario, print its card")
    add_scenario_args(generate)

    compare = sub.add_parser("compare", help="compare all paper methods on one scenario")
    add_scenario_args(compare)
    compare.add_argument("--trials", type=int, default=1)
    compare.add_argument("--workers", type=int, default=0,
                         help="fan the method cells across N worker processes "
                              "(results are bit-identical to serial)")
    compare.add_argument("--telemetry", default=None, metavar="DIR",
                         help="write run telemetry (per-worker shards merged "
                              "into DIR/run.jsonl when --workers >= 2)")

    experiment = sub.add_parser(
        "experiment", help="run one method on one scenario (parallel trials)"
    )
    add_scenario_args(experiment)
    experiment.add_argument("--method", default="OmniMatch",
                            choices=sorted(METHODS))
    experiment.add_argument("--trials", type=int, default=3)
    experiment.add_argument("--train-fraction", type=float, default=1.0)
    experiment.add_argument("--workers", type=int, default=0,
                            help="fan the trials across N worker processes")
    experiment.add_argument("--telemetry", default=None, metavar="DIR")

    bench = sub.add_parser(
        "bench", help="run a methods x scenarios table through the engine"
    )
    bench.add_argument("--dataset", default="amazon", choices=sorted(DATASET_PROFILES))
    bench.add_argument("--methods", default=None,
                       help="comma-separated method names (default: paper methods)")
    bench.add_argument("--scenarios", default=None,
                       help="comma-separated source:target pairs "
                            "(default: the six paper scenarios)")
    bench.add_argument("--trials", type=int, default=1)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--workers", type=int, default=0,
                       help="fan the table cells across N worker processes")
    bench.add_argument("--telemetry", default=None, metavar="DIR")

    train = sub.add_parser("train", help="train OmniMatch and score cold-start users")
    add_scenario_args(train)
    train.add_argument("--epochs", type=int, default=25)
    train.add_argument("--checkpoint", default=None, metavar="DIR",
                       help="directory to save the final model (and, with "
                            "--checkpoint-every, periodic training checkpoints)")
    train.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                       help="write a crash-safe training checkpoint every N "
                            "epochs under the --checkpoint directory")
    train.add_argument("--keep-last", type=int, default=3, metavar="K",
                       help="retain only the K newest periodic checkpoints "
                            "(the best-by-validation one is always kept)")
    train.add_argument("--resume", default=None, metavar="DIR",
                       help="resume training from a checkpoint directory (or "
                            "pick the newest valid checkpoint in a run "
                            "directory); requires identical scenario flags")
    train.add_argument("--telemetry", default=None, metavar="DIR",
                       help="stream structured run telemetry (per-epoch and "
                            "per-batch metrics, span timings, health events) "
                            "to DIR/run.jsonl; summarize with `repro report`")

    case = sub.add_parser("case-study", help="auxiliary-review trace for one cold user")
    add_scenario_args(case)

    recommend = sub.add_parser(
        "recommend", help="train briefly, then rank the full catalog for a user"
    )
    add_scenario_args(recommend)
    recommend.add_argument("--epochs", type=int, default=8)
    recommend.add_argument("--user", default=None, metavar="USER_ID",
                           help="user to recommend for (default: the cold-start "
                                "user with the richest source history)")
    recommend.add_argument("--k", type=int, default=10,
                           help="how many catalog items to return")
    recommend.add_argument("--retrieval", choices=("exact", "ivf"),
                           default="exact",
                           help="full-catalog ranking strategy: exact brute "
                                "force, or IVF coarse-probe + exact re-rank")
    recommend.add_argument("--nlist", type=int, default=None, metavar="N",
                           help="IVF inverted-list count "
                                "(default: sqrt(catalog))")
    recommend.add_argument("--nprobe", type=int, default=None, metavar="N",
                           help="IVF lists probed per query (default 8; "
                                ">= nlist recovers the exact ranking)")
    recommend.add_argument("--ann-store", choices=("float32", "int8"),
                           default="float32",
                           help="IVF routing store (int8 quantizes the "
                                "routing copy ~4x smaller)")
    recommend.add_argument("--exclude-seen", action="store_true",
                           help="drop items the user already interacted with "
                                "in training data from the ranking")
    recommend.add_argument("--telemetry", default=None, metavar="DIR",
                           help="stream serve-stage telemetry (index build, "
                                "cache hits, score latency, ann probes) to "
                                "DIR/run.jsonl")

    tune = sub.add_parser(
        "tune", help="ASHA hyperparameter search over OmniMatchConfig"
    )
    add_scenario_args(tune)
    tune.add_argument("--space", default=None, metavar="JSON|@FILE",
                      help="search-space spec: inline JSON or @path to a "
                           "JSON file mapping config fields to one "
                           "distribution each (grid/choice/uniform/"
                           "log_uniform); default tunes learning_rate "
                           "and alpha")
    tune.add_argument("--samples", type=int, default=1,
                      help="joint draws of the sampled (non-grid) fields "
                           "per grid point")
    tune.add_argument("--scheduler", choices=("asha", "grid"), default="asha",
                      help="asha: successive halving with early kills; "
                           "grid: exhaustive (every trial trains the full "
                           "budget)")
    tune.add_argument("--min-epochs", type=int, default=1,
                      help="first-rung epoch budget")
    tune.add_argument("--max-epochs", type=int, default=9,
                      help="final-rung (cumulative) epoch budget")
    tune.add_argument("--eta", type=int, default=3,
                      help="halving rate: budgets grow by eta, top 1/eta "
                           "of each rung is promoted")
    tune.add_argument("--train-fraction", type=float, default=1.0)
    tune.add_argument("--workers", type=int, default=0,
                      help="fan rung trials across N worker processes "
                           "(results are byte-identical to inline)")
    tune.add_argument("--out", default="tune-out", metavar="DIR",
                      help="output directory: best_config.json, per-trial "
                           "checkpoints under trials/, telemetry under "
                           "telemetry/")

    report = sub.add_parser(
        "report", help="summarize a run.jsonl telemetry file"
    )
    report.add_argument("path", help="run.jsonl file, or a directory containing one")
    report.add_argument("--validate", action="store_true",
                        help="schema-check every event before summarizing")

    def add_daemon_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--epochs", type=int, default=8)
        p.add_argument("--workers", type=int, default=2,
                       help="serving worker processes (catalog shards)")
        p.add_argument("--retrieval", choices=("exact", "ivf"), default="exact")
        p.add_argument("--nprobe", type=int, default=None, metavar="N")
        p.add_argument("--max-batch", type=int, default=8,
                       help="micro-batch size cap")
        p.add_argument("--max-delay-ms", type=float, default=2.0,
                       help="micro-batch max delay budget")
        p.add_argument("--queue-limit", type=int, default=64,
                       help="queued requests beyond this are shed")
        p.add_argument("--deadline-ms", type=float, default=None,
                       help="default per-request deadline")
        p.add_argument("--telemetry", default=None, metavar="DIR",
                       help="write daemon + worker telemetry shards, merged "
                            "into DIR/run.jsonl on shutdown")

    serve = sub.add_parser(
        "serve", help="train briefly, then run the serving daemon"
    )
    add_scenario_args(serve)
    add_daemon_args(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (0 binds an ephemeral port)")

    loadtest = sub.add_parser(
        "loadtest", help="drive a daemon with verified zipf traffic"
    )
    add_scenario_args(loadtest)
    add_daemon_args(loadtest)
    loadtest.add_argument("--requests", type=int, default=200)
    loadtest.add_argument("--concurrency", type=int, default=4)
    loadtest.add_argument("--k", type=int, default=5)
    loadtest.add_argument("--zipf-s", type=float, default=1.1,
                          help="user-popularity skew exponent")
    loadtest.add_argument("--kill-at", default=None, metavar="IDX:SLOT,...",
                          help="chaos plan: kill worker SLOT right before "
                               "request IDX (comma-separated pairs)")
    loadtest.add_argument("--no-verify", action="store_true",
                          help="skip the bit-exact reference comparison")
    return parser


def _cmd_info() -> int:
    print(f"repro {__version__} — OmniMatch (EDBT 2025) reproduction")
    print(f"datasets: {', '.join(sorted(DATASET_PROFILES))}")
    print(f"domains:  {', '.join(sorted(DOMAINS))}")
    print(f"methods:  {', '.join(sorted(METHODS))}")
    print(f"paper table order: {', '.join(PAPER_METHODS)}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = generate_scenario(args.dataset, args.source, args.target)
    for key, value in dataset.summary().items():
        print(f"{key:>16s}: {value}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    results = run_scenario_methods(
        list(PAPER_METHODS), args.dataset, args.source, args.target,
        trials=args.trials, seed=args.seed,
        workers=args.workers, telemetry_dir=args.telemetry,
    )
    print(format_comparison(results))
    if args.telemetry:
        print(f"telemetry written to {args.telemetry}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = run_experiment(
        args.method, args.dataset, args.source, args.target,
        trials=args.trials, train_fraction=args.train_fraction,
        seed=args.seed, workers=args.workers, telemetry_dir=args.telemetry,
    )
    row = result.row(include_timing=True)
    print("  ".join(f"{key}={value}" for key, value in row.items()))
    if args.telemetry:
        print(f"telemetry written to {args.telemetry}")
    return 0


def _parse_scenarios(spec: str | None) -> list[tuple[str, str]]:
    if spec is None:
        return list(PAPER_SCENARIOS)
    scenarios = []
    for chunk in spec.split(","):
        source, sep, target = chunk.strip().partition(":")
        if not sep or not source or not target:
            raise SystemExit(f"bad scenario {chunk!r}; expected source:target")
        scenarios.append((source, target))
    return scenarios


def _cmd_bench(args: argparse.Namespace) -> int:
    methods = (
        [m.strip() for m in args.methods.split(",")]
        if args.methods else list(PAPER_METHODS)
    )
    unknown = sorted(set(methods) - set(METHODS))
    if unknown:
        raise SystemExit(f"unknown method(s): {', '.join(unknown)}")
    results = run_table(
        methods, args.dataset, scenarios=_parse_scenarios(args.scenarios),
        trials=args.trials, seed=args.seed,
        workers=args.workers, telemetry_dir=args.telemetry,
    )
    rows = [result.row(include_timing=True) for result in results]
    widths = {
        key: max(len(key), *(len(str(row[key])) for row in rows))
        for key in rows[0]
    }
    print("  ".join(f"{key:<{widths[key]}}" for key in rows[0]))
    for row in rows:
        print("  ".join(f"{str(value):<{widths[key]}}" for key, value in row.items()))
    if args.telemetry:
        print(f"telemetry written to {args.telemetry}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    if args.checkpoint_every and not args.checkpoint:
        raise SystemExit("--checkpoint-every requires --checkpoint DIR")
    dataset = generate_scenario(args.dataset, args.source, args.target)
    split = cold_start_split(dataset, seed=args.seed)
    config = OmniMatchConfig(epochs=args.epochs, seed=args.seed)
    fit_kwargs: dict = {}
    if args.checkpoint_every:
        fit_kwargs.update(
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint,
            keep_last=args.keep_last,
        )
    if args.resume:
        fit_kwargs["resume_from"] = args.resume
    sink = TelemetrySink(args.telemetry) if args.telemetry else None
    try:
        result = OmniMatchTrainer(dataset, split, config, telemetry=sink).fit(
            **fit_kwargs
        )
    finally:
        if sink is not None:
            sink.close()
            print(f"telemetry written to {sink.path}")
    predictor = ColdStartPredictor(result)
    test = split.eval_interactions(dataset, "test")
    predicted = predictor.predict_interactions(test)
    actual = np.array([r.rating for r in test])
    print(f"trained {len(result.history)} epochs "
          f"({result.train_seconds:.1f}s); cold-start test: "
          f"RMSE={rmse(actual, predicted):.3f} MAE={mae(actual, predicted):.3f}")
    recoveries = [e for e in result.health
                  if e.kind in ("nonfinite_loss", "nonfinite_grad", "rollback",
                                "lr_backoff", "kernel_fallback")]
    if recoveries:
        kinds = ", ".join(sorted({e.kind for e in recoveries}))
        print(f"run health: {len(recoveries)} divergence-recovery event(s) [{kinds}]")
    if args.checkpoint:
        save_checkpoint(result, args.checkpoint)
        print(f"checkpoint saved to {args.checkpoint}")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    from .serve import InferenceEngine

    dataset = generate_scenario(args.dataset, args.source, args.target)
    split = cold_start_split(dataset, seed=args.seed)
    config = OmniMatchConfig(epochs=args.epochs, seed=args.seed)
    sink = TelemetrySink(args.telemetry) if args.telemetry else None
    try:
        result = OmniMatchTrainer(dataset, split, config, telemetry=sink).fit()
        user = args.user
        if user is None:
            user = max(split.test_users,
                       key=lambda u: len(dataset.source.reviews_of_user(u)))
        engine = InferenceEngine(
            result, telemetry=sink,
            retrieval=args.retrieval, nlist=args.nlist,
            nprobe=args.nprobe, ann_store=args.ann_store,
        )
        engine.warm([user])
        # --exclude-seen drops the user's *training-visible* target
        # interactions; a cold user's held-out interactions stay rankable
        # (recommending them back is exactly the eval protocol's success).
        seen = None
        if args.exclude_seen:
            seen = sorted(
                r.item_id
                for r in dataset.target.reviews_of_user(user)
                if user in split.train_users
            )
        ranked = engine.recommend(user, k=args.k, exclude_items=seen)
    finally:
        if sink is not None:
            sink.close()
    print(f"top-{len(ranked)} of {len(engine.items)} catalog items "
          f"for user {user} ({dataset.scenario}, {args.retrieval} retrieval)")
    for rank, rec in enumerate(ranked, start=1):
        print(f"{rank:>3d}. {rec.item_id}  expected rating {rec.score:.3f}")
    if seen:
        print(f"excluded {len(seen)} already-seen item(s)")
    hits, misses = engine.users.hits, engine.users.misses
    print(f"cache: {hits} hits / {misses} misses; "
          f"{engine.items.encoded_count} items indexed")
    if args.retrieval == "ivf":
        stats = engine.ann_index().stats
        print(f"ivf: nlist={stats.nlist} nprobe={engine.nprobe} "
              f"store={stats.store} ({stats.store_bytes} bytes)")
    if args.telemetry:
        print(f"telemetry written to {sink.path}")
    return 0


def _cmd_case_study(args: argparse.Namespace) -> int:
    dataset = generate_scenario(args.dataset, args.source, args.target)
    split = cold_start_split(dataset, seed=args.seed)
    generator = AuxiliaryReviewGenerator(dataset, allowed_users=split.train_users,
                                         seed=args.seed)
    user = max(split.test_users,
               key=lambda u: len(dataset.source.reviews_of_user(u)))
    print(f"cold-start user {user} ({dataset.scenario})")
    for index, sel in enumerate(generator.explain(user), start=1):
        status = (
            f"borrowed \"{sel.auxiliary_review}\" from {sel.like_minded_user}"
            if sel.succeeded
            else "no like-minded user"
        )
        print(f"({index}) {sel.source_item} rated {sel.source_rating:.0f} "
              f"(\"{sel.source_review}\") -> {status}")
    return 0


def _train_for_serving(args: argparse.Namespace):
    dataset = generate_scenario(args.dataset, args.source, args.target)
    split = cold_start_split(dataset, seed=args.seed)
    config = OmniMatchConfig(epochs=args.epochs, seed=args.seed)
    return OmniMatchTrainer(dataset, split, config).fit(), dataset, split


def _daemon_config_from_args(args: argparse.Namespace):
    from .serve import DaemonConfig

    return DaemonConfig(
        host=getattr(args, "host", "127.0.0.1"),
        port=getattr(args, "port", 0),
        workers=args.workers,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        queue_limit=args.queue_limit,
        default_deadline_ms=args.deadline_ms,
        retrieval=args.retrieval,
        nprobe=args.nprobe,
        telemetry_dir=args.telemetry,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import RecommendDaemon

    result, dataset, _ = _train_for_serving(args)
    daemon = RecommendDaemon(result, _daemon_config_from_args(args))
    daemon.start()
    if not daemon.wait_ready():
        daemon.stop()
        raise SystemExit("daemon workers failed to become ready")
    print(f"serving {dataset.scenario} on {daemon.config.host}:{daemon.port} "
          f"({args.workers} workers, catalog {len(daemon.item_ids)})")
    print("ops: recommend, score, warm, health, ready, stats — "
          "one JSON object per line; Ctrl-C to stop")
    try:
        while True:
            import time as _time

            _time.sleep(1)
    except KeyboardInterrupt:
        pass
    finally:
        stats = daemon.stop()
        print(f"stopped: {stats['received']} requests, "
              f"{stats['completed']} ok, {stats['shed']} shed, "
              f"{stats['errors']} errors, {stats['deaths']} worker deaths")
        if args.telemetry:
            print(f"telemetry merged into {args.telemetry}/run.jsonl")
    return 0


def _parse_kill_plan(spec: str | None) -> dict[int, int]:
    if not spec:
        return {}
    plan: dict[int, int] = {}
    for chunk in spec.split(","):
        index, sep, slot = chunk.strip().partition(":")
        if not sep:
            raise SystemExit(f"bad --kill-at entry {chunk!r}; expected IDX:SLOT")
        plan[int(index)] = int(slot)
    return plan


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from .serve import InferenceEngine, RecommendDaemon
    from .serve.loadtest import LoadTestConfig, run_loadtest

    result, dataset, split = _train_for_serving(args)
    daemon = RecommendDaemon(result, _daemon_config_from_args(args))
    daemon.start()
    if not daemon.wait_ready():
        daemon.stop()
        raise SystemExit("daemon workers failed to become ready")
    reference = None
    if not args.no_verify:
        reference = InferenceEngine(result, nprobe=args.nprobe)
    users = sorted(split.test_users) + sorted(split.train_users)
    items = sorted(dataset.target.items)
    lt_config = LoadTestConfig(
        requests=args.requests,
        concurrency=args.concurrency,
        k=args.k,
        zipf_s=args.zipf_s,
        deadline_ms=args.deadline_ms,
        seed=args.seed,
    )
    try:
        outcome = run_loadtest(
            daemon, users, items,
            reference=reference, config=lt_config,
            kill_at=_parse_kill_plan(args.kill_at),
        )
    finally:
        stats = daemon.stop()
    summary = outcome.summary()
    print(f"loadtest {dataset.scenario}: {summary['sent']} requests "
          f"({args.concurrency} clients, zipf s={args.zipf_s})")
    print(f"  ok {summary['ok']}  shed {summary['shed']}  "
          f"timeouts {summary['timeouts']}  errors {summary['errors']}  "
          f"client timeouts {summary['client_timeouts']}")
    print(f"  latency p50 {summary['latency_p50_ms']:.1f}ms  "
          f"p99 {summary['latency_p99_ms']:.1f}ms  "
          f"throughput {summary['requests_per_sec']:.0f} req/s")
    if outcome.recoveries:
        print(f"  recovery after kill: max {summary['recovery_max_s']:.2f}s "
              f"over {len(outcome.recoveries)} kill(s) "
              f"({stats['deaths']} deaths healed)")
    if reference is not None:
        verdict = ("all completed responses bit-identical to the "
                   "single-process engine"
                   if not outcome.mismatches
                   else f"{len(outcome.mismatches)} MISMATCHED response(s)")
        print(f"  verification: {verdict}")
    if args.telemetry:
        print(f"telemetry merged into {args.telemetry}/run.jsonl")
    return 1 if outcome.mismatches else 0


_DEFAULT_TUNE_SPACE = {
    "learning_rate": {"log_uniform": [0.2, 2.0]},
    "alpha": {"grid": [0.1, 0.2, 0.3]},
}


def _cmd_tune(args: argparse.Namespace) -> int:
    import json

    from .tune import SearchSpaceError, run_tuning

    if args.space is None:
        spec = _DEFAULT_TUNE_SPACE
    elif args.space.startswith("@"):
        with open(args.space[1:], encoding="utf-8") as handle:
            spec = json.load(handle)
    else:
        spec = json.loads(args.space)

    try:
        result = run_tuning(
            spec,
            dataset_name=args.dataset, source=args.source, target=args.target,
            seed=args.seed, num_samples=args.samples,
            scheduler=args.scheduler, min_epochs=args.min_epochs,
            max_epochs=args.max_epochs, eta=args.eta,
            train_fraction=args.train_fraction, split_seed=args.seed,
            workers=args.workers, out_dir=args.out,
        )
    except SearchSpaceError as error:
        raise SystemExit(f"bad search space: {error}")

    mode = f"{args.workers} workers" if args.workers >= 2 else "inline"
    print(f"tuned {len(result.trials)} trials over {len(result.rungs)} "
          f"rung(s) ({args.scheduler}, {mode}) in {result.wall_seconds:.1f}s "
          f"— {result.total_epochs} epochs trained")
    for decision in result.rungs:
        print(f"  rung {decision.rung} (budget {decision.budget}): "
              f"{len(decision.ranked)} trials, "
              f"promoted {len(decision.promoted)}, "
              f"killed {len(decision.killed)}")
    params = ", ".join(f"{k}={v}" for k, v in sorted(result.best_params.items()))
    print(f"best trial {result.best_trial}: valid RMSE "
          f"{result.best_rmse:.4f} ({params})")
    print(f"best config written to {result.artifact_path}")
    print(f"telemetry merged into {result.telemetry_dir}/run.jsonl "
          f"(summarize with `repro report`)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.validate:
        from pathlib import Path

        from .obs import find_shards

        target = Path(args.path)
        targets = [target]
        if target.is_dir():
            merged = target / "run.jsonl"
            # Validate the merged stream when present, raw shards otherwise.
            targets = [merged] if merged.exists() else find_shards(target)
            if not targets:
                raise SystemExit(f"{target}: no run.jsonl or telemetry shards")
        for item in targets:
            stats = validate_run_file(item)
            print(f"schema OK ({item.name}): {stats['events']} event(s), "
                  f"{stats['runs']} run(s), kinds: "
                  + ", ".join(f"{k}={v}" for k, v in sorted(stats["kinds"].items())))
    events = load_run_events(args.path)
    print(render_report(events))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "case-study":
        return _cmd_case_study(args)
    if args.command == "recommend":
        return _cmd_recommend(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadtest":
        return _cmd_loadtest(args)
    raise AssertionError(f"unhandled command {args.command!r}")
