"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the library version and the registered methods/datasets.
``generate``
    Generate a scenario and print its size card.
``compare``
    Fit every paper method on one scenario and print the comparison table.
``train``
    Train OmniMatch on one scenario, report cold-start RMSE/MAE, and
    optionally save a checkpoint.
``case-study``
    Print the §5.10-style auxiliary-review generation trace for one
    cold-start user.
``report``
    Summarize a telemetry file (``run.jsonl``) written by a run with
    ``--telemetry``: phase time breakdown, health events, final metrics.
"""

from __future__ import annotations

import argparse

import numpy as np

from . import __version__
from .core import (
    AuxiliaryReviewGenerator,
    ColdStartPredictor,
    OmniMatchConfig,
    OmniMatchTrainer,
    save_checkpoint,
)
from .data import DATASET_PROFILES, DOMAINS, cold_start_split, generate_scenario
from .eval import METHODS, PAPER_METHODS, format_comparison, mae, rmse, run_scenario_methods
from .obs import TelemetrySink, load_run_events, render_report, validate_run_file

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OmniMatch (EDBT 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and registry information")

    def add_scenario_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", default="amazon", choices=sorted(DATASET_PROFILES))
        p.add_argument("--source", default="books", choices=sorted(DOMAINS))
        p.add_argument("--target", default="movies", choices=sorted(DOMAINS))
        p.add_argument("--seed", type=int, default=0)

    generate = sub.add_parser("generate", help="generate a scenario, print its card")
    add_scenario_args(generate)

    compare = sub.add_parser("compare", help="compare all paper methods on one scenario")
    add_scenario_args(compare)
    compare.add_argument("--trials", type=int, default=1)

    train = sub.add_parser("train", help="train OmniMatch and score cold-start users")
    add_scenario_args(train)
    train.add_argument("--epochs", type=int, default=25)
    train.add_argument("--checkpoint", default=None, metavar="DIR",
                       help="directory to save the final model (and, with "
                            "--checkpoint-every, periodic training checkpoints)")
    train.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                       help="write a crash-safe training checkpoint every N "
                            "epochs under the --checkpoint directory")
    train.add_argument("--keep-last", type=int, default=3, metavar="K",
                       help="retain only the K newest periodic checkpoints "
                            "(the best-by-validation one is always kept)")
    train.add_argument("--resume", default=None, metavar="DIR",
                       help="resume training from a checkpoint directory (or "
                            "pick the newest valid checkpoint in a run "
                            "directory); requires identical scenario flags")
    train.add_argument("--telemetry", default=None, metavar="DIR",
                       help="stream structured run telemetry (per-epoch and "
                            "per-batch metrics, span timings, health events) "
                            "to DIR/run.jsonl; summarize with `repro report`")

    case = sub.add_parser("case-study", help="auxiliary-review trace for one cold user")
    add_scenario_args(case)

    report = sub.add_parser(
        "report", help="summarize a run.jsonl telemetry file"
    )
    report.add_argument("path", help="run.jsonl file, or a directory containing one")
    report.add_argument("--validate", action="store_true",
                        help="schema-check every event before summarizing")
    return parser


def _cmd_info() -> int:
    print(f"repro {__version__} — OmniMatch (EDBT 2025) reproduction")
    print(f"datasets: {', '.join(sorted(DATASET_PROFILES))}")
    print(f"domains:  {', '.join(sorted(DOMAINS))}")
    print(f"methods:  {', '.join(sorted(METHODS))}")
    print(f"paper table order: {', '.join(PAPER_METHODS)}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = generate_scenario(args.dataset, args.source, args.target)
    for key, value in dataset.summary().items():
        print(f"{key:>16s}: {value}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    results = run_scenario_methods(
        list(PAPER_METHODS), args.dataset, args.source, args.target,
        trials=args.trials, seed=args.seed,
    )
    print(format_comparison(results))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    if args.checkpoint_every and not args.checkpoint:
        raise SystemExit("--checkpoint-every requires --checkpoint DIR")
    dataset = generate_scenario(args.dataset, args.source, args.target)
    split = cold_start_split(dataset, seed=args.seed)
    config = OmniMatchConfig(epochs=args.epochs, seed=args.seed)
    fit_kwargs: dict = {}
    if args.checkpoint_every:
        fit_kwargs.update(
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint,
            keep_last=args.keep_last,
        )
    if args.resume:
        fit_kwargs["resume_from"] = args.resume
    sink = TelemetrySink(args.telemetry) if args.telemetry else None
    try:
        result = OmniMatchTrainer(dataset, split, config, telemetry=sink).fit(
            **fit_kwargs
        )
    finally:
        if sink is not None:
            sink.close()
            print(f"telemetry written to {sink.path}")
    predictor = ColdStartPredictor(result)
    test = split.eval_interactions(dataset, "test")
    predicted = predictor.predict_interactions(test)
    actual = np.array([r.rating for r in test])
    print(f"trained {len(result.history)} epochs "
          f"({result.train_seconds:.1f}s); cold-start test: "
          f"RMSE={rmse(actual, predicted):.3f} MAE={mae(actual, predicted):.3f}")
    recoveries = [e for e in result.health
                  if e.kind in ("nonfinite_loss", "nonfinite_grad", "rollback",
                                "lr_backoff", "kernel_fallback")]
    if recoveries:
        kinds = ", ".join(sorted({e.kind for e in recoveries}))
        print(f"run health: {len(recoveries)} divergence-recovery event(s) [{kinds}]")
    if args.checkpoint:
        save_checkpoint(result, args.checkpoint)
        print(f"checkpoint saved to {args.checkpoint}")
    return 0


def _cmd_case_study(args: argparse.Namespace) -> int:
    dataset = generate_scenario(args.dataset, args.source, args.target)
    split = cold_start_split(dataset, seed=args.seed)
    generator = AuxiliaryReviewGenerator(dataset, allowed_users=split.train_users,
                                         seed=args.seed)
    user = max(split.test_users,
               key=lambda u: len(dataset.source.reviews_of_user(u)))
    print(f"cold-start user {user} ({dataset.scenario})")
    for index, sel in enumerate(generator.explain(user), start=1):
        status = (
            f"borrowed \"{sel.auxiliary_review}\" from {sel.like_minded_user}"
            if sel.succeeded
            else "no like-minded user"
        )
        print(f"({index}) {sel.source_item} rated {sel.source_rating:.0f} "
              f"(\"{sel.source_review}\") -> {status}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.validate:
        from pathlib import Path

        target = Path(args.path)
        if target.is_dir():
            target = target / "run.jsonl"
        stats = validate_run_file(target)
        print(f"schema OK: {stats['events']} event(s), "
              f"{stats['runs']} run(s), kinds: "
              + ", ".join(f"{k}={v}" for k, v in sorted(stats["kinds"].items())))
    events = load_run_events(args.path)
    print(render_report(events))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "case-study":
        return _cmd_case_study(args)
    if args.command == "report":
        return _cmd_report(args)
    raise AssertionError(f"unhandled command {args.command!r}")
