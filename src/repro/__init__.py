"""OmniMatch reproduction: review-based cross-domain cold-start recommendation.

From-scratch reproduction of *OmniMatch: Overcoming the Cold-Start Problem
in Cross-Domain Recommendations using Auxiliary Reviews* (EDBT 2025),
including the numpy autograd substrate (``repro.nn``), text processing
(``repro.text``), synthetic Amazon/Douban-style corpora (``repro.data``),
the OmniMatch model (``repro.core``), all six paper baselines
(``repro.baselines``), the evaluation harness (``repro.eval``), the
run-telemetry layer (``repro.obs``), and the encode-once serving engine
(``repro.serve``).

Quickstart::

    from repro.data import generate_scenario, cold_start_split
    from repro.core import OmniMatchTrainer, OmniMatchConfig, ColdStartPredictor

    dataset = generate_scenario("amazon", "books", "movies")
    split = cold_start_split(dataset, seed=0)
    result = OmniMatchTrainer(dataset, split, OmniMatchConfig()).fit()
    predictor = ColdStartPredictor(result)
"""

__version__ = "1.0.0"

from . import baselines, core, data, eval, nn, obs, serve, text

__all__ = [
    "nn", "text", "data", "core", "baselines", "eval", "obs", "serve",
    "__version__",
]
