"""Deterministic multiprocess execution of experiment tasks.

The engine takes a list of :class:`ExperimentTask` cells — each "run
method M on scenario S for trials T with seed σ" — and executes them
either inline (``workers < 2``) or across a pool of worker processes,
with **bit-identical results** in both modes and against a plain serial
:func:`~repro.eval.protocol.run_experiment` loop. The contract rests on
three facts:

* every task carries explicit seeds; trial ``t`` of a cell always uses
  ``seed + trial_offset + t``, no matter which worker runs it or in what
  order;
* generated worlds are built **once** by the parent (generation is a
  deterministic function of the scenario) and shipped to workers through
  ``multiprocessing.shared_memory`` with review order preserved exactly
  (see :mod:`repro.parallel.sharing`), so every index and RNG draw in a
  worker matches the parent's;
* per-trial metrics come back labeled by task index and are reduced by
  the caller in trial order, so the float reductions see the same values
  in the same order as a serial run.

Supervision: each worker owns a private task queue and reports on a
shared result queue, so the parent always knows which task is in flight
where. A worker that dies (killed, segfault, an injected
:class:`~repro.faults.WorkerKillPlan` death) is detected by liveness
polling; its in-flight task is requeued with ``attempt + 1`` (bounded by
``max_task_retries``) and a replacement worker is spawned with a fresh
telemetry shard. A task that *raises* is not retried — exceptions are
deterministic, so a retry would fail identically — the error propagates
as :class:`ParallelExecutionError`.

Telemetry: pass ``telemetry_dir`` and each worker streams its events to
its own ``run-w<id>g<gen>.jsonl`` shard; after a successful run the
shards are merged into one schema-valid ``run.jsonl`` (see
:func:`repro.obs.merge_shards`) that ``repro report`` consumes.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import queue as queue_module
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core import OmniMatchConfig
from ..data import CrossDomainDataset, cold_start_split, generate_scenario
from ..data.batching import DocumentStore
from ..obs import TelemetrySink
from .sharing import (
    SharedDatasetRef,
    SharedStoreRef,
    attach_dataset,
    attach_document_store,
    publish_dataset,
    publish_document_matrices,
)
from .shm import ShmPack

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..eval.protocol import ExperimentResult
    from ..faults import WorkerKillPlan

__all__ = ["ExperimentTask", "ParallelExecutionError", "run_tasks"]

#: Methods that consume a pre-built document store (others ignore it, so
#: publishing matrices for them would be wasted parent-side work).
_STORE_METHODS = frozenset({"OmniMatch"})

#: How many attached datasets a worker keeps alive (tasks usually arrive
#: grouped by world, so two covers the transition between worlds).
_WORKER_DATASET_CACHE = 2


class ParallelExecutionError(RuntimeError):
    """A task failed in a worker, or exhausted its death-retry budget."""


@dataclass(frozen=True)
class ExperimentTask:
    """One (method, scenario) cell — or a slice of one — to execute.

    ``trial_offset`` renumbers the trials so a cell split across workers
    still derives the serial per-trial seeds; ``attempt`` counts how many
    times a worker died while holding this task (it is engine-internal
    and feeds the deterministic :class:`~repro.faults.WorkerKillPlan`).
    """

    index: int
    method: str
    dataset_name: str
    source: str
    target: str
    trials: int
    trial_offset: int
    seed: int
    train_fraction: float
    config: OmniMatchConfig | None
    generator_overrides: tuple[tuple[str, object], ...]
    emit_summary: bool
    attempt: int = 0

    def world_key(self) -> tuple:
        """Tasks with equal keys share one generated world."""
        return (self.dataset_name, self.source, self.target, self.generator_overrides)

    @property
    def scenario(self) -> str:
        return f"{self.source} -> {self.target}"


@dataclass(frozen=True)
class _TaskPayload:
    """What actually travels over a worker's task queue."""

    task: ExperimentTask
    dataset_ref: SharedDatasetRef
    store_refs: tuple[tuple[int, SharedStoreRef], ...]


@dataclass
class _WorkerState:
    process: multiprocessing.Process
    task_queue: "multiprocessing.Queue"
    generation: int
    in_flight: ExperimentTask | None = None


def _doc_config(config: OmniMatchConfig | None) -> OmniMatchConfig:
    return config if config is not None else OmniMatchConfig()


def _trial_seeds(task: ExperimentTask) -> list[int]:
    return [task.seed + task.trial_offset + i for i in range(task.trials)]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _execute_payload(payload: _TaskPayload, dataset_cache: dict, sink) -> "ExperimentResult":
    """Run one task against shared-memory data; used only in workers."""
    from ..eval.protocol import run_experiment

    task = payload.task
    cache_key = payload.dataset_ref.shm.name
    dataset = dataset_cache.get(cache_key)
    if dataset is None:
        if len(dataset_cache) >= _WORKER_DATASET_CACHE:
            dataset_cache.clear()
        dataset = attach_dataset(payload.dataset_ref)
        dataset_cache[cache_key] = dataset

    store_map = dict(payload.store_refs)
    attached_packs = []

    def store_provider(ds, split, trial_seed):
        ref = store_map.get(trial_seed)
        if ref is None:
            return None
        store = attach_document_store(ref, ds, split)
        attached_packs.append(store.attached_pack)
        return store

    try:
        return run_experiment(
            task.method,
            task.dataset_name,
            task.source,
            task.target,
            trials=task.trials,
            train_fraction=task.train_fraction,
            seed=task.seed,
            config=task.config,
            dataset=dataset,
            telemetry=sink,
            trial_offset=task.trial_offset,
            emit_summary=task.emit_summary,
            store_provider=store_provider if store_map else None,
        )
    finally:
        for pack in attached_packs:
            pack.close()


def _worker_main(
    worker_id: int,
    generation: int,
    task_queue,
    result_queue,
    telemetry_dir,
    default_dtype: str,
    fast_math: bool,
    kill_plan: "WorkerKillPlan | None",
) -> None:
    """Worker loop: pull payloads until the ``None`` sentinel arrives."""
    from ..nn.tensor import set_default_dtype, set_fast_math

    # Mirror the parent's numeric configuration: with the spawn start
    # method (or a parent that toggled flags after import) the module
    # defaults would otherwise silently diverge from the serial run.
    set_default_dtype(default_dtype)
    set_fast_math(fast_math)

    sink = None
    if telemetry_dir is not None:
        sink = TelemetrySink(
            telemetry_dir,
            filename=f"run-w{worker_id}g{generation}.jsonl",
            run_id=f"w{worker_id}g{generation}",
        )
        sink.emit("worker_start", worker=worker_id, generation=generation, pid=os.getpid())
        sink.flush()

    started = time.perf_counter()
    busy_seconds = 0.0
    tasks_done = 0
    dataset_cache: dict = {}
    try:
        while True:
            payload = task_queue.get()
            if payload is None:
                break
            task = payload.task
            if kill_plan is not None and kill_plan.should_kill(task.index, task.attempt):
                # Abrupt death — but only after draining this process's
                # result-queue feeder thread: _exit while the feeder holds
                # the shared write lock would wedge every other worker.
                result_queue.close()
                result_queue.join_thread()
                os._exit(kill_plan.EXIT_CODE)
            task_start = time.perf_counter()
            try:
                result = _execute_payload(payload, dataset_cache, sink)
            except Exception:
                if sink is not None:
                    sink.emit(
                        "task",
                        task=task.index,
                        worker=worker_id,
                        method=task.method,
                        scenario=task.scenario,
                        status="error",
                        seconds=time.perf_counter() - task_start,
                        attempt=task.attempt,
                    )
                    sink.flush()
                result_queue.put(("err", worker_id, task.index, traceback.format_exc()))
                continue  # stay alive; the parent decides (it raises)
            seconds = time.perf_counter() - task_start
            busy_seconds += seconds
            tasks_done += 1
            if sink is not None:
                sink.emit(
                    "task",
                    task=task.index,
                    worker=worker_id,
                    method=task.method,
                    scenario=task.scenario,
                    status="ok",
                    seconds=seconds,
                    attempt=task.attempt,
                )
                sink.flush()
            result_queue.put(("ok", worker_id, task.index, result))
    finally:
        if sink is not None:
            total = time.perf_counter() - started
            sink.emit(
                "worker_end",
                worker=worker_id,
                busy_seconds=busy_seconds,
                idle_seconds=max(0.0, total - busy_seconds),
                tasks_done=tasks_done,
            )
            sink.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def _build_worlds(
    tasks: list[ExperimentTask], dataset: CrossDomainDataset | None
) -> dict[tuple, CrossDomainDataset]:
    """Generate (or adopt) each distinct world exactly once."""
    worlds: dict[tuple, CrossDomainDataset] = {}
    for task in tasks:
        key = task.world_key()
        if key in worlds:
            continue
        if dataset is not None:
            worlds[key] = dataset
        else:
            worlds[key] = generate_scenario(
                task.dataset_name,
                task.source,
                task.target,
                **dict(task.generator_overrides),
            )
    return worlds


def _build_store(
    dataset: CrossDomainDataset, train_fraction: float, trial_seed: int,
    config: OmniMatchConfig | None,
) -> DocumentStore:
    cfg = _doc_config(config)
    split = cold_start_split(dataset, train_fraction=train_fraction, seed=trial_seed)
    return DocumentStore(
        dataset, split, doc_len=cfg.doc_len, vocab_size=cfg.vocab_size, field=cfg.field
    )


def _store_key(task: ExperimentTask, trial_seed: int) -> tuple:
    cfg = _doc_config(task.config)
    return (
        task.world_key(), task.train_fraction, trial_seed,
        cfg.doc_len, cfg.vocab_size, cfg.field,
    )


def _run_inline(
    tasks: list[ExperimentTask],
    worlds: dict[tuple, CrossDomainDataset],
    telemetry_dir,
    share_documents: bool,
) -> "list[ExperimentResult]":
    """Single-process execution with the same world/store amortization."""
    from ..eval.protocol import run_experiment

    sink = TelemetrySink(telemetry_dir) if telemetry_dir is not None else None
    stores: dict[tuple, DocumentStore] = {}
    results = []
    try:
        for task in tasks:
            world = worlds[task.world_key()]

            def store_provider(ds, split, trial_seed, _task=task, _world=world):
                if not share_documents or _task.method not in _STORE_METHODS:
                    return None
                key = _store_key(_task, trial_seed)
                if key not in stores:
                    stores[key] = _build_store(
                        _world, _task.train_fraction, trial_seed, _task.config
                    )
                return stores[key]

            results.append(
                run_experiment(
                    task.method,
                    task.dataset_name,
                    task.source,
                    task.target,
                    trials=task.trials,
                    train_fraction=task.train_fraction,
                    seed=task.seed,
                    config=task.config,
                    dataset=world,
                    telemetry=sink,
                    trial_offset=task.trial_offset,
                    emit_summary=task.emit_summary,
                    store_provider=store_provider,
                )
            )
    finally:
        if sink is not None:
            sink.close()
    return results


def run_tasks(
    tasks: "list[ExperimentTask]",
    *,
    workers: int = 0,
    telemetry_dir=None,
    dataset: CrossDomainDataset | None = None,
    max_task_retries: int = 2,
    start_method: str | None = None,
    share_documents: bool = True,
    kill_plan: "WorkerKillPlan | None" = None,
) -> "list[ExperimentResult]":
    """Execute ``tasks``; returns one result per task, in task order.

    ``workers < 2`` runs inline (no processes, no shared memory) but with
    the same world/store amortization, so the two modes differ only in
    transport — never in numbers. ``dataset`` short-circuits world
    generation when the caller already owns the world (trial fan-out).
    ``kill_plan`` is a test hook injecting deterministic worker deaths.
    """
    if len({task.index for task in tasks}) != len(tasks):
        raise ValueError("task indexes must be unique")
    worlds = _build_worlds(tasks, dataset)
    if workers < 2:
        return _run_inline(tasks, worlds, telemetry_dir, share_documents)

    packs: list[ShmPack] = []
    dataset_refs: dict[tuple, SharedDatasetRef] = {}
    store_refs: dict[tuple, SharedStoreRef] = {}
    states: dict[int, _WorkerState] = {}
    ctx = multiprocessing.get_context(start_method)
    result_queue = ctx.Queue()

    from ..nn.tensor import fast_math_enabled, get_default_dtype

    worker_args = (
        telemetry_dir,
        str(get_default_dtype()),
        fast_math_enabled(),
        kill_plan,
    )

    def spawn(worker_id: int, generation: int) -> _WorkerState:
        task_queue = ctx.Queue()
        process = ctx.Process(
            target=_worker_main,
            args=(worker_id, generation, task_queue, result_queue, *worker_args),
            daemon=True,
        )
        process.start()
        return _WorkerState(process=process, task_queue=task_queue, generation=generation)

    def payload_for(task: ExperimentTask) -> _TaskPayload:
        refs = tuple(
            (trial_seed, store_refs[_store_key(task, trial_seed)])
            for trial_seed in _trial_seeds(task)
            if _store_key(task, trial_seed) in store_refs
        )
        return _TaskPayload(
            task=task, dataset_ref=dataset_refs[task.world_key()], store_refs=refs
        )

    try:
        # Publish every world once; build + publish document matrices for
        # the (world, split) pairs that store-consuming tasks will need.
        for key, world in worlds.items():
            pack, ref = publish_dataset(world)
            packs.append(pack)
            dataset_refs[key] = ref
        if share_documents:
            for task in tasks:
                if task.method not in _STORE_METHODS:
                    continue
                for trial_seed in _trial_seeds(task):
                    key = _store_key(task, trial_seed)
                    if key in store_refs:
                        continue
                    store = _build_store(
                        worlds[task.world_key()], task.train_fraction,
                        trial_seed, task.config,
                    )
                    pack, ref = publish_document_matrices(store)
                    packs.append(pack)
                    store_refs[key] = ref

        pending: deque[ExperimentTask] = deque(tasks)
        results: dict[int, "ExperimentResult"] = {}
        for worker_id in range(workers):
            states[worker_id] = spawn(worker_id, generation=0)

        def handle(message) -> None:
            kind, worker_id, task_index, data = message
            state = states.get(worker_id)
            if state is not None and state.in_flight is not None \
                    and state.in_flight.index == task_index:
                state.in_flight = None
            if kind == "ok":
                results[task_index] = data
            else:
                raise ParallelExecutionError(
                    f"task {task_index} raised in worker {worker_id} "
                    f"(exceptions are deterministic; not retried):\n{data}"
                )

        while len(results) < len(tasks):
            for state in states.values():
                if state.in_flight is None and pending and state.process.is_alive():
                    task = pending.popleft()
                    state.in_flight = task
                    state.task_queue.put(payload_for(task))
            try:
                handle(result_queue.get(timeout=0.2))
                continue
            except queue_module.Empty:
                pass
            for worker_id, state in list(states.items()):
                if state.process.is_alive():
                    continue
                # The worker may have posted a result just before dying;
                # drain before declaring its in-flight task lost.
                while True:
                    try:
                        handle(result_queue.get_nowait())
                    except queue_module.Empty:
                        break
                if state.in_flight is not None:
                    task = state.in_flight
                    if task.index not in results:
                        retry = dataclasses.replace(task, attempt=task.attempt + 1)
                        if retry.attempt > max_task_retries:
                            raise ParallelExecutionError(
                                f"task {task.index} ({task.method}, {task.scenario}) "
                                f"lost {retry.attempt} workers; giving up after "
                                f"{max_task_retries} retries"
                            )
                        pending.appendleft(retry)
                    state.in_flight = None
                if pending or len(results) < len(tasks):
                    states[worker_id] = spawn(worker_id, state.generation + 1)
                else:
                    del states[worker_id]

        # Graceful shutdown so worker_end events land in the shards.
        for state in states.values():
            state.task_queue.put(None)
        for state in states.values():
            state.process.join(timeout=10)
        if telemetry_dir is not None:
            from ..obs import merge_shards

            merge_shards(telemetry_dir)
        return [results[task.index] for task in tasks]
    finally:
        for state in states.values():
            if state.process.is_alive():
                state.process.terminate()
                state.process.join(timeout=2)
        for pack in packs:
            pack.unlink()
