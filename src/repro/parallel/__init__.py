"""Deterministic multiprocess experiment execution.

``repro.parallel`` fans experiment cells (and trials within a cell)
across a pool of worker processes with bit-identical results to serial
execution. Bulk data — generated datasets and document matrices —
travels through ``multiprocessing.shared_memory`` segments published
once by the parent (:mod:`~repro.parallel.shm`,
:mod:`~repro.parallel.sharing`); supervision, crash recovery and
telemetry sharding live in :mod:`~repro.parallel.engine` for finite task
batches, :mod:`~repro.parallel.pool` for dynamically submitted,
cancelable/preemptible tasks (the hyperparameter tuner's substrate), and
:mod:`~repro.parallel.supervisor` for long-lived request loops (the
serving daemon's fleet).
"""

from .engine import ExperimentTask, ParallelExecutionError, run_tasks
from .pool import TaskContext, TaskOutcome, TaskPool, TaskPoolError
from .sharing import (
    SharedDatasetRef,
    SharedStoreRef,
    attach_dataset,
    attach_document_store,
    publish_dataset,
    publish_document_matrices,
)
from .shm import (
    AttachedPack,
    ShmLayout,
    ShmPack,
    ShmRef,
    attach,
    install_signal_cleanup,
    live_segments,
    pack_strings,
    unpack_strings,
)
from .supervisor import WorkerDeath, WorkerSupervisor

__all__ = [
    "ExperimentTask",
    "ParallelExecutionError",
    "run_tasks",
    "TaskContext",
    "TaskOutcome",
    "TaskPool",
    "TaskPoolError",
    "SharedDatasetRef",
    "SharedStoreRef",
    "publish_dataset",
    "attach_dataset",
    "publish_document_matrices",
    "attach_document_store",
    "ShmLayout",
    "ShmRef",
    "ShmPack",
    "AttachedPack",
    "attach",
    "install_signal_cleanup",
    "live_segments",
    "pack_strings",
    "unpack_strings",
    "WorkerDeath",
    "WorkerSupervisor",
]
