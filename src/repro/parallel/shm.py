"""Shared-memory array packs: publish numpy arrays once, map them anywhere.

The parallel engine moves two kinds of bulk data from the parent to its
workers: generated datasets (review text re-encoded as byte buffers) and
:class:`~repro.data.batching.DocumentMatrices` (contiguous ``int32``
document tensors). Pickling either through a task queue would copy the
bytes once per task; instead the parent publishes each blob exactly once
into a ``multiprocessing.shared_memory`` segment and tasks carry only a
:class:`ShmRef` — the segment name plus an array layout — from which any
worker reconstructs zero-copy numpy views.

Lifecycle contract
------------------
* The **parent** owns every segment: it creates them via
  :meth:`ShmPack.publish` and must :meth:`ShmPack.unlink` them (the engine
  does so per world as soon as the world's last task completes, and again
  in its ``finally`` block).
* **Workers** only :func:`attach`; an attached pack must be closed but
  never unlinked.
* Every created segment is recorded in a module-level registry and an
  ``atexit`` hook unlinks leftovers, so even an abnormal parent exit (a
  raised :class:`~repro.parallel.engine.ParallelExecutionError`, a test
  failure) leaves nothing behind in ``/dev/shm``. The first
  :meth:`ShmPack.publish` additionally installs SIGTERM/SIGINT handlers
  (:func:`install_signal_cleanup`) that run the same sweep before the
  signal's previous behavior resumes — ``atexit`` never fires for a
  signal-killed daemon, and a long-lived publisher must not leak on
  ``kill``.

On Python < 3.13 a child process that merely attaches a segment would
still register it with its ``resource_tracker``, which then unlinks the
segment when the child exits — destroying data the parent still serves to
other workers. :func:`attach` suppresses that attach-time registration
entirely to preserve single-owner semantics (3.13+ has ``track=False``
for the same purpose).
"""

from __future__ import annotations

import atexit
import os
import secrets
import signal
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "ShmLayout",
    "ShmRef",
    "ShmPack",
    "AttachedPack",
    "attach",
    "install_signal_cleanup",
    "live_segments",
    "pack_strings",
    "unpack_strings",
]

_ALIGN = 64

#: Names of segments created (and not yet unlinked) by this process.
_LIVE_SEGMENTS: set[str] = set()


def live_segments() -> frozenset[str]:
    """Segments this process created and has not unlinked yet."""
    return frozenset(_LIVE_SEGMENTS)


def _cleanup_at_exit() -> None:  # pragma: no cover - exercised via subprocess
    for name in list(_LIVE_SEGMENTS):
        try:
            segment = shared_memory.SharedMemory(name=name)
            segment.close()
            segment.unlink()
        except FileNotFoundError:
            pass
        except OSError:
            pass
        _LIVE_SEGMENTS.discard(name)


atexit.register(_cleanup_at_exit)

#: Original handlers captured by :func:`install_signal_cleanup`.
_SIGNAL_PREVIOUS: dict[int, object] = {}


def _signal_cleanup_handler(signum, frame) -> None:  # pragma: no cover - subprocess
    """Unlink live segments, then resume the signal's previous behavior."""
    _cleanup_at_exit()
    previous = _SIGNAL_PREVIOUS.get(signum)
    if callable(previous):
        previous(signum, frame)
        return
    if previous is signal.SIG_IGN:
        return
    # SIG_DFL (or unknown): restore the default disposition and re-raise so
    # the process still dies with the correct termination status.
    signal.signal(signum, signal.SIG_DFL)
    os.kill(os.getpid(), signum)


def install_signal_cleanup() -> bool:
    """Unlink live segments on SIGTERM/SIGINT, not just at interpreter exit.

    The ``atexit`` sweep only runs on a *normal* exit; a daemon killed with
    SIGTERM (the default disposition simply terminates the process) would
    leak every segment it published into ``/dev/shm``. This installs
    handlers that run the sweep and then chain to the signal's previous
    behavior — a prior Python handler is called, ``SIG_DFL`` is restored
    and the signal re-raised so the exit status stays honest.

    Idempotent. Signal handlers can only be installed from the main
    thread; returns ``True`` when the handlers are (already) in place and
    ``False`` when installation was not possible (non-main thread), in
    which case only the ``atexit`` sweep protects the process.
    """
    if _SIGNAL_PREVIOUS:
        return True
    if threading.current_thread() is not threading.main_thread():
        return False
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous = signal.getsignal(signum)
            signal.signal(signum, _signal_cleanup_handler)
        except (ValueError, OSError):  # pragma: no cover - exotic contexts
            return False
        _SIGNAL_PREVIOUS[signum] = previous
    return True


@dataclass(frozen=True)
class ShmLayout:
    """Placement of one array inside a segment."""

    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ShmRef:
    """Picklable handle to a published pack: segment name + array layouts."""

    name: str
    arrays: tuple[tuple[str, ShmLayout], ...]

    def nbytes(self) -> int:
        """Total payload bytes described by the layout."""
        return sum(
            int(np.dtype(layout.dtype).itemsize) * int(np.prod(layout.shape, dtype=np.int64))
            for _, layout in self.arrays
        )


def _aligned(size: int) -> int:
    return (size + _ALIGN - 1) // _ALIGN * _ALIGN


def _open_attached(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting tracker ownership."""
    try:
        segment = shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        # Suppress the attach-time registration rather than undoing it
        # afterwards: forked workers all talk to the parent's tracker, whose
        # name cache is a *set* — register/unregister pairs from two workers
        # interleave as add, add(no-op), remove, remove(KeyError). Not
        # sending either message keeps the parent's registration intact.
        # Workers attach from their main thread only, so the swap is safe.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        try:
            segment = shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original_register  # type: ignore[assignment]
    return segment


class ShmPack:
    """A set of named numpy arrays published into one shared segment."""

    def __init__(self, segment: shared_memory.SharedMemory, ref: ShmRef) -> None:
        self._segment = segment
        self.ref = ref
        self._unlinked = False

    @classmethod
    def publish(cls, arrays: dict[str, np.ndarray], prefix: str = "repro") -> "ShmPack":
        """Copy ``arrays`` into a fresh shared segment (one copy, ever)."""
        layouts: list[tuple[str, ShmLayout]] = []
        offset = 0
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            layouts.append(
                (name, ShmLayout(array.dtype.str, tuple(array.shape), offset))
            )
            offset = _aligned(offset + array.nbytes)
        install_signal_cleanup()  # publishers must survive SIGTERM unleaked
        segment_name = f"{prefix}-{os.getpid()}-{secrets.token_hex(4)}"
        segment = shared_memory.SharedMemory(
            name=segment_name, create=True, size=max(1, offset)
        )
        _LIVE_SEGMENTS.add(segment.name)
        for (name, layout), array in zip(layouts, arrays.values()):
            array = np.ascontiguousarray(array)
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=segment.buf, offset=layout.offset
            )
            view[...] = array
        return cls(segment, ShmRef(name=segment.name, arrays=tuple(layouts)))

    def close(self) -> None:
        """Drop this process's mapping (the segment itself stays published)."""
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - live views still exported
            pass

    def unlink(self) -> None:
        """Destroy the segment (idempotent); only the publisher may call this."""
        if self._unlinked:
            return
        self.close()
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass
        self._unlinked = True
        _LIVE_SEGMENTS.discard(self.ref.name)


class AttachedPack:
    """Read-only zero-copy views over a pack published by another process."""

    def __init__(self, ref: ShmRef) -> None:
        self.ref = ref
        self._segment = _open_attached(ref.name)
        self.arrays: dict[str, np.ndarray] = {}
        for name, layout in ref.arrays:
            view = np.ndarray(
                layout.shape,
                dtype=np.dtype(layout.dtype),
                buffer=self._segment.buf,
                offset=layout.offset,
            )
            view.flags.writeable = False
            self.arrays[name] = view

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def close(self) -> None:
        """Release the mapping. Views obtained earlier must not be used after."""
        self.arrays = {}
        try:
            self._segment.close()
        except BufferError:
            # Some views are still alive (e.g. matrices kept by a fitted
            # model); the mapping is released when they are garbage collected.
            pass


def attach(ref: ShmRef) -> AttachedPack:
    """Map a published pack into this process (zero-copy, read-only)."""
    return AttachedPack(ref)


# ----------------------------------------------------------------------
# String columns
# ----------------------------------------------------------------------
def pack_strings(values: list[str]) -> tuple[np.ndarray, np.ndarray]:
    """Encode a string column as (utf-8 byte buffer, int64 offsets).

    ``offsets`` has ``len(values) + 1`` entries; value ``i`` spans
    ``buffer[offsets[i]:offsets[i + 1]]``.
    """
    encoded = [value.encode("utf-8") for value in values]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    np.cumsum([len(chunk) for chunk in encoded], out=offsets[1:])
    buffer = np.frombuffer(b"".join(encoded), dtype=np.uint8).copy()
    return buffer, offsets


def unpack_strings(buffer: np.ndarray, offsets: np.ndarray) -> list[str]:
    """Inverse of :func:`pack_strings`."""
    data = buffer.tobytes()
    return [
        data[offsets[i] : offsets[i + 1]].decode("utf-8")
        for i in range(len(offsets) - 1)
    ]
