"""Columnar shared-memory encodings of datasets and document matrices.

A :class:`~repro.data.records.CrossDomainDataset` is a pair of review
lists — Python objects that would otherwise be pickled into every worker
task. :func:`publish_dataset` lowers each domain to five flat columns
(user ids, item ids, ratings, summaries, texts — strings as byte buffers
with offset arrays) inside one :class:`~repro.parallel.shm.ShmPack`;
:func:`attach_dataset` rebuilds an equal dataset in the worker from
zero-copy views. Review order is preserved exactly, so every derived
index (``by_user``, ``like_minded``) and every seeded RNG draw over the
reviews is bit-identical to the parent's — the determinism contract of
the parallel engine rests on this.

:func:`publish_document_matrices` does the same for a built
:class:`~repro.data.batching.DocumentMatrices` plus its vocabulary, so
workers can construct a :meth:`DocumentStore.from_matrices
<repro.data.batching.DocumentStore.from_matrices>` store without
re-tokenizing or re-encoding the corpus.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import numpy as np

from ..data.batching import DocumentMatrices, DocumentStore
from ..data.records import CrossDomainDataset, DomainData, Review
from ..data.split import ColdStartSplit
from ..text import Vocabulary
from .shm import ShmPack, ShmRef, attach, pack_strings, unpack_strings

__all__ = [
    "SharedDatasetRef",
    "SharedStoreRef",
    "publish_dataset",
    "attach_dataset",
    "publish_document_matrices",
    "attach_document_store",
]

_DOMAIN_COLUMNS = ("users", "items", "ratings", "summaries", "texts")


@dataclass(frozen=True)
class SharedDatasetRef:
    """Picklable handle to a published dataset."""

    shm: ShmRef
    source_name: str
    target_name: str
    metadata_pickle: bytes


@dataclass(frozen=True)
class SharedStoreRef:
    """Picklable handle to published document matrices + vocabulary."""

    shm: ShmRef
    doc_len: int
    vocab_size: int
    field: str


def _domain_arrays(domain: DomainData, side: str) -> dict[str, np.ndarray]:
    reviews = domain.reviews
    arrays: dict[str, np.ndarray] = {}
    for column, values in (
        ("users", [r.user_id for r in reviews]),
        ("items", [r.item_id for r in reviews]),
        ("summaries", [r.summary for r in reviews]),
        ("texts", [r.text for r in reviews]),
    ):
        buffer, offsets = pack_strings(values)
        arrays[f"{side}.{column}.bytes"] = buffer
        arrays[f"{side}.{column}.offsets"] = offsets
    arrays[f"{side}.ratings"] = np.array([r.rating for r in reviews], dtype=np.float64)
    return arrays


def publish_dataset(dataset: CrossDomainDataset, prefix: str = "repro-ds") -> tuple[ShmPack, SharedDatasetRef]:
    """Publish ``dataset`` into shared memory; returns (owned pack, ref)."""
    arrays: dict[str, np.ndarray] = {}
    arrays.update(_domain_arrays(dataset.source, "source"))
    arrays.update(_domain_arrays(dataset.target, "target"))
    pack = ShmPack.publish(arrays, prefix=prefix)
    ref = SharedDatasetRef(
        shm=pack.ref,
        source_name=dataset.source.name,
        target_name=dataset.target.name,
        metadata_pickle=pickle.dumps(dataset.metadata),
    )
    return pack, ref


def _rebuild_domain(name: str, arrays: dict[str, np.ndarray], side: str) -> DomainData:
    columns = {
        column: unpack_strings(
            arrays[f"{side}.{column}.bytes"], arrays[f"{side}.{column}.offsets"]
        )
        for column in ("users", "items", "summaries", "texts")
    }
    ratings = arrays[f"{side}.ratings"]
    reviews = [
        Review(
            user_id=columns["users"][i],
            item_id=columns["items"][i],
            rating=float(ratings[i]),
            summary=columns["summaries"][i],
            text=columns["texts"][i],
        )
        for i in range(len(ratings))
    ]
    return DomainData(name, reviews)


def attach_dataset(ref: SharedDatasetRef) -> CrossDomainDataset:
    """Rebuild an equal :class:`CrossDomainDataset` from a published ref.

    The string columns are decoded into regular Python objects (reviews
    must outlive the mapping), so the attachment is closed before
    returning — no segment handles leak into the caller.
    """
    pack = attach(ref.shm)
    try:
        source = _rebuild_domain(ref.source_name, pack.arrays, "source")
        target = _rebuild_domain(ref.target_name, pack.arrays, "target")
    finally:
        pack.close()
    return CrossDomainDataset(
        source=source, target=target, metadata=pickle.loads(ref.metadata_pickle)
    )


# ----------------------------------------------------------------------
# Document matrices
# ----------------------------------------------------------------------
def publish_document_matrices(
    store: DocumentStore, prefix: str = "repro-docs"
) -> tuple[ShmPack, SharedStoreRef]:
    """Publish a built store's matrices + vocabulary into shared memory."""
    matrices = store.build_matrices()
    vocab_bytes, vocab_offsets = pack_strings(store.vocab.tokens)
    pack = ShmPack.publish(
        {
            "source": matrices.source,
            "target": matrices.target,
            "target_valid": matrices.target_valid,
            "items": matrices.items,
            "vocab.bytes": vocab_bytes,
            "vocab.offsets": vocab_offsets,
        },
        prefix=prefix,
    )
    ref = SharedStoreRef(
        shm=pack.ref,
        doc_len=store.doc_len,
        vocab_size=store.vocab_size,
        field=store.field,
    )
    return pack, ref


def attach_document_store(
    ref: SharedStoreRef, dataset: CrossDomainDataset, split: ColdStartSplit
) -> DocumentStore:
    """Build a :class:`DocumentStore` over shared matrices (zero-copy).

    The int32 document tensors stay mapped in the segment — the returned
    store's :class:`DocumentMatrices` are read-only views, so the mapping
    must outlive the store; it is kept on ``store.attached_pack`` and the
    caller may ``close()`` it once the store (and anything holding its
    matrices) is discarded. Slot tables are recomputed locally (they are
    deterministic functions of the dataset), and the vocabulary is rebuilt
    from the published token list.
    """
    pack = attach(ref.shm)
    vocab = Vocabulary(unpack_strings(pack["vocab.bytes"], pack["vocab.offsets"]))
    users = sorted(dataset.source.users | dataset.target.users)
    items = sorted(dataset.target.items)
    matrices = DocumentMatrices(
        user_slots={user_id: slot for slot, user_id in enumerate(users)},
        item_slots={item_id: slot for slot, item_id in enumerate(items)},
        source=pack["source"],
        target=pack["target"],
        target_valid=pack["target_valid"],
        items=pack["items"],
    )
    store = DocumentStore.from_matrices(
        dataset,
        split,
        matrices=matrices,
        vocab=vocab,
        doc_len=ref.doc_len,
        vocab_size=ref.vocab_size,
        field=ref.field,
    )
    store.attached_pack = pack
    return store
