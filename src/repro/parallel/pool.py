"""Generic preemptible task pool over supervised worker processes.

:mod:`repro.parallel.engine` executes a *fixed batch* of experiment cells;
the pool generalizes the same supervision machinery (private per-worker
task queues, a shared result queue, liveness polling, death → requeue with
a bounded attempt budget, per-worker telemetry shards) to **dynamically
submitted, cancelable tasks** — what a scheduler that makes decisions
between waves of work (the ASHA tuner) needs:

* ``submit(fn, *args, **kwargs)`` enqueues a call of a module-level
  function; the pool invokes it as ``fn(ctx, *args, **kwargs)`` where
  ``ctx`` is a :class:`TaskContext` carrying the task coordinates, the
  worker's telemetry sink, and a ``should_stop`` callable;
* ``cancel(index)`` removes a still-pending task outright, or — when the
  task is already running — flips a shared per-worker cancel cell that the
  task's ``should_stop`` hook observes, requesting a *cooperative* stop
  (the trainer's ``stop_check`` checkpoints and exits at the next epoch
  boundary). The cell stores the **task index**, so a stale cancel can
  never leak into the worker's next task: requeue-safe accounting;
* a worker that dies mid-task is detected by liveness polling, its task
  requeued with ``attempt + 1`` (bounded by ``max_task_retries``) and a
  replacement spawned with a bumped generation — unless the task had a
  cancel pending, in which case its death *is* the cancellation.

``workers < 2`` runs every task inline in submission order — no processes,
no shared memory, same outcomes — so callers get a zero-dependency mode
for tests and tiny runs. Telemetry (when ``telemetry_dir`` is given) is
sharded exactly like the engine's: each worker (and the inline loop)
writes ``run-w<id>g<gen>.jsonl``; the caller merges shards when *it* is
done writing its own (:func:`repro.obs.merge_shards`).

Exceptions raised by a task are deterministic, so they are never retried:
the outcome carries the traceback and :meth:`TaskPool.drain` raises
:class:`TaskPoolError` (unless told to collect errors instead).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import queue as queue_module
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from ..obs import TelemetrySink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults import WorkerKillPlan

__all__ = ["TaskContext", "TaskOutcome", "TaskPool", "TaskPoolError"]

#: ``cancel_cell`` value meaning "no cancellation requested".
_NO_CANCEL = -1


class TaskPoolError(RuntimeError):
    """A task raised, or exhausted its worker-death retry budget."""


@dataclass(frozen=True)
class TaskContext:
    """Coordinates and hooks handed to a task function as its first argument.

    ``should_stop`` returns ``True`` once the parent has requested this
    task's cancellation; long-running tasks poll it at safe stopping
    points (the trainer accepts it directly as ``fit(stop_check=...)``).
    ``sink`` is the worker's telemetry shard (or ``None``).
    """

    index: int
    attempt: int
    worker: int
    generation: int
    should_stop: Callable[[], bool]
    sink: "TelemetrySink | None"


@dataclass
class TaskOutcome:
    """Terminal state of one submitted task.

    ``status`` is ``"ok"`` (value holds the function's return),
    ``"cancelled"`` (never ran, or died while a cancel was pending), or
    ``"error"`` (``error`` holds the traceback). ``cancel_requested``
    records that :meth:`TaskPool.cancel` was called for the task even when
    it still completed — a cooperative stop returns normally, so the
    *caller* decides what a preempted result means.
    """

    index: int
    status: str
    value: Any = None
    error: str | None = None
    worker: int | None = None
    generation: int | None = None
    attempt: int = 0
    seconds: float = 0.0
    cancel_requested: bool = False


@dataclass(frozen=True)
class _PoolPayload:
    """What travels over a worker's task queue."""

    index: int
    fn: Callable
    args: tuple
    kwargs: tuple[tuple[str, Any], ...]
    attempt: int = 0


@dataclass
class _PoolWorker:
    process: multiprocessing.Process
    task_queue: "multiprocessing.Queue"
    cancel_cell: Any  # multiprocessing.Value('q')
    generation: int
    in_flight: _PoolPayload | None = None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _pool_worker_main(
    worker_id: int,
    generation: int,
    task_queue,
    result_queue,
    cancel_cell,
    telemetry_dir,
    default_dtype: str,
    fast_math: bool,
    kill_plan: "WorkerKillPlan | None",
) -> None:
    """Worker loop: pull payloads until the ``None`` sentinel arrives."""
    from ..nn.tensor import set_default_dtype, set_fast_math

    # Mirror the parent's numeric configuration (see engine._worker_main).
    set_default_dtype(default_dtype)
    set_fast_math(fast_math)

    sink = None
    if telemetry_dir is not None:
        sink = TelemetrySink(
            telemetry_dir,
            filename=f"run-w{worker_id}g{generation}.jsonl",
            run_id=f"w{worker_id}g{generation}",
        )
        sink.emit("worker_start", worker=worker_id, generation=generation, pid=os.getpid())
        sink.flush()

    started = time.perf_counter()
    busy_seconds = 0.0
    tasks_done = 0
    try:
        while True:
            payload = task_queue.get()
            if payload is None:
                break
            if kill_plan is not None and kill_plan.should_kill(
                payload.index, payload.attempt
            ):
                # Abrupt death — after draining this process's result-queue
                # feeder thread (dying while it holds the shared write lock
                # would wedge every other worker).
                result_queue.close()
                result_queue.join_thread()
                os._exit(kill_plan.EXIT_CODE)

            def should_stop(index=payload.index) -> bool:
                return cancel_cell.value == index

            ctx = TaskContext(
                index=payload.index,
                attempt=payload.attempt,
                worker=worker_id,
                generation=generation,
                should_stop=should_stop,
                sink=sink,
            )
            task_start = time.perf_counter()
            try:
                value = payload.fn(ctx, *payload.args, **dict(payload.kwargs))
            except Exception:
                seconds = time.perf_counter() - task_start
                if sink is not None:
                    sink.emit(
                        "pool_task", task=payload.index, worker=worker_id,
                        status="error", seconds=seconds, attempt=payload.attempt,
                    )
                    sink.flush()
                result_queue.put(
                    ("err", worker_id, payload.index, traceback.format_exc())
                )
            else:
                seconds = time.perf_counter() - task_start
                busy_seconds += seconds
                tasks_done += 1
                if sink is not None:
                    sink.emit(
                        "pool_task", task=payload.index, worker=worker_id,
                        status="ok", seconds=seconds, attempt=payload.attempt,
                    )
                    sink.flush()
                result_queue.put(("ok", worker_id, payload.index, (value, seconds)))
            finally:
                # Clear only our own cancellation: the parent may already
                # have signalled a *different* index for the next task.
                with cancel_cell.get_lock():
                    if cancel_cell.value == payload.index:
                        cancel_cell.value = _NO_CANCEL
    finally:
        if sink is not None:
            total = time.perf_counter() - started
            sink.emit(
                "worker_end",
                worker=worker_id,
                busy_seconds=busy_seconds,
                idle_seconds=max(0.0, total - busy_seconds),
                tasks_done=tasks_done,
            )
            sink.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class TaskPool:
    """Dynamically-fed, cancelable worker pool (see module docstring).

    Use as a context manager; workers are spawned lazily on the first
    :meth:`drain` (so a pool that only ever runs inline never forks).
    """

    def __init__(
        self,
        workers: int = 0,
        *,
        telemetry_dir=None,
        max_task_retries: int = 2,
        start_method: str | None = None,
        kill_plan: "WorkerKillPlan | None" = None,
    ) -> None:
        self.workers = workers
        self.telemetry_dir = telemetry_dir
        self.max_task_retries = max_task_retries
        self.kill_plan = kill_plan
        self._ctx = (
            multiprocessing.get_context(start_method) if workers >= 2 else None
        )
        self._result_queue = self._ctx.Queue() if self._ctx is not None else None
        self._states: dict[int, _PoolWorker] = {}
        self._pending: deque[_PoolPayload] = deque()
        self._outcomes: dict[int, TaskOutcome] = {}
        self._cancel_requested: set[int] = set()
        self._next_index = 0
        self._submitted: set[int] = set()
        self._started = False
        self._closed = False
        self._inline_sink: TelemetrySink | None = None

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "TaskPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Graceful shutdown: sentinel every worker, then reap stragglers."""
        if self._closed:
            return
        self._closed = True
        for state in self._states.values():
            if state.process.is_alive():
                state.task_queue.put(None)
        for state in self._states.values():
            state.process.join(timeout=10)
        for state in self._states.values():
            if state.process.is_alive():
                state.process.terminate()
                state.process.join(timeout=2)
        self._states.clear()
        if self._inline_sink is not None:
            self._inline_sink.close()
            self._inline_sink = None

    # -- submission / cancellation ------------------------------------
    def submit(self, fn: Callable, *args, **kwargs) -> int:
        """Enqueue ``fn(ctx, *args, **kwargs)``; returns the task index."""
        if self._closed:
            raise TaskPoolError("pool is closed")
        index = self._next_index
        self._next_index += 1
        self._pending.append(
            _PoolPayload(
                index=index, fn=fn, args=args, kwargs=tuple(kwargs.items())
            )
        )
        self._submitted.add(index)
        return index

    def cancel(self, index: int) -> str:
        """Request cancellation of task ``index``.

        Returns ``"done"`` (already finished — nothing to do),
        ``"cancelled"`` (was still pending; removed without running),
        ``"signalled"`` (running; its ``should_stop`` now returns True),
        or ``"unknown"`` (never submitted).
        """
        if index not in self._submitted:
            return "unknown"
        if index in self._outcomes:
            return "done"
        for position, payload in enumerate(self._pending):
            if payload.index == index:
                del self._pending[position]
                self._outcomes[index] = TaskOutcome(
                    index=index, status="cancelled", attempt=payload.attempt,
                    cancel_requested=True,
                )
                return "cancelled"
        self._cancel_requested.add(index)
        for state in self._states.values():
            if state.in_flight is not None and state.in_flight.index == index:
                with state.cancel_cell.get_lock():
                    state.cancel_cell.value = index
                return "signalled"
        # Submitted, not finished, not pending, not in flight: the task is
        # between a worker death and its requeue — the requeue handler will
        # see the pending cancel and retire it.
        return "signalled"

    # -- execution ------------------------------------------------------
    def drain(self, *, raise_on_error: bool = True) -> dict[int, TaskOutcome]:
        """Run until every submitted task has an outcome; return them all.

        With ``raise_on_error`` (default) the first ``"error"`` outcome
        raises :class:`TaskPoolError` carrying the worker traceback.
        """
        if self.workers < 2:
            self._drain_inline()
        else:
            self._drain_workers()
        if raise_on_error:
            for outcome in self._outcomes.values():
                if outcome.status == "error":
                    raise TaskPoolError(
                        f"task {outcome.index} raised in worker "
                        f"{outcome.worker} (exceptions are deterministic; "
                        f"not retried):\n{outcome.error}"
                    )
        return dict(self._outcomes)

    def outcome(self, index: int) -> TaskOutcome:
        """The recorded outcome of ``index`` (after :meth:`drain`)."""
        return self._outcomes[index]

    # -- inline mode ----------------------------------------------------
    def _inline_telemetry(self) -> "TelemetrySink | None":
        if self.telemetry_dir is None:
            return None
        if self._inline_sink is None:
            self._inline_sink = TelemetrySink(
                self.telemetry_dir, filename="run-w0g0.jsonl", run_id="w0g0"
            )
            self._inline_sink.emit(
                "worker_start", worker=0, generation=0, pid=os.getpid()
            )
            self._inline_sink.flush()
        return self._inline_sink

    def _drain_inline(self) -> None:
        sink = self._inline_telemetry()
        while self._pending:
            payload = self._pending.popleft()
            ctx = TaskContext(
                index=payload.index, attempt=payload.attempt, worker=0,
                generation=0, should_stop=lambda: False, sink=sink,
            )
            task_start = time.perf_counter()
            try:
                value = payload.fn(ctx, *payload.args, **dict(payload.kwargs))
            except Exception:
                seconds = time.perf_counter() - task_start
                if sink is not None:
                    sink.emit(
                        "pool_task", task=payload.index, worker=0,
                        status="error", seconds=seconds, attempt=payload.attempt,
                    )
                    sink.flush()
                self._outcomes[payload.index] = TaskOutcome(
                    index=payload.index, status="error",
                    error=traceback.format_exc(), worker=0, generation=0,
                    attempt=payload.attempt, seconds=seconds,
                )
            else:
                seconds = time.perf_counter() - task_start
                if sink is not None:
                    sink.emit(
                        "pool_task", task=payload.index, worker=0,
                        status="ok", seconds=seconds, attempt=payload.attempt,
                    )
                    sink.flush()
                self._outcomes[payload.index] = TaskOutcome(
                    index=payload.index, status="ok", value=value, worker=0,
                    generation=0, attempt=payload.attempt, seconds=seconds,
                )

    # -- worker mode ----------------------------------------------------
    def _spawn(self, worker_id: int, generation: int) -> _PoolWorker:
        from ..nn.tensor import fast_math_enabled, get_default_dtype

        task_queue = self._ctx.Queue()
        cancel_cell = self._ctx.Value("q", _NO_CANCEL)
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(
                worker_id, generation, task_queue, self._result_queue,
                cancel_cell, self.telemetry_dir, str(get_default_dtype()),
                fast_math_enabled(), self.kill_plan,
            ),
            daemon=True,
        )
        process.start()
        return _PoolWorker(
            process=process, task_queue=task_queue, cancel_cell=cancel_cell,
            generation=generation,
        )

    def _ensure_started(self) -> None:
        if self._started:
            return
        self._started = True
        for worker_id in range(self.workers):
            self._states[worker_id] = self._spawn(worker_id, generation=0)

    def _handle(self, message) -> None:
        kind, worker_id, task_index, data = message
        state = self._states.get(worker_id)
        if (
            state is not None
            and state.in_flight is not None
            and state.in_flight.index == task_index
        ):
            attempt = state.in_flight.attempt
            generation = state.generation
            state.in_flight = None
        else:  # late result from a worker we already replaced
            attempt = 0
            generation = None
        if task_index in self._outcomes:
            return  # e.g. cancelled while a death-requeue was in flight
        if kind == "ok":
            value, seconds = data
            self._outcomes[task_index] = TaskOutcome(
                index=task_index, status="ok", value=value, worker=worker_id,
                generation=generation, attempt=attempt, seconds=seconds,
                cancel_requested=task_index in self._cancel_requested,
            )
        else:
            self._outcomes[task_index] = TaskOutcome(
                index=task_index, status="error", error=data, worker=worker_id,
                generation=generation, attempt=attempt,
                cancel_requested=task_index in self._cancel_requested,
            )

    def _drain_workers(self) -> None:
        self._ensure_started()
        outstanding = lambda: len(self._submitted) - len(self._outcomes)
        while outstanding():
            for state in self._states.values():
                if (
                    state.in_flight is None
                    and self._pending
                    and state.process.is_alive()
                ):
                    payload = self._pending.popleft()
                    state.in_flight = payload
                    state.task_queue.put(payload)
            try:
                self._handle(self._result_queue.get(timeout=0.2))
                continue
            except queue_module.Empty:
                pass
            for worker_id, state in list(self._states.items()):
                if state.process.is_alive():
                    continue
                # The worker may have posted a result just before dying.
                while True:
                    try:
                        self._handle(self._result_queue.get_nowait())
                    except queue_module.Empty:
                        break
                if state.in_flight is not None:
                    payload = state.in_flight
                    state.in_flight = None
                    if payload.index not in self._outcomes:
                        if payload.index in self._cancel_requested:
                            # The death *is* the cancellation: the caller
                            # asked for this task to stop, so don't requeue.
                            self._outcomes[payload.index] = TaskOutcome(
                                index=payload.index, status="cancelled",
                                worker=worker_id, attempt=payload.attempt,
                                cancel_requested=True,
                            )
                        else:
                            retry = dataclasses.replace(
                                payload, attempt=payload.attempt + 1
                            )
                            if retry.attempt > self.max_task_retries:
                                raise TaskPoolError(
                                    f"task {payload.index} lost {retry.attempt} "
                                    f"workers; giving up after "
                                    f"{self.max_task_retries} retries"
                                )
                            self._pending.appendleft(retry)
                if self._pending or outstanding():
                    self._states[worker_id] = self._spawn(
                        worker_id, state.generation + 1
                    )
                else:
                    del self._states[worker_id]
