"""Generic supervision of long-lived worker processes.

PR 4's parallel engine supervises workers around a *finite task batch*:
spawn, drain the queue, detect deaths, requeue, exit. A serving daemon
needs the same guarantees around an *unbounded request loop* — workers
live until told to stop, deaths must be detected and healed while traffic
keeps flowing, and a wedged worker must be killable without taking the
fleet down. :class:`WorkerSupervisor` factors that lifecycle out of the
engine's one-shot loop so any long-lived pool (the recommendation daemon,
a future tuner) can reuse it.

Design points, inherited from the engine's hard-won lessons:

* **One slot, many generations.** A fleet has a fixed number of worker
  *slots*; each death respawns the same slot with ``generation + 1``, so
  deterministic chaos plans can target ``(slot, generation)`` coordinates
  and telemetry shards never collide.
* **Fresh task queue per generation.** A worker killed mid-``get`` can
  die holding the queue's reader lock; reusing that queue would wedge the
  respawned worker. Every respawn gets a brand-new queue, and the caller
  re-enqueues whatever the dead worker had not completed (the supervisor
  cannot know message semantics, so in-flight tracking stays with the
  caller).
* **The caller polls.** :meth:`check` is cheap (one ``is_alive`` per
  slot) and returns the deaths it healed; call it from a housekeeping
  tick. No background thread is hidden inside the supervisor, so there is
  exactly one place in the host process that reacts to deaths.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["WorkerDeath", "WorkerSupervisor"]


@dataclass(frozen=True)
class WorkerDeath:
    """One detected worker death (already respawned when reported)."""

    slot: int
    generation: int
    exitcode: int | None


@dataclass
class _Slot:
    process: multiprocessing.Process
    task_queue: "multiprocessing.Queue"
    generation: int


class WorkerSupervisor:
    """Own a fixed-size fleet of long-lived worker processes.

    ``target`` is the worker main; ``args_fn(slot, generation, task_queue)``
    builds its argument tuple, so the caller decides what each generation
    receives (queues, shared-memory refs, chaos plans keyed by generation).
    Workers must treat a ``None`` message on their task queue as the stop
    sentinel.
    """

    def __init__(
        self,
        target: Callable,
        args_fn: Callable[[int, int, "multiprocessing.Queue"], Sequence],
        workers: int,
        *,
        context: str | None = "fork",
        daemon: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.target = target
        self.args_fn = args_fn
        self.workers = workers
        self.ctx = multiprocessing.get_context(context)
        self.daemon = daemon
        self._slots: dict[int, _Slot] = {}
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    def _spawn(self, slot: int, generation: int) -> _Slot:
        task_queue = self.ctx.Queue()
        process = self.ctx.Process(
            target=self.target,
            args=tuple(self.args_fn(slot, generation, task_queue)),
            daemon=self.daemon,
        )
        process.start()
        return _Slot(process=process, task_queue=task_queue, generation=generation)

    def start(self) -> None:
        """Spawn generation 0 of every slot (idempotent)."""
        if self._started:
            return
        for slot in range(self.workers):
            self._slots[slot] = self._spawn(slot, generation=0)
        self._started = True

    # ------------------------------------------------------------------
    def alive_count(self) -> int:
        return sum(1 for s in self._slots.values() if s.process.is_alive())

    def generation(self, slot: int) -> int:
        return self._slots[slot].generation

    def pid(self, slot: int) -> int | None:
        return self._slots[slot].process.pid

    def send(self, slot: int, message: object) -> None:
        """Enqueue ``message`` on the slot's *current* task queue."""
        self._slots[slot].task_queue.put(message)

    def broadcast(self, message: object) -> None:
        for slot in self._slots.values():
            slot.task_queue.put(message)

    def kill(self, slot: int) -> None:
        """SIGKILL a slot's current process (stall mitigation; the next
        :meth:`check` heals it like any other death)."""
        process = self._slots[slot].process
        if process.is_alive():
            process.kill()

    # ------------------------------------------------------------------
    def check(self, respawn: bool = True) -> list[WorkerDeath]:
        """Detect dead slots; respawn each with ``generation + 1``.

        Returns the deaths found this call (empty when the fleet is
        healthy). The dead generation's task queue is discarded — callers
        must re-enqueue anything that worker had not completed via
        :meth:`send`, which targets the fresh queue.
        """
        if self._stopped:
            return []
        deaths: list[WorkerDeath] = []
        for slot_id, slot in list(self._slots.items()):
            if slot.process.is_alive():
                continue
            deaths.append(
                WorkerDeath(
                    slot=slot_id,
                    generation=slot.generation,
                    exitcode=slot.process.exitcode,
                )
            )
            slot.process.join(timeout=1)
            # The dead generation's queue may hold undelivered messages and
            # may even be lock-wedged; drop it without joining its feeder.
            slot.task_queue.cancel_join_thread()
            slot.task_queue.close()
            if respawn:
                self._slots[slot_id] = self._spawn(slot_id, slot.generation + 1)
            else:
                del self._slots[slot_id]
        return deaths

    # ------------------------------------------------------------------
    def stop(self, timeout: float = 10.0) -> None:
        """Graceful stop: sentinel every live worker, join, then terminate
        stragglers (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        for slot in self._slots.values():
            if slot.process.is_alive():
                try:
                    slot.task_queue.put(None)
                except (ValueError, OSError):  # queue already closed
                    pass
        for slot in self._slots.values():
            slot.process.join(timeout=timeout)
        for slot in self._slots.values():
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(timeout=2)
            slot.task_queue.cancel_join_thread()
            slot.task_queue.close()
