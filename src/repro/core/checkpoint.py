"""Checkpointing: persist a trained OmniMatch model and reload it later.

A checkpoint stores the model parameters (``.npz``) next to the exact
configuration used to build them. Because the corpus artifacts (vocabulary,
embeddings, auxiliary documents) are deterministic functions of
``(dataset, split, config)``, reloading rebuilds them through
:class:`~repro.core.trainer.OmniMatchTrainer` and then restores the
parameters — so a reloaded predictor reproduces the saved one bit-for-bit
on the same dataset and split.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

from ..data.records import CrossDomainDataset
from ..data.split import ColdStartSplit
from ..nn import load_module, save_module
from .config import OmniMatchConfig
from .trainer import OmniMatchTrainer, TrainResult

__all__ = ["save_checkpoint", "load_checkpoint"]

_CONFIG_FILE = "config.json"
_WEIGHTS_FILE = "weights.npz"


def save_checkpoint(result: TrainResult, directory: str | os.PathLike) -> None:
    """Write ``result``'s model weights and config under ``directory``."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    config = dataclasses.asdict(result.model.config)
    # tuples are not JSON-roundtrippable; mark them for reconstruction
    config["kernel_sizes"] = list(config["kernel_sizes"])
    with open(path / _CONFIG_FILE, "w") as handle:
        json.dump(config, handle, indent=2, sort_keys=True)
    save_module(result.model, path / _WEIGHTS_FILE)


def load_checkpoint(
    directory: str | os.PathLike,
    dataset: CrossDomainDataset,
    split: ColdStartSplit,
) -> TrainResult:
    """Rebuild the corpus artifacts and restore the saved parameters.

    ``dataset`` and ``split`` must be the ones the checkpoint was trained
    on (e.g. regenerated from the same seeds); the vocabulary and frozen
    embeddings are deterministic given those, so the restored model is
    exactly the saved one.
    """
    path = Path(directory)
    with open(path / _CONFIG_FILE) as handle:
        raw = json.load(handle)
    raw["kernel_sizes"] = tuple(raw["kernel_sizes"])
    config = OmniMatchConfig(**raw)

    trainer = OmniMatchTrainer(dataset, split, config)
    load_module(trainer.model, path / _WEIGHTS_FILE)
    trainer.model.eval()
    return TrainResult(
        model=trainer.model,
        store=trainer.store,
        aux_generator=trainer.aux_generator,
        history=[],
    )
