"""Checkpointing: model checkpoints and crash-safe training checkpoints.

Two formats live here.

**Model checkpoints** (:func:`save_checkpoint` / :func:`load_checkpoint`)
store a trained model's parameters (``weights.npz``) next to the exact
configuration used to build them. Because the corpus artifacts (vocabulary,
embeddings, auxiliary documents) are deterministic functions of
``(dataset, split, config)``, reloading rebuilds them through
:class:`~repro.core.trainer.OmniMatchTrainer` and then restores the
parameters — so a reloaded predictor reproduces the saved one bit-for-bit
on the same dataset and split.

**Training checkpoints** (:func:`write_training_checkpoint` /
:func:`read_training_checkpoint`) capture *full* training state at an epoch
boundary — model parameters, optimizer accumulators, the trainer's RNG
bit-generator state, the epoch counter, early-stopping bookkeeping, the
epoch history, and the run-health log — so an interrupted run resumes
bit-identically. The format is versioned and integrity-checked:

* every artifact is written atomically (temp file + fsync + rename);
* ``MANIFEST.json`` is written **last** and carries the SHA-256 digest and
  byte count of every artifact, so a checkpoint is complete if and only if
  a digest-clean manifest exists;
* :func:`read_training_checkpoint` verifies every digest before parsing —
  truncated, bit-flipped, or tampered checkpoints raise
  :class:`CheckpointCorruptionError` instead of loading silently.

Layout of one training checkpoint directory::

    MANIFEST.json        format name/version, epoch, per-file sha256+bytes
    config.json          OmniMatchConfig the run was built with
    weights.npz          model parameters (dotted names)
    optimizer.npz        optimizer buffers, keyed "<buffer>.<param index>"
    trainer_state.json   epoch, RNG state, early stopping, history, health
    best_weights.npz     best-by-validation parameters (only if tracked)
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import warnings
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..atomicio import atomic_write_bytes, sha256_bytes, sha256_file
from ..data.records import CrossDomainDataset
from ..data.split import ColdStartSplit
from ..nn import load_module
from ..nn.serialization import npz_bytes, save_arrays
from ..obs import emit_event
from .config import OmniMatchConfig
from .trainer import EpochStats, HealthEvent, OmniMatchTrainer, TrainResult

__all__ = [
    "CheckpointError",
    "CheckpointCorruptionError",
    "TrainingCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "write_training_checkpoint",
    "read_training_checkpoint",
    "verify_checkpoint",
    "find_latest_checkpoint",
    "prune_checkpoints",
    "checkpoint_directory_name",
]

_CONFIG_FILE = "config.json"
_WEIGHTS_FILE = "weights.npz"
_OPTIMIZER_FILE = "optimizer.npz"
_STATE_FILE = "trainer_state.json"
_BEST_FILE = "best_weights.npz"
_MANIFEST_FILE = "MANIFEST.json"
_EPOCH_DIR_PREFIX = "epoch-"

FORMAT_NAME = "omnimatch-training-checkpoint"
FORMAT_VERSION = 1

#: Artifacts every training checkpoint must carry (best_weights is optional).
_REQUIRED_FILES = (_CONFIG_FILE, _WEIGHTS_FILE, _OPTIMIZER_FILE, _STATE_FILE)


class CheckpointError(RuntimeError):
    """A checkpoint is missing, incomplete, or cannot be interpreted."""


class CheckpointCorruptionError(CheckpointError):
    """A checkpoint exists but fails integrity verification."""


# ----------------------------------------------------------------------
# Config (de)serialization with drift detection
# ----------------------------------------------------------------------
def _config_to_dict(config: OmniMatchConfig) -> dict:
    raw = dataclasses.asdict(config)
    # tuples are not JSON-roundtrippable; mark them for reconstruction
    raw["kernel_sizes"] = list(raw["kernel_sizes"])
    return raw


def _config_from_dict(raw: object, where: str) -> OmniMatchConfig:
    """Rebuild a config, reporting unknown/missing fields by name."""
    if not isinstance(raw, dict):
        raise CheckpointCorruptionError(f"{where}: config is not a JSON object")
    known = {f.name for f in dataclasses.fields(OmniMatchConfig)}
    unknown = sorted(set(raw) - known)
    if unknown:
        raise CheckpointError(
            f"{where}: unknown config field(s): {', '.join(unknown)} — "
            "checkpoint written by a newer or incompatible version?"
        )
    missing = sorted(known - set(raw))
    if missing:
        warnings.warn(
            f"{where}: config field(s) missing, using defaults: "
            f"{', '.join(missing)}",
            RuntimeWarning,
            stacklevel=2,
        )
    data = dict(raw)
    if "kernel_sizes" in data:
        data["kernel_sizes"] = tuple(data["kernel_sizes"])
    try:
        return OmniMatchConfig(**data)
    except (TypeError, ValueError) as error:
        raise CheckpointError(f"{where}: invalid config value: {error}") from error


def _read_json(path: Path, kind: str) -> Any:
    if not path.exists():
        raise CheckpointError(f"{path.parent}: missing {path.name} ({kind})")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise CheckpointCorruptionError(
            f"{path}: invalid JSON in {kind} ({error})"
        ) from error


def _load_npz(path: Path) -> dict[str, np.ndarray]:
    try:
        with np.load(path) as archive:
            return {name: archive[name] for name in archive.files}
    except (zipfile.BadZipFile, ValueError, KeyError, OSError) as error:
        raise CheckpointCorruptionError(
            f"{path}: unreadable npz archive ({error})"
        ) from error


# ----------------------------------------------------------------------
# Model checkpoints (inference-oriented; config + weights only)
# ----------------------------------------------------------------------
def save_checkpoint(result: TrainResult, directory: str | os.PathLike) -> None:
    """Write ``result``'s model weights and config under ``directory``."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    atomic_write_bytes(
        path / _CONFIG_FILE,
        json.dumps(
            _config_to_dict(result.model.config), indent=2, sort_keys=True
        ).encode(),
    )
    save_arrays(path / _WEIGHTS_FILE, result.model.state_dict())


def load_checkpoint(
    directory: str | os.PathLike,
    dataset: CrossDomainDataset,
    split: ColdStartSplit,
) -> TrainResult:
    """Rebuild the corpus artifacts and restore the saved parameters.

    ``dataset`` and ``split`` must be the ones the checkpoint was trained
    on (e.g. regenerated from the same seeds); the vocabulary and frozen
    embeddings are deterministic given those, so the restored model is
    exactly the saved one. Raises :class:`CheckpointError` (not a bare
    traceback) when the directory is not a checkpoint, when ``config.json``
    has drifted (unknown fields are reported by name), or when the weights
    archive is absent or unreadable.
    """
    path = Path(directory)
    if not path.is_dir():
        raise CheckpointError(f"{path}: checkpoint directory does not exist")
    raw = _read_json(path / _CONFIG_FILE, "model config")
    config = _config_from_dict(raw, where=str(path / _CONFIG_FILE))
    weights_path = path / _WEIGHTS_FILE
    if not weights_path.exists():
        raise CheckpointError(
            f"{path}: missing {_WEIGHTS_FILE} — config present but weights "
            "were never written (interrupted save?)"
        )

    trainer = OmniMatchTrainer(dataset, split, config)
    try:
        load_module(trainer.model, weights_path)
    except (zipfile.BadZipFile, ValueError, KeyError, OSError) as error:
        raise CheckpointCorruptionError(
            f"{weights_path}: cannot restore parameters ({error})"
        ) from error
    trainer.model.eval()
    return TrainResult(
        model=trainer.model,
        store=trainer.store,
        aux_generator=trainer.aux_generator,
        history=[],
    )


# ----------------------------------------------------------------------
# JSON-safe encoding of RNG state (ndarrays inside bit-generator dicts)
# ----------------------------------------------------------------------
def _jsonify(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, dict):
        return {key: _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    return value


def _unjsonify(value: Any) -> Any:
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=value["dtype"])
        return {key: _unjsonify(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_unjsonify(item) for item in value]
    return value


# ----------------------------------------------------------------------
# Training checkpoints (full resumable state)
# ----------------------------------------------------------------------
@dataclass
class TrainingCheckpoint:
    """Full training state captured at an epoch boundary."""

    config: OmniMatchConfig
    epoch: int
    model_state: dict[str, np.ndarray]
    optimizer_state: dict
    rng_state: dict
    best_rmse: float = float("inf")
    stale: int = 0
    best_state: dict[str, np.ndarray] | None = None
    history: list[EpochStats] = field(default_factory=list)
    health: list[HealthEvent] = field(default_factory=list)


def checkpoint_directory_name(epoch: int) -> str:
    """Canonical directory name for the checkpoint written after ``epoch``."""
    return f"{_EPOCH_DIR_PREFIX}{epoch:04d}"


def write_training_checkpoint(
    checkpoint: TrainingCheckpoint, directory: str | os.PathLike
) -> Path:
    """Atomically persist a :class:`TrainingCheckpoint` under ``directory``.

    Each artifact is written atomically, and the digest-bearing manifest is
    written last — a crash at any point leaves either no manifest (the
    checkpoint is ignored by :func:`find_latest_checkpoint`) or a complete,
    verifiable checkpoint.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    optimizer = checkpoint.optimizer_state
    optimizer_arrays: dict[str, np.ndarray] = {}
    buffer_counts: dict[str, int] = {}
    for name, arrays in optimizer["buffers"].items():
        buffer_counts[name] = len(arrays)
        for index, array in enumerate(arrays):
            optimizer_arrays[f"{name}.{index}"] = array

    state_payload = {
        "epoch": int(checkpoint.epoch),
        "rng_state": _jsonify(checkpoint.rng_state),
        "best_rmse": (
            float(checkpoint.best_rmse)
            if np.isfinite(checkpoint.best_rmse)
            else None
        ),
        "stale": int(checkpoint.stale),
        "has_best_state": checkpoint.best_state is not None,
        "history": [dataclasses.asdict(stat) for stat in checkpoint.history],
        "health": [dataclasses.asdict(event) for event in checkpoint.health],
        "optimizer": {
            "kind": optimizer["kind"],
            "hyper": _jsonify(optimizer["hyper"]),
            "buffers": buffer_counts,
        },
    }

    blobs: dict[str, bytes] = {
        _CONFIG_FILE: json.dumps(
            _config_to_dict(checkpoint.config), indent=2, sort_keys=True
        ).encode(),
        _WEIGHTS_FILE: npz_bytes(checkpoint.model_state),
        _OPTIMIZER_FILE: npz_bytes(optimizer_arrays),
        _STATE_FILE: json.dumps(state_payload, indent=2, sort_keys=True).encode(),
    }
    if checkpoint.best_state is not None:
        blobs[_BEST_FILE] = npz_bytes(checkpoint.best_state)

    files: dict[str, dict] = {}
    for name, blob in blobs.items():
        atomic_write_bytes(path / name, blob)
        files[name] = {"sha256": sha256_bytes(blob), "bytes": len(blob)}
    manifest = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "epoch": int(checkpoint.epoch),
        "files": files,
    }
    atomic_write_bytes(
        path / _MANIFEST_FILE,
        json.dumps(manifest, indent=2, sort_keys=True).encode(),
    )
    emit_event(
        "checkpoint_write",
        path=str(path),
        epoch=int(checkpoint.epoch),
        files=sorted(files),
        bytes=sum(meta["bytes"] for meta in files.values()),
    )
    return path


def _read_manifest(path: Path) -> dict:
    if not path.is_dir():
        raise CheckpointError(f"{path}: checkpoint directory does not exist")
    manifest_path = path / _MANIFEST_FILE
    if not manifest_path.exists():
        raise CheckpointError(
            f"{path}: no {_MANIFEST_FILE} — not a training checkpoint, or an "
            "interrupted write (the manifest is always written last)"
        )
    manifest = _read_json(manifest_path, "checkpoint manifest")
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
        raise CheckpointError(
            f"{path}: unrecognized checkpoint format "
            f"{manifest.get('format') if isinstance(manifest, dict) else manifest!r}"
        )
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    return manifest


def verify_checkpoint(directory: str | os.PathLike) -> dict:
    """Verify integrity of a training checkpoint; return its manifest.

    Raises :class:`CheckpointError` when the directory is not a checkpoint
    (or uses an unsupported format version) and
    :class:`CheckpointCorruptionError` when any artifact is missing,
    truncated, or fails its SHA-256 digest — naming the offending file.
    """
    path = Path(directory)
    manifest = _read_manifest(path)
    files = manifest.get("files")
    if not isinstance(files, dict):
        raise CheckpointCorruptionError(f"{path}: manifest has no file table")
    lost = sorted(set(_REQUIRED_FILES) - set(files))
    if lost:
        raise CheckpointCorruptionError(
            f"{path}: manifest entries missing for required artifact(s): "
            f"{', '.join(lost)} — manifest tampered or written by a broken tool"
        )
    for name, meta in sorted(files.items()):
        file_path = path / name
        if not file_path.exists():
            raise CheckpointCorruptionError(
                f"{path}: {name} is listed in the manifest but missing on disk"
            )
        size = file_path.stat().st_size
        expected_size = meta.get("bytes")
        if size != expected_size:
            raise CheckpointCorruptionError(
                f"{path}: {name} is {size} bytes but the manifest records "
                f"{expected_size} — truncated or partially overwritten"
            )
        digest = sha256_file(file_path)
        expected = meta.get("sha256", "")
        if digest != expected:
            raise CheckpointCorruptionError(
                f"{path}: {name} failed its SHA-256 check (expected "
                f"{expected[:12]}…, got {digest[:12]}…) — file corrupted"
            )
    return manifest


def read_training_checkpoint(directory: str | os.PathLike) -> TrainingCheckpoint:
    """Load and integrity-check a checkpoint written by
    :func:`write_training_checkpoint`."""
    path = Path(directory)
    manifest = verify_checkpoint(path)

    raw_config = _read_json(path / _CONFIG_FILE, "checkpoint config")
    config = _config_from_dict(raw_config, where=str(path / _CONFIG_FILE))
    state = _read_json(path / _STATE_FILE, "trainer state")
    model_state = _load_npz(path / _WEIGHTS_FILE)
    optimizer_arrays = _load_npz(path / _OPTIMIZER_FILE)

    try:
        optimizer_meta = state["optimizer"]
        buffers: dict[str, list[np.ndarray]] = {}
        for name, count in optimizer_meta["buffers"].items():
            try:
                buffers[name] = [
                    optimizer_arrays[f"{name}.{index}"] for index in range(count)
                ]
            except KeyError as error:
                raise CheckpointCorruptionError(
                    f"{path}: optimizer buffer {error} missing from "
                    f"{_OPTIMIZER_FILE}"
                ) from error
        optimizer_state = {
            "kind": optimizer_meta["kind"],
            "hyper": _unjsonify(optimizer_meta["hyper"]),
            "buffers": buffers,
        }
        best_state: dict[str, np.ndarray] | None = None
        if state["has_best_state"]:
            if _BEST_FILE not in manifest["files"]:
                raise CheckpointCorruptionError(
                    f"{path}: trainer state records a best model but "
                    f"{_BEST_FILE} is absent from the manifest"
                )
            best_state = _load_npz(path / _BEST_FILE)
        best_rmse = state["best_rmse"]
        emit_event("checkpoint_read", path=str(path), epoch=int(state["epoch"]))
        return TrainingCheckpoint(
            config=config,
            epoch=int(state["epoch"]),
            model_state=model_state,
            optimizer_state=optimizer_state,
            rng_state=_unjsonify(state["rng_state"]),
            best_rmse=float("inf") if best_rmse is None else float(best_rmse),
            stale=int(state["stale"]),
            best_state=best_state,
            history=[EpochStats(**stat) for stat in state["history"]],
            health=[HealthEvent(**event) for event in state["health"]],
        )
    except (KeyError, TypeError) as error:
        raise CheckpointCorruptionError(
            f"{path}: malformed trainer state ({error!r})"
        ) from error


def _epoch_checkpoints(run_directory: Path) -> list[tuple[int, Path]]:
    """(epoch, path) pairs for every ``epoch-*`` child, sorted ascending."""
    found: list[tuple[int, Path]] = []
    for child in run_directory.iterdir():
        if not child.is_dir() or not child.name.startswith(_EPOCH_DIR_PREFIX):
            continue
        try:
            epoch = int(child.name[len(_EPOCH_DIR_PREFIX):])
        except ValueError:
            continue
        found.append((epoch, child))
    return sorted(found)


def find_latest_checkpoint(run_directory: str | os.PathLike) -> Path | None:
    """Newest *complete* ``epoch-*`` checkpoint under ``run_directory``.

    Invalid candidates (e.g. a directory abandoned by a crash mid-write, or
    one that later got corrupted) are skipped, never loaded — the scan keeps
    walking backwards until a digest-clean checkpoint is found.
    """
    path = Path(run_directory)
    if not path.is_dir():
        return None
    for _, child in reversed(_epoch_checkpoints(path)):
        try:
            verify_checkpoint(child)
        except CheckpointError:
            continue
        return child
    return None


def prune_checkpoints(
    run_directory: str | os.PathLike, keep_last: int
) -> list[Path]:
    """Delete all but the ``keep_last`` newest ``epoch-*`` checkpoints.

    The ``best`` checkpoint (best-by-validation-RMSE) is never pruned.
    Returns the paths that were *actually* deleted: deletion failures
    (permissions, a file pinned open on some platforms) are verified by
    re-checking existence after the rmtree, reported with a warning, and
    recorded in the ``failed`` field of the ``checkpoint_prune`` event —
    telemetry never claims a deletion that did not happen.
    """
    if keep_last < 1:
        raise ValueError("keep_last must be at least 1")
    path = Path(run_directory)
    if not path.is_dir():
        return []
    doomed = _epoch_checkpoints(path)[:-keep_last]
    removed: list[Path] = []
    failed: list[Path] = []
    for _, child in doomed:
        shutil.rmtree(child, ignore_errors=True)
        if child.exists():
            failed.append(child)
        else:
            removed.append(child)
    if failed:
        warnings.warn(
            f"{path}: could not prune {len(failed)} checkpoint(s): "
            + ", ".join(child.name for child in failed),
            RuntimeWarning,
            stacklevel=2,
        )
    if removed or failed:
        emit_event(
            "checkpoint_prune",
            removed=[str(child) for child in removed],
            failed=[str(child) for child in failed],
            keep_last=int(keep_last),
        )
    return removed
