"""The OmniMatch model (paper Figure 2): extractors + SCL + DA + rating head.

The rating classifier (Eq. 18) is a 5-way MLP over ``r_target (+) r_item``.
Predictions for RMSE/MAE use the probability-weighted expected rating
``sum_k p(k) * k`` rather than the arg-max class, which is the standard way
to turn a rating classifier into a continuous predictor.

Total objective (Eq. 21): ``L = L_rating + alpha * L_SCL + beta * L_domain``.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .adversarial import DomainAdversary
from .config import OmniMatchConfig
from .contrastive import ContrastiveModule
from .extractors import ItemFeatureExtractor, UserFeatureExtractor

__all__ = ["OmniMatchModel", "RATING_VALUES"]

RATING_VALUES = np.array([1.0, 2.0, 3.0, 4.0, 5.0])


class OmniMatchModel(nn.Module):
    """End-to-end OmniMatch network over encoded token documents."""

    def __init__(
        self,
        embedding_table: np.ndarray,
        config: OmniMatchConfig,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.config = config
        rng = rng if rng is not None else np.random.default_rng(config.seed)
        vocab_size, embed_dim = embedding_table.shape
        if embed_dim != config.embed_dim:
            raise ValueError(
                f"embedding table dim {embed_dim} != config.embed_dim {config.embed_dim}"
            )
        # Frozen lookup table (fastText stand-in), shared by all encoders.
        self.embedding = nn.Embedding(
            vocab_size, embed_dim, weights=embedding_table, trainable=False, padding_idx=0
        )
        self.user_extractor = UserFeatureExtractor(self.embedding, config, rng)
        self.item_extractor = ItemFeatureExtractor(self.embedding, config, rng)

        repr_dim = self.user_extractor.representation_dim
        pair_dim = repr_dim + self.item_extractor.output_dim
        self.contrastive = ContrastiveModule(pair_dim, config, rng)
        self.adversary = DomainAdversary(config, rng)
        # Rating head input: [user_repr, r_item, invariant * r_item].
        # The element-wise product gives the MLP direct access to user-item
        # affinity (a la neural collaborative filtering); a pure concat-MLP
        # approximates dot products poorly. In 'dual' mode the user
        # representation carries both extractors' invariant features so the
        # head can weight the (real) source view and the (possibly
        # auxiliary) target view itself.
        if config.cold_inference == "dual":
            user_dim = 2 * config.invariant_dim + config.specific_dim
        else:
            user_dim = repr_dim
        head_dim = user_dim + 2 * self.item_extractor.output_dim
        hidden = max(32, head_dim // 2)
        self.rating_classifier = nn.MLP(
            [head_dim, hidden, len(RATING_VALUES)], rng, dropout=config.dropout
        )

    # ------------------------------------------------------------------
    # Representation helpers
    # ------------------------------------------------------------------
    def user_representations(
        self, source_tokens: np.ndarray, target_tokens: np.ndarray
    ) -> dict[str, nn.Tensor]:
        """Invariant/specific features and combined r_source / r_target."""
        src_inv, src_spec = self.user_extractor.extract_source(source_tokens)
        tgt_inv, tgt_spec = self.user_extractor.extract_target(target_tokens)
        return {
            "source_invariant": src_inv,
            "source_specific": src_spec,
            "target_invariant": tgt_inv,
            "target_specific": tgt_spec,
            "source": UserFeatureExtractor.combine(src_inv, src_spec),
            "target": UserFeatureExtractor.combine(tgt_inv, tgt_spec),
        }

    def rating_logits(
        self, invariant: nn.Tensor, user_repr: nn.Tensor, item_repr: nn.Tensor
    ) -> nn.Tensor:
        """Eq. 18: MLP over user_repr (+) r_item (+) invariant * r_item."""
        interaction = invariant * item_repr
        return self.rating_classifier(
            nn.concat([user_repr, item_repr, interaction], axis=-1)
        )

    def _rating_inputs(
        self,
        source_invariant: nn.Tensor | None,
        target_invariant: nn.Tensor,
        target_specific: nn.Tensor,
    ) -> tuple[nn.Tensor, nn.Tensor]:
        """(invariant-for-interaction, user-representation) per inference mode."""
        mode = self.config.cold_inference
        if mode == "aux_only" or source_invariant is None:
            return target_invariant, UserFeatureExtractor.combine(
                target_invariant, target_specific
            )
        blended = (target_invariant + source_invariant) * 0.5
        if mode == "blend":
            return blended, UserFeatureExtractor.combine(blended, target_specific)
        # dual: head sees both views, interaction uses the blend
        user_repr = nn.concat(
            [source_invariant, target_invariant, target_specific], axis=-1
        )
        return blended, user_repr

    # ------------------------------------------------------------------
    # Training forward
    # ------------------------------------------------------------------
    def compute_losses(
        self,
        source_tokens: np.ndarray,
        target_tokens: np.ndarray,
        item_tokens: np.ndarray,
        rating_classes: np.ndarray,
    ) -> dict[str, nn.Tensor]:
        """All loss terms for one aligned batch of interactions.

        ``rating_classes`` are zero-based class indices (rating - 1).
        Toggled-off modules (Table 5 ablations) contribute a constant zero.
        """
        reps = self.user_representations(source_tokens, target_tokens)
        item_repr = self.item_extractor(item_tokens)
        # Train exactly as we predict: the rating head always receives the
        # mode-specific combination of source/target invariant features.
        invariant, user_repr = self._rating_inputs(
            reps["source_invariant"], reps["target_invariant"], reps["target_specific"]
        )
        logits = self.rating_logits(invariant, user_repr, item_repr)
        loss_rating = nn.cross_entropy(logits, rating_classes)

        if self.config.use_scl:
            loss_scl = self.contrastive(
                reps["source"], reps["target"], item_repr, rating_classes
            )
        else:
            loss_scl = nn.Tensor(0.0)

        if self.config.use_domain_adversarial:
            loss_domain = self.adversary(
                reps["source_invariant"],
                reps["target_invariant"],
                reps["source_specific"],
                reps["target_specific"],
            )
        else:
            loss_domain = nn.Tensor(0.0)

        total = (
            loss_rating
            + self.config.alpha * loss_scl
            + self.config.beta * loss_domain
        )
        return {
            "total": total,
            "rating": loss_rating,
            "scl": loss_scl,
            "domain": loss_domain,
        }

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict_ratings(
        self,
        target_tokens: np.ndarray,
        item_tokens: np.ndarray,
        source_tokens: np.ndarray | None = None,
    ) -> np.ndarray:
        """Expected rating per row: ``sum_k softmax(logits)_k * k``.

        When ``source_tokens`` is given (blend inference for cold-start
        users), the domain-invariant half of the user representation is the
        mean of the target extractor's features over ``target_tokens`` (the
        auxiliary document) and the source extractor's features over
        ``source_tokens`` — the two are aligned by the SCL and DA modules,
        so averaging denoises the auxiliary view with the real source view.
        """
        was_training = self.training
        self.eval()
        try:
            with nn.no_grad():
                tgt_inv, tgt_spec = self.user_extractor.extract_target(target_tokens)
                src_inv = None
                if source_tokens is not None:
                    src_inv, _ = self.user_extractor.extract_source(source_tokens)
                invariant, user_repr = self._rating_inputs(src_inv, tgt_inv, tgt_spec)
                item_repr = self.item_extractor(item_tokens)
                logits = self.rating_logits(invariant, user_repr, item_repr)
                probs = F.softmax(logits, axis=-1).data
        finally:
            self.train(was_training)
        return probs @ RATING_VALUES
