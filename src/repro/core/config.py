"""Configuration for the OmniMatch model and trainer.

Defaults follow the paper's §5.4 implementation details, scaled down for
CPU: the paper uses 300-d fastText embeddings and 200 filters per kernel
size on an A100; we default to 48-d PPMI-SVD embeddings and 32 filters.
The structural hyperparameters — kernel sizes (3, 4, 5), dropout 0.4,
Adadelta(lr=0.02, rho=0.95), temperature 0.07, alpha=0.2, beta=0.1,
batch size 64 — are the paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OmniMatchConfig"]


@dataclass(frozen=True)
class OmniMatchConfig:
    # --- documents
    doc_len: int = 64
    vocab_size: int = 4000
    field: str = "summary"  # 'summary' (paper default) or 'text' (ablation)

    # --- extractors
    extractor: str = "cnn"  # 'cnn' (paper default) or 'transformer' (BERT ablation)
    embed_dim: int = 48
    num_filters: int = 32
    kernel_sizes: tuple[int, ...] = (3, 4, 5)
    pooling: str = "max_mean"  # paper: 'max'; mean pooling added so the
    # extractors can encode feature *frequency* (sentiment mix -> user bias)
    invariant_dim: int = 64
    specific_dim: int = 64
    projection_dim: int = 32
    dropout: float = 0.2  # paper: 0.4; halved for the smaller extractors
    transformer_layers: int = 2
    transformer_heads: int = 4

    # --- losses (paper Eq. 21)
    alpha: float = 0.2  # weight of the supervised contrastive loss
    beta: float = 0.1  # weight of the domain classification loss
    temperature: float = 0.07
    grl_lambda: float = 1.0
    alignment_method: str = "grl"  # 'grl' (paper) or 'mmd' (§4.4 notes the
    # framework accommodates alternative alignment objectives)

    # --- module toggles (Table 5 ablations)
    use_scl: bool = True
    use_domain_adversarial: bool = True
    use_auxiliary_reviews: bool = True

    # --- cold-start inference mode
    # 'blend' (default): the cold user's domain-invariant features are the
    #   mean of the target extractor's features over the auxiliary document
    #   and the source extractor's features over the real source document —
    #   the paper combines auxiliary reviews "with the users' reviews in the
    #   source domain to extract the users' domain-invariant information"
    #   (§1), and the SCL + DA modules align the two feature spaces so the
    #   average is meaningful.
    # 'dual': the rating head sees the source-extractor and
    #   target-extractor invariant features as separate inputs and learns
    #   its own mixing weights.
    # 'aux_only': target features come from the auxiliary document alone.
    cold_inference: str = "dual"

    # --- training
    batch_size: int = 64
    epochs: int = 40  # upper bound; early stopping picks the best epoch
    # (paper: 15 epochs on the full datasets)
    optimizer: str = "adadelta"  # 'adadelta' (paper) or 'adam'
    learning_rate: float = 1.0  # paper: 0.02 on the full datasets; the
    # scaled-down corpus needs the larger PyTorch-default Adadelta step
    rho: float = 0.95
    early_stopping: bool = True  # keep the best cold-start validation epoch
    patience: int = 6
    aux_mix_prob: float = 0.5  # fraction of training examples whose target
    # document is replaced by the auxiliary document (train/test matching)
    target_dropout_prob: float = 0.15  # fraction of training examples whose
    # target document is blanked entirely, forcing the rating head to learn
    # a usable source-only path (the fallback when Algorithm 1 finds no
    # like-minded users for a cold-start user)
    grad_clip: float = 5.0
    seed: int = 0

    # --- robustness / divergence recovery
    max_divergence_retries: int = 3  # total rollback+retry budget per fit();
    # exhausting it raises TrainingDivergedError instead of looping forever
    lr_backoff_factor: float = 0.5  # learning-rate multiplier applied on each
    # rollback; the reduced rate persists for the rest of the run
    divergence_kernel_fallback: bool = True  # retry a rolled-back epoch on the
    # reference (non-fast-math) kernels before returning to the fused path —
    # graceful degradation when float32 fast math itself is the culprit

    # --- numerics / fast path
    dtype: str = "float32"  # compute dtype for model + training; 'float64'
    # recovers the seed numerics (and is what gradcheck uses)
    legacy_path: bool = False  # True restores the unfused per-sample
    # reference path — the baseline side of benchmarks/test_throughput.py
    graph_opt: bool = True  # tape-level graph optimizer (repro.nn.graph):
    # automatic chain fusion + arena buffer reuse; bit-identical to the
    # unfused tape, so it defaults on whenever the fast path is active
    # (ignored under legacy_path, and suspended with fast math during
    # divergence kernel-fallback epochs)

    def __post_init__(self) -> None:
        if self.dtype not in ("float32", "float64"):
            raise ValueError("dtype must be 'float32' or 'float64'")
        if self.field not in ("summary", "text"):
            raise ValueError("field must be 'summary' or 'text'")
        if self.extractor not in ("cnn", "transformer"):
            raise ValueError("extractor must be 'cnn' or 'transformer'")
        if not 0.0 <= self.aux_mix_prob <= 1.0:
            raise ValueError("aux_mix_prob must be in [0, 1]")
        if self.cold_inference not in ("blend", "dual", "aux_only"):
            raise ValueError("cold_inference must be 'blend', 'dual', or 'aux_only'")
        if self.alignment_method not in ("grl", "mmd"):
            raise ValueError("alignment_method must be 'grl' or 'mmd'")
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("loss weights must be non-negative")
        if min(self.kernel_sizes) < 1:
            raise ValueError("kernel sizes must be positive")
        if self.doc_len < max(self.kernel_sizes):
            raise ValueError("doc_len must be at least the largest kernel size")
        if self.max_divergence_retries < 0:
            raise ValueError("max_divergence_retries must be non-negative")
        if not 0.0 < self.lr_backoff_factor <= 1.0:
            raise ValueError("lr_backoff_factor must be in (0, 1]")
