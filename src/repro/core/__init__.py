"""``repro.core`` — the OmniMatch model, its modules, trainer, and predictor."""

from .adversarial import DomainAdversary, mmd_rbf
from .checkpoint import (
    CheckpointCorruptionError,
    CheckpointError,
    TrainingCheckpoint,
    find_latest_checkpoint,
    load_checkpoint,
    prune_checkpoints,
    read_training_checkpoint,
    save_checkpoint,
    verify_checkpoint,
    write_training_checkpoint,
)
from .auxiliary import AuxiliaryReviewGenerator, AuxiliarySelection
from .config import OmniMatchConfig
from .contrastive import ContrastiveModule
from .extractors import DocumentEncoder, ItemFeatureExtractor, UserFeatureExtractor
from .model import RATING_VALUES, OmniMatchModel
from .predictor import ColdStartPredictor
from .trainer import (
    EpochStats,
    HealthEvent,
    OmniMatchTrainer,
    TrainingDivergedError,
    TrainResult,
)

__all__ = [
    "OmniMatchConfig",
    "AuxiliaryReviewGenerator",
    "AuxiliarySelection",
    "DocumentEncoder",
    "UserFeatureExtractor",
    "ItemFeatureExtractor",
    "ContrastiveModule",
    "DomainAdversary",
    "mmd_rbf",
    "OmniMatchModel",
    "RATING_VALUES",
    "OmniMatchTrainer",
    "TrainResult",
    "EpochStats",
    "HealthEvent",
    "TrainingDivergedError",
    "ColdStartPredictor",
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointError",
    "CheckpointCorruptionError",
    "TrainingCheckpoint",
    "write_training_checkpoint",
    "read_training_checkpoint",
    "verify_checkpoint",
    "find_latest_checkpoint",
    "prune_checkpoints",
]
