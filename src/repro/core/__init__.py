"""``repro.core`` — the OmniMatch model, its modules, trainer, and predictor."""

from .adversarial import DomainAdversary, mmd_rbf
from .checkpoint import load_checkpoint, save_checkpoint
from .auxiliary import AuxiliaryReviewGenerator, AuxiliarySelection
from .config import OmniMatchConfig
from .contrastive import ContrastiveModule
from .extractors import DocumentEncoder, ItemFeatureExtractor, UserFeatureExtractor
from .model import RATING_VALUES, OmniMatchModel
from .predictor import ColdStartPredictor
from .trainer import EpochStats, OmniMatchTrainer, TrainResult

__all__ = [
    "OmniMatchConfig",
    "AuxiliaryReviewGenerator",
    "AuxiliarySelection",
    "DocumentEncoder",
    "UserFeatureExtractor",
    "ItemFeatureExtractor",
    "ContrastiveModule",
    "DomainAdversary",
    "mmd_rbf",
    "OmniMatchModel",
    "RATING_VALUES",
    "OmniMatchTrainer",
    "TrainResult",
    "EpochStats",
    "ColdStartPredictor",
    "save_checkpoint",
    "load_checkpoint",
]
