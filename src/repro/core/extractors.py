"""Feature Extraction Module (paper §4.2).

Each *user* document passes through:

* a frozen word-embedding lookup (PPMI-SVD table — fastText stand-in);
* a per-domain encoder: multi-kernel text CNN (default) or the transformer
  encoder (the OmniMatch-BERT ablation);
* two fully-connected heads: the **domain-invariant** head, whose weights
  are *shared* between the source and target extractors, and the
  **domain-specific** head, private to each domain (shared-private
  paradigm, Bousmalis et al. 2016).

*Item* documents use a separate encoder and a single shared-feature head —
the paper uses only the shared feature for items.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .config import OmniMatchConfig

__all__ = ["DocumentEncoder", "UserFeatureExtractor", "ItemFeatureExtractor"]


class DocumentEncoder(nn.Module):
    """Token ids -> pooled document vector (CNN or transformer back-end)."""

    def __init__(
        self,
        embedding: nn.Embedding,
        config: OmniMatchConfig,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.embedding = embedding
        self.kind = config.extractor
        if self.kind == "cnn":
            self.encoder = nn.TextConv(
                config.embed_dim,
                config.num_filters,
                config.kernel_sizes,
                rng,
                pooling=config.pooling,
            )
            self.output_dim = self.encoder.output_dim
        else:
            self.encoder = nn.TransformerEncoder(
                embed_dim=config.embed_dim,
                num_layers=config.transformer_layers,
                num_heads=config.transformer_heads,
                hidden_dim=config.embed_dim * 2,
                max_len=config.doc_len,
                rng=rng,
                dropout=min(config.dropout, 0.2),
            )
            self.output_dim = config.embed_dim

    def forward(self, token_ids: np.ndarray) -> nn.Tensor:
        """``(batch, doc_len)`` int ids -> ``(batch, output_dim)`` features."""
        embedded = self.embedding(token_ids)
        if self.kind == "cnn":
            return self.encoder(embedded, token_mask=(np.asarray(token_ids) != 0))
        return self.encoder(embedded)


class UserFeatureExtractor(nn.Module):
    """Shared-private user extractors for both domains.

    ``invariant_head`` is one Linear applied to both domains' pooled CNN
    outputs (weight sharing per §4.2: "the weights of the domain-invariant
    fully-connected layer ... are shared"); each domain owns its encoder and
    its specific head.
    """

    def __init__(
        self,
        embedding: nn.Embedding,
        config: OmniMatchConfig,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.config = config
        self.source_encoder = DocumentEncoder(embedding, config, rng)
        self.target_encoder = DocumentEncoder(embedding, config, rng)
        pooled_dim = self.source_encoder.output_dim
        self.invariant_head = nn.Linear(pooled_dim, config.invariant_dim, rng)
        self.source_specific_head = nn.Linear(pooled_dim, config.specific_dim, rng)
        self.target_specific_head = nn.Linear(pooled_dim, config.specific_dim, rng)
        self.drop = nn.Dropout(config.dropout, rng)

    @property
    def representation_dim(self) -> int:
        """Dim of r_j = invariant (+) specific (Eq. 10)."""
        return self.config.invariant_dim + self.config.specific_dim

    def _heads(self, pooled: nn.Tensor, specific_head: nn.Linear) -> tuple[nn.Tensor, nn.Tensor]:
        invariant = self.drop(F.relu(self.invariant_head(pooled)))
        specific = self.drop(F.relu(specific_head(pooled)))
        return invariant, specific

    def extract_source(self, token_ids: np.ndarray) -> tuple[nn.Tensor, nn.Tensor]:
        """Return (invariant, specific) source-domain user features (Eq. 8-9)."""
        pooled = self.source_encoder(token_ids)
        return self._heads(pooled, self.source_specific_head)

    def extract_target(self, token_ids: np.ndarray) -> tuple[nn.Tensor, nn.Tensor]:
        """Return (invariant, specific) target-domain user features."""
        pooled = self.target_encoder(token_ids)
        return self._heads(pooled, self.target_specific_head)

    @staticmethod
    def combine(invariant: nn.Tensor, specific: nn.Tensor) -> nn.Tensor:
        """r_j = r_invariant (+) r_specific (Eq. 10)."""
        return nn.concat([invariant, specific], axis=-1)


class ItemFeatureExtractor(nn.Module):
    """Item encoder: pooled document -> shared feature (paper uses only the
    shared feature for items)."""

    def __init__(
        self,
        embedding: nn.Embedding,
        config: OmniMatchConfig,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.encoder = DocumentEncoder(embedding, config, rng)
        self.head = nn.Linear(self.encoder.output_dim, config.invariant_dim, rng)
        self.drop = nn.Dropout(config.dropout, rng)
        self.output_dim = config.invariant_dim

    def forward(self, token_ids: np.ndarray) -> nn.Tensor:
        pooled = self.encoder(token_ids)
        return self.drop(F.relu(self.head(pooled)))
