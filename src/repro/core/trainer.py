"""OmniMatch trainer: corpus preparation, epochs, and timing hooks.

Training data are the *target-domain* interactions of the training
(overlapping) users. For each interaction the batch carries:

* the user's source document,
* the user's target document — with probability ``aux_mix_prob`` replaced by
  the user's *auxiliary* document (Algorithm 1 over like-minded training
  users). This augmentation closes the train/test gap: at evaluation time a
  cold-start user's target document *is* an auxiliary document, so the
  target extractor must learn to read them. Disabling
  ``use_auxiliary_reviews`` removes the augmentation *and* makes cold users
  fall back to their source document at prediction time — the failure mode
  §4.1 describes, and the largest degradation in Table 5.
* the item document and the rating class label.

Batch assembly runs on the vectorized fast path by default: documents live
in the :class:`DocumentMatrices` int32 tensors, per-interaction slot arrays
are built once per ``fit``, and each batch is a fancy-index gather with the
aux/dropout mixing decided by one vectorized RNG draw per batch. The draw
order matches the per-sample legacy path exactly (one double per sample, in
order), so both paths make identical augmentation choices from the same
seed. ``config.legacy_path`` restores the per-sample loop and unfused
kernels — the baseline side of ``benchmarks/test_throughput.py``.

Per-module wall-clock timings are accumulated for the Table 6 reproduction;
per-phase timings (batch assembly / forward / backward / optimizer) land in
``trainer.perf`` for the throughput benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from .. import nn
from ..data.batching import DocumentMatrices, DocumentStore, iter_batches
from ..data.records import CrossDomainDataset, Review
from ..data.split import ColdStartSplit
from ..perf import PerfRegistry
from ..text import train_ppmi_svd_embeddings
from .auxiliary import AuxiliaryReviewGenerator
from .config import OmniMatchConfig
from .model import OmniMatchModel

__all__ = ["EpochStats", "TrainResult", "OmniMatchTrainer"]

BatchArrays = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


@dataclass
class EpochStats:
    """Loss averages and wall-clock for one epoch."""

    epoch: int
    total: float
    rating: float
    scl: float
    domain: float
    seconds: float
    valid_rmse: float | None = None


@dataclass
class TrainResult:
    """Everything a caller needs after training."""

    model: OmniMatchModel
    store: DocumentStore
    aux_generator: AuxiliaryReviewGenerator
    history: list[EpochStats] = field(default_factory=list)

    @property
    def train_seconds(self) -> float:
        return sum(stat.seconds for stat in self.history)


class OmniMatchTrainer:
    """Builds the corpus artifacts and runs the training loop."""

    def __init__(
        self,
        dataset: CrossDomainDataset,
        split: ColdStartSplit,
        config: OmniMatchConfig | None = None,
    ) -> None:
        self.dataset = dataset
        self.split = split
        self.config = config if config is not None else OmniMatchConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.perf = PerfRegistry()

        self.store = DocumentStore(
            dataset,
            split,
            doc_len=self.config.doc_len,
            vocab_size=self.config.vocab_size,
            field=self.config.field,
        )
        embedding_table = train_ppmi_svd_embeddings(
            self.store.visible_token_documents(),
            self.store.vocab,
            dim=self.config.embed_dim,
            seed=self.config.seed,
        )
        with nn.default_dtype(self.config.dtype):
            self.model = OmniMatchModel(embedding_table, self.config, self._rng)
        self.aux_generator = AuxiliaryReviewGenerator(
            dataset,
            allowed_users=split.train_users,
            field=self.config.field,
            seed=self.config.seed,
        )
        self._aux_doc_cache: dict[str, np.ndarray] = {}
        self._aux_matrix: np.ndarray | None = None
        self._aux_filled: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Document assembly
    # ------------------------------------------------------------------
    def _auxiliary_doc(self, user_id: str) -> np.ndarray:
        if user_id not in self._aux_doc_cache:
            reviews = self.aux_generator.generate(user_id)
            self._aux_doc_cache[user_id] = self.store.encode_reviews(reviews)
        return self._aux_doc_cache[user_id]

    def _document_matrices(self) -> DocumentMatrices:
        matrices = self.store.build_matrices()
        if self._aux_matrix is None:
            num_users = matrices.source.shape[0]
            self._aux_matrix = np.zeros(
                (num_users, self.config.doc_len), dtype=np.int32
            )
            self._aux_filled = np.zeros(num_users, dtype=bool)
        return matrices

    def _fill_aux_rows(self, matrices: DocumentMatrices, user_ids: Sequence[str]) -> None:
        """Materialize auxiliary-document rows for ``user_ids`` (memoized)."""
        assert self._aux_matrix is not None and self._aux_filled is not None
        for user_id in user_ids:
            slot = matrices.user_slots[user_id]
            if not self._aux_filled[slot]:
                self._aux_matrix[slot] = self._auxiliary_doc(user_id)
                self._aux_filled[slot] = True

    def _mix_and_gather(
        self,
        matrices: DocumentMatrices,
        user_rows: np.ndarray,
        item_rows: np.ndarray,
        labels: np.ndarray,
    ) -> BatchArrays:
        """Fancy-index gather + vectorized aux/dropout mixing for one batch."""
        draws = self._rng.random(user_rows.shape[0])
        source = matrices.source[user_rows]
        target = matrices.target[user_rows]
        drop_mask = draws < self.config.target_dropout_prob
        if self.config.use_auxiliary_reviews and self.config.aux_mix_prob > 0.0:
            aux_mask = ~drop_mask & (
                draws < self.config.target_dropout_prob + self.config.aux_mix_prob
            )
            if aux_mask.any():
                target[aux_mask] = self._aux_matrix[user_rows[aux_mask]]
        if drop_mask.any():
            target[drop_mask] = 0
        items = matrices.items[item_rows]
        return source, target, items, labels

    def _batch_arrays(self, batch: list[Review]) -> BatchArrays:
        if self.config.legacy_path:
            return self._batch_arrays_legacy(batch)
        matrices = self._document_matrices()
        count = len(batch)
        user_rows = np.fromiter(
            (matrices.user_slots[r.user_id] for r in batch), dtype=np.int64, count=count
        )
        item_rows = np.fromiter(
            (matrices.item_slots[r.item_id] for r in batch), dtype=np.int64, count=count
        )
        labels = np.fromiter(
            (r.rating_index for r in batch), dtype=np.int64, count=count
        )
        if self.config.use_auxiliary_reviews and self.config.aux_mix_prob > 0.0:
            self._fill_aux_rows(matrices, [r.user_id for r in batch])
        return self._mix_and_gather(matrices, user_rows, item_rows, labels)

    def _batch_arrays_legacy(self, batch: list[Review]) -> BatchArrays:
        """Per-sample reference path (the pre-vectorization implementation)."""
        source_docs = []
        target_docs = []
        item_docs = []
        labels = []
        use_aux = (
            self.config.use_auxiliary_reviews and self.config.aux_mix_prob > 0.0
        )
        empty_doc = np.zeros(self.config.doc_len, dtype=np.int64)
        for interaction in batch:
            source_docs.append(self.store.user_source_doc(interaction.user_id))
            draw = self._rng.random()
            if draw < self.config.target_dropout_prob:
                target_docs.append(empty_doc)
            elif use_aux and draw < self.config.target_dropout_prob + self.config.aux_mix_prob:
                target_docs.append(self._auxiliary_doc(interaction.user_id))
            else:
                target_docs.append(self.store.user_target_doc(interaction.user_id))
            item_docs.append(self.store.item_doc(interaction.item_id))
            labels.append(interaction.rating_index)
        return (
            np.stack(source_docs),
            np.stack(target_docs),
            np.stack(item_docs),
            np.asarray(labels, dtype=np.int64),
        )

    def _epoch_batches(self, interactions: Sequence[Review]) -> Iterator[BatchArrays]:
        """Yield assembled batch arrays for one epoch, timing the assembly."""
        batch_size = self.config.batch_size
        if self.config.legacy_path:
            for batch in iter_batches(interactions, batch_size, self._rng):
                with self.perf.section("batch_assembly"):
                    arrays = self._batch_arrays_legacy(batch)
                yield arrays
            return
        with self.perf.section("batch_assembly"):
            matrices = self._document_matrices()
            count = len(interactions)
            user_rows = np.fromiter(
                (matrices.user_slots[r.user_id] for r in interactions),
                dtype=np.int64,
                count=count,
            )
            item_rows = np.fromiter(
                (matrices.item_slots[r.item_id] for r in interactions),
                dtype=np.int64,
                count=count,
            )
            labels = np.fromiter(
                (r.rating_index for r in interactions), dtype=np.int64, count=count
            )
            if self.config.use_auxiliary_reviews and self.config.aux_mix_prob > 0.0:
                self._fill_aux_rows(
                    matrices, {r.user_id for r in interactions}
                )
            order = np.arange(count)
            self._rng.shuffle(order)
        for start in range(0, count, batch_size):
            index = order[start : start + batch_size]
            with self.perf.section("batch_assembly"):
                arrays = self._mix_and_gather(
                    matrices, user_rows[index], item_rows[index], labels[index]
                )
            yield arrays

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def fit(self, epochs: int | None = None, validate_every: int = 0) -> TrainResult:
        """Train for up to ``epochs`` (default: config.epochs) and return artifacts.

        With ``config.early_stopping`` (default), validation RMSE over the
        cold-start *validation* users is computed every epoch; training stops
        after ``config.patience`` epochs without improvement, and the best
        epoch's parameters are restored. ``validate_every`` > 0 additionally
        records validation RMSE on those epochs when early stopping is off.
        """
        epochs = epochs if epochs is not None else self.config.epochs
        interactions = self.split.train_interactions(self.dataset)
        if not interactions:
            raise ValueError("no training interactions: split produced an empty train set")

        if self.config.optimizer == "adam":
            optimizer = nn.Adam(self.model.parameters(), lr=1e-3)
        else:
            optimizer = nn.Adadelta(
                self.model.parameters(),
                lr=self.config.learning_rate,
                rho=self.config.rho,
            )
        history: list[EpochStats] = []
        result = TrainResult(
            model=self.model, store=self.store, aux_generator=self.aux_generator,
            history=history,
        )
        best_rmse = float("inf")
        best_state: dict | None = None
        stale = 0
        self.model.train()
        previous_fast = nn.set_fast_math(not self.config.legacy_path)
        try:
            for epoch in range(1, epochs + 1):
                start = time.perf_counter()
                sums = {"total": 0.0, "rating": 0.0, "scl": 0.0, "domain": 0.0}
                batches = 0
                for arrays in self._epoch_batches(interactions):
                    with self.perf.section("forward"):
                        losses = self.model.compute_losses(*arrays)
                    with self.perf.section("backward"):
                        optimizer.zero_grad()
                        losses["total"].backward()
                    with self.perf.section("optimizer"):
                        nn.clip_grad_norm(self.model.parameters(), self.config.grad_clip)
                        optimizer.step()
                    for key in sums:
                        sums[key] += losses[key].item()
                    batches += 1
                seconds = time.perf_counter() - start
                stats = EpochStats(
                    epoch=epoch,
                    total=sums["total"] / batches,
                    rating=sums["rating"] / batches,
                    scl=sums["scl"] / batches,
                    domain=sums["domain"] / batches,
                    seconds=seconds,
                )
                want_valid = self.config.early_stopping or (
                    validate_every and epoch % validate_every == 0
                )
                if want_valid:
                    stats.valid_rmse = self._validation_rmse(result)
                    # Validation flips the model to eval mode; restore train
                    # mode for the next epoch regardless of early stopping.
                    self.model.train()
                history.append(stats)
                if self.config.early_stopping and stats.valid_rmse is not None:
                    if stats.valid_rmse < best_rmse - 1e-6:
                        best_rmse = stats.valid_rmse
                        best_state = self.model.state_dict()
                        stale = 0
                    else:
                        stale += 1
                        if stale >= self.config.patience:
                            break
        finally:
            nn.set_fast_math(previous_fast)
        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return result

    def _validation_rmse(self, result: TrainResult) -> float:
        from .predictor import ColdStartPredictor  # local import: cycle guard
        from ..eval.metrics import rmse

        predictor = ColdStartPredictor(result)
        interactions = self.split.eval_interactions(self.dataset, "valid")
        if not interactions:
            return float("nan")
        predicted = predictor.predict_interactions(interactions)
        actual = np.array([r.rating for r in interactions])
        return rmse(actual, predicted)
