"""OmniMatch trainer: corpus preparation, epochs, and timing hooks.

Training data are the *target-domain* interactions of the training
(overlapping) users. For each interaction the batch carries:

* the user's source document,
* the user's target document — with probability ``aux_mix_prob`` replaced by
  the user's *auxiliary* document (Algorithm 1 over like-minded training
  users). This augmentation closes the train/test gap: at evaluation time a
  cold-start user's target document *is* an auxiliary document, so the
  target extractor must learn to read them. Disabling
  ``use_auxiliary_reviews`` removes the augmentation *and* makes cold users
  fall back to their source document at prediction time — the failure mode
  §4.1 describes, and the largest degradation in Table 5.
* the item document and the rating class label.

Batch assembly runs on the vectorized fast path by default: documents live
in the :class:`DocumentMatrices` int32 tensors, per-interaction slot arrays
are built once per ``fit``, and each batch is a fancy-index gather with the
aux/dropout mixing decided by one vectorized RNG draw per batch. The draw
order matches the per-sample legacy path exactly (one double per sample, in
order), so both paths make identical augmentation choices from the same
seed. ``config.legacy_path`` restores the per-sample loop and unfused
kernels — the baseline side of ``benchmarks/test_throughput.py``.

Per-module wall-clock timings are accumulated for the Table 6 reproduction;
per-phase timings (batch assembly / forward / backward / optimizer) land in
``trainer.perf`` for the throughput benchmark.

Observability
-------------
Each phase is timed once and the measured duration feeds both the legacy
flat ``trainer.perf`` registry and the hierarchical ``trainer.tracer``
(:class:`repro.obs.SpanTracer`), so their per-phase totals agree exactly.
Batch loss / gradient norm / learning rate land in ``trainer.metrics``
(:class:`repro.obs.MetricsRegistry`) every step. When a
:class:`repro.obs.TelemetrySink` is attached (the ``telemetry`` constructor
argument, or an ambient sink installed with :func:`repro.obs.use_sink`),
``fit`` streams the whole run as structured events — ``run_start``,
per-batch ``batch``, per-epoch ``epoch`` (with an RNG-stream checksum),
every ``health`` entry, checkpoint lifecycle, and a final
``span_summary`` / ``metrics_summary`` / ``run_end`` — to ``run.jsonl``.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

import numpy as np

from .. import nn
from ..data.batching import DocumentMatrices, DocumentStore, iter_batches
from ..data.records import CrossDomainDataset, Review
from ..data.split import ColdStartSplit
from ..obs import MetricsRegistry, SpanTracer, get_active_sink, use_sink
from ..perf import PerfRegistry, throughput
from ..text import train_ppmi_svd_embeddings
from .auxiliary import AuxiliaryReviewGenerator
from .config import OmniMatchConfig
from .model import OmniMatchModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import TelemetrySink

if TYPE_CHECKING:  # pragma: no cover - cycle guard (faults imports nothing here)
    from ..faults import FaultInjector

__all__ = [
    "EpochStats",
    "HealthEvent",
    "TrainResult",
    "TrainingDivergedError",
    "OmniMatchTrainer",
]

BatchArrays = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


@dataclass
class EpochStats:
    """Loss averages and wall-clock for one epoch."""

    epoch: int
    total: float
    rating: float
    scl: float
    domain: float
    seconds: float
    valid_rmse: float | None = None


@dataclass
class HealthEvent:
    """One entry in the structured run-health log.

    ``kind`` is one of ``nonfinite_loss`` / ``nonfinite_grad`` (detection),
    ``rollback`` / ``lr_backoff`` / ``kernel_fallback`` (recovery actions),
    ``checkpoint`` (a training checkpoint was written), ``resume``
    (training restarted from a checkpoint), or ``preempt`` (the
    ``stop_check`` hook requested a cooperative stop at an epoch boundary).
    """

    epoch: int
    kind: str
    batch: int | None = None
    value: float | None = None
    detail: str = ""


class TrainingDivergedError(RuntimeError):
    """Training hit non-finite numerics and exhausted its retry budget."""


class _DivergenceDetected(Exception):
    """Internal signal: a batch produced a non-finite loss or gradient."""

    def __init__(self, kind: str, batch: int, value: float) -> None:
        super().__init__(kind)
        self.kind = kind
        self.batch = batch
        self.value = value


@dataclass
class TrainResult:
    """Everything a caller needs after training."""

    model: OmniMatchModel
    store: DocumentStore
    aux_generator: AuxiliaryReviewGenerator
    history: list[EpochStats] = field(default_factory=list)
    health: list[HealthEvent] = field(default_factory=list)

    @property
    def train_seconds(self) -> float:
        return sum(stat.seconds for stat in self.history)


class OmniMatchTrainer:
    """Builds the corpus artifacts and runs the training loop."""

    def __init__(
        self,
        dataset: CrossDomainDataset,
        split: ColdStartSplit,
        config: OmniMatchConfig | None = None,
        telemetry: "TelemetrySink | None" = None,
        store: DocumentStore | None = None,
    ) -> None:
        self.dataset = dataset
        self.split = split
        self.config = config if config is not None else OmniMatchConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.perf = PerfRegistry()
        self.tracer = SpanTracer()
        self.metrics = MetricsRegistry()
        self.telemetry = telemetry

        if store is not None:
            # A pre-built store (e.g. reconstructed from shared memory by a
            # parallel worker) is only usable if it encodes exactly what
            # this config would have encoded.
            mismatched = [
                name
                for name, want in (
                    ("doc_len", self.config.doc_len),
                    ("vocab_size", self.config.vocab_size),
                    ("field", self.config.field),
                )
                if getattr(store, name) != want
            ]
            if mismatched:
                raise ValueError(
                    "pre-built DocumentStore does not match the config on: "
                    + ", ".join(mismatched)
                )
        self.store = store if store is not None else DocumentStore(
            dataset,
            split,
            doc_len=self.config.doc_len,
            vocab_size=self.config.vocab_size,
            field=self.config.field,
        )
        embedding_table = train_ppmi_svd_embeddings(
            self.store.visible_token_documents(),
            self.store.vocab,
            dim=self.config.embed_dim,
            seed=self.config.seed,
        )
        with nn.default_dtype(self.config.dtype):
            self.model = OmniMatchModel(embedding_table, self.config, self._rng)
        self.aux_generator = AuxiliaryReviewGenerator(
            dataset,
            allowed_users=split.train_users,
            field=self.config.field,
            seed=self.config.seed,
        )
        # Auxiliary documents are deterministic per user (the generator uses
        # a per-user RNG), so encoding them here instead of lazily during the
        # first epoch changes nothing numerically — it only moves the one-off
        # tokenization cost out of the training loop.
        self._aux_doc_cache: dict[str, np.ndarray] = {
            user_id: self.store.encode_reviews(self.aux_generator.generate(user_id))
            for user_id in split.train_users
        }
        self._aux_matrix: np.ndarray | None = None
        self._aux_filled: np.ndarray | None = None
        # Same reasoning for the document matrices: packing them is memoized
        # and deterministic, so force it now rather than mid-first-epoch.
        self.store.build_matrices()

    # ------------------------------------------------------------------
    # Observability plumbing
    # ------------------------------------------------------------------
    @contextmanager
    def _phase(self, name: str) -> Iterator[None]:
        """Time a phase once, feeding tracer and flat registry identically."""
        token = self.tracer.enter(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.tracer.exit(token, elapsed)
            self.perf.record(name, elapsed)

    def _emit(self, kind: str, **fields) -> None:
        """Send an event to the attached sink, or the ambient one, if any."""
        sink = self.telemetry if self.telemetry is not None else get_active_sink()
        if sink is not None:
            sink.emit(kind, **fields)

    def _note_health(self, health: list[HealthEvent], event: HealthEvent) -> None:
        """Record a health event in the run log and the telemetry stream."""
        health.append(event)
        self.metrics.inc(f"health.{event.kind}")
        self._emit(
            "health",
            epoch=event.epoch,
            health_kind=event.kind,
            batch=event.batch,
            value=event.value,
            detail=event.detail,
        )

    def _rng_checksum(self) -> str:
        """Short digest of the RNG bit-generator state (stream identity).

        Two runs that have drawn the same random stream — e.g. a resumed
        run and its uninterrupted twin at the same epoch — have equal
        checksums, so telemetry diffs expose RNG divergence directly.
        """
        state = repr(self._rng.bit_generator.state).encode()
        return hashlib.sha256(state).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Document assembly
    # ------------------------------------------------------------------
    def _auxiliary_doc(self, user_id: str) -> np.ndarray:
        if user_id not in self._aux_doc_cache:
            reviews = self.aux_generator.generate(user_id)
            self._aux_doc_cache[user_id] = self.store.encode_reviews(reviews)
        return self._aux_doc_cache[user_id]

    def _document_matrices(self) -> DocumentMatrices:
        matrices = self.store.build_matrices()
        if self._aux_matrix is None:
            num_users = matrices.source.shape[0]
            self._aux_matrix = np.zeros(
                (num_users, self.config.doc_len), dtype=np.int32
            )
            self._aux_filled = np.zeros(num_users, dtype=bool)
        return matrices

    def _fill_aux_rows(self, matrices: DocumentMatrices, user_ids: Sequence[str]) -> None:
        """Materialize auxiliary-document rows for ``user_ids`` (memoized)."""
        assert self._aux_matrix is not None and self._aux_filled is not None
        for user_id in user_ids:
            slot = matrices.user_slots[user_id]
            if not self._aux_filled[slot]:
                self._aux_matrix[slot] = self._auxiliary_doc(user_id)
                self._aux_filled[slot] = True

    def _mix_and_gather(
        self,
        matrices: DocumentMatrices,
        user_rows: np.ndarray,
        item_rows: np.ndarray,
        labels: np.ndarray,
    ) -> BatchArrays:
        """Fancy-index gather + vectorized aux/dropout mixing for one batch."""
        draws = self._rng.random(user_rows.shape[0])
        source = matrices.source[user_rows]
        target = matrices.target[user_rows]
        drop_mask = draws < self.config.target_dropout_prob
        if self.config.use_auxiliary_reviews and self.config.aux_mix_prob > 0.0:
            aux_mask = ~drop_mask & (
                draws < self.config.target_dropout_prob + self.config.aux_mix_prob
            )
            if aux_mask.any():
                target[aux_mask] = self._aux_matrix[user_rows[aux_mask]]
        if drop_mask.any():
            target[drop_mask] = 0
        items = matrices.items[item_rows]
        return source, target, items, labels

    def _batch_arrays(self, batch: list[Review]) -> BatchArrays:
        if self.config.legacy_path:
            return self._batch_arrays_legacy(batch)
        matrices = self._document_matrices()
        count = len(batch)
        user_rows = np.fromiter(
            (matrices.user_slots[r.user_id] for r in batch), dtype=np.int64, count=count
        )
        item_rows = np.fromiter(
            (matrices.item_slots[r.item_id] for r in batch), dtype=np.int64, count=count
        )
        labels = np.fromiter(
            (r.rating_index for r in batch), dtype=np.int64, count=count
        )
        if self.config.use_auxiliary_reviews and self.config.aux_mix_prob > 0.0:
            self._fill_aux_rows(matrices, [r.user_id for r in batch])
        return self._mix_and_gather(matrices, user_rows, item_rows, labels)

    def _batch_arrays_legacy(self, batch: list[Review]) -> BatchArrays:
        """Per-sample reference path (the pre-vectorization implementation)."""
        source_docs = []
        target_docs = []
        item_docs = []
        labels = []
        use_aux = (
            self.config.use_auxiliary_reviews and self.config.aux_mix_prob > 0.0
        )
        empty_doc = np.zeros(self.config.doc_len, dtype=np.int64)
        for interaction in batch:
            source_docs.append(self.store.user_source_doc(interaction.user_id))
            draw = self._rng.random()
            if draw < self.config.target_dropout_prob:
                target_docs.append(empty_doc)
            elif use_aux and draw < self.config.target_dropout_prob + self.config.aux_mix_prob:
                target_docs.append(self._auxiliary_doc(interaction.user_id))
            else:
                target_docs.append(self.store.user_target_doc(interaction.user_id))
            item_docs.append(self.store.item_doc(interaction.item_id))
            labels.append(interaction.rating_index)
        return (
            np.stack(source_docs),
            np.stack(target_docs),
            np.stack(item_docs),
            np.asarray(labels, dtype=np.int64),
        )

    def _epoch_batches(self, interactions: Sequence[Review]) -> Iterator[BatchArrays]:
        """Yield assembled batch arrays for one epoch, timing the assembly."""
        batch_size = self.config.batch_size
        if self.config.legacy_path:
            for batch in iter_batches(interactions, batch_size, self._rng):
                with self._phase("batch_assembly"):
                    arrays = self._batch_arrays_legacy(batch)
                yield arrays
            return
        with self._phase("batch_assembly"):
            matrices = self._document_matrices()
            count = len(interactions)
            user_rows = np.fromiter(
                (matrices.user_slots[r.user_id] for r in interactions),
                dtype=np.int64,
                count=count,
            )
            item_rows = np.fromiter(
                (matrices.item_slots[r.item_id] for r in interactions),
                dtype=np.int64,
                count=count,
            )
            labels = np.fromiter(
                (r.rating_index for r in interactions), dtype=np.int64, count=count
            )
            if self.config.use_auxiliary_reviews and self.config.aux_mix_prob > 0.0:
                self._fill_aux_rows(
                    matrices, {r.user_id for r in interactions}
                )
            order = np.arange(count)
            self._rng.shuffle(order)
        for start in range(0, count, batch_size):
            index = order[start : start + batch_size]
            with self._phase("batch_assembly"):
                arrays = self._mix_and_gather(
                    matrices, user_rows[index], item_rows[index], labels[index]
                )
            yield arrays

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def fit(
        self,
        epochs: int | None = None,
        validate_every: int = 0,
        *,
        resume_from: str | os.PathLike | None = None,
        checkpoint_every: int = 0,
        checkpoint_dir: str | os.PathLike | None = None,
        keep_last: int = 3,
        fault_injector: "FaultInjector | None" = None,
        stop_check: "Callable[[], bool] | None" = None,
    ) -> TrainResult:
        """Train for up to ``epochs`` (default: config.epochs) and return artifacts.

        With ``config.early_stopping`` (default), validation RMSE over the
        cold-start *validation* users is computed every epoch; training stops
        after ``config.patience`` epochs without improvement, and the best
        epoch's parameters are restored. ``validate_every`` > 0 additionally
        records validation RMSE on those epochs when early stopping is off.

        Fault tolerance
        ---------------
        ``checkpoint_every`` > 0 writes a crash-safe training checkpoint
        (model, optimizer, RNG state, early-stopping bookkeeping, history)
        under ``checkpoint_dir`` every that many epochs, plus at the final
        epoch; ``keep_last`` bounds how many periodic checkpoints are
        retained (the best-by-validation-RMSE checkpoint under ``best/`` is
        always kept). ``resume_from`` restores full training state from a
        checkpoint directory — or picks the newest *valid* checkpoint inside
        a run directory — and continues toward ``epochs``; a resumed run is
        bit-identical to the same run left uninterrupted, provided the
        trainer was built from the same ``(dataset, split, config)``.

        Every batch is guarded against non-finite numerics: a NaN/Inf loss
        or post-clip gradient norm rolls the run back to the start of the
        epoch, backs the learning rate off by ``config.lr_backoff_factor``,
        and (optionally) retries the epoch on the reference kernels; the
        retry budget is ``config.max_divergence_retries``, after which
        :class:`TrainingDivergedError` is raised. Every detection and
        recovery action lands in ``TrainResult.health``.

        ``fault_injector`` is a test-harness hook (see :mod:`repro.faults`).

        Preemption
        ----------
        ``stop_check`` is a zero-argument callable polled after every
        completed epoch; returning ``True`` requests a *cooperative* stop.
        The just-finished epoch is checkpointed (when checkpointing is
        configured) even off the ``checkpoint_every`` cadence, a ``preempt``
        health event is recorded, and ``fit`` returns normally with
        ``run_end`` status ``"preempted"``. Because preemption lands
        exactly on an epoch boundary, resuming the run later is
        bit-identical to never having been preempted — this is how the
        ASHA tuner kills losing trials without losing their work.

        Telemetry
        ---------
        With a :class:`repro.obs.TelemetrySink` attached (constructor
        ``telemetry=`` argument or ambient :func:`repro.obs.use_sink`), the
        run streams structured events to ``run.jsonl``; the attached sink
        is also installed as the active sink for the duration, so
        checkpoint I/O events emitted by :mod:`repro.core.checkpoint` land
        in the same file. The stream ends with ``span_summary`` /
        ``metrics_summary`` / ``run_end`` events even when training aborts.
        """
        with use_sink(self.telemetry):
            return self._fit(
                epochs,
                validate_every,
                resume_from=resume_from,
                checkpoint_every=checkpoint_every,
                checkpoint_dir=checkpoint_dir,
                keep_last=keep_last,
                fault_injector=fault_injector,
                stop_check=stop_check,
            )

    def _fit(
        self,
        epochs: int | None,
        validate_every: int,
        *,
        resume_from: str | os.PathLike | None,
        checkpoint_every: int,
        checkpoint_dir: str | os.PathLike | None,
        keep_last: int,
        fault_injector: "FaultInjector | None",
        stop_check: "Callable[[], bool] | None" = None,
    ) -> TrainResult:
        from . import checkpoint as ckpt_io  # local import: cycle guard

        epochs = epochs if epochs is not None else self.config.epochs
        interactions = self.split.train_interactions(self.dataset)
        if not interactions:
            raise ValueError("no training interactions: split produced an empty train set")
        if self.config.early_stopping and not self.split.eval_interactions(
            self.dataset, "valid"
        ):
            raise ValueError(
                "early_stopping is enabled but the validation split is empty: "
                "validation RMSE would be NaN every epoch and training would "
                f"silently stop after patience={self.config.patience} epochs. "
                "Disable early_stopping or use a split with validation users."
            )
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if checkpoint_every and checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        if checkpoint_every and keep_last < 1:
            raise ValueError("keep_last must be at least 1")

        if self.config.optimizer == "adam":
            optimizer = nn.Adam(self.model.parameters(), lr=1e-3)
        else:
            optimizer = nn.Adadelta(
                self.model.parameters(),
                lr=self.config.learning_rate,
                rho=self.config.rho,
            )
        history: list[EpochStats] = []
        health: list[HealthEvent] = []
        result = TrainResult(
            model=self.model, store=self.store, aux_generator=self.aux_generator,
            history=history, health=health,
        )
        best_rmse = float("inf")
        best_state: dict | None = None
        stale = 0
        start_epoch = 1
        if resume_from is not None:
            loaded, loaded_path = self._load_resume_state(resume_from)
            # ``epochs`` only bounds the loop (the target count is the
            # ``epochs`` argument) — resuming to train *further* is the
            # point of checkpointing, so it is exempt from the drift check.
            mismatched = [
                f.name for f in fields(OmniMatchConfig)
                if f.name != "epochs"
                and getattr(loaded.config, f.name) != getattr(self.config, f.name)
            ]
            if mismatched:
                raise ckpt_io.CheckpointError(
                    f"{loaded_path}: checkpoint config differs from the "
                    f"trainer's config in: {', '.join(mismatched)} — resume "
                    "requires the exact (dataset, split, config) the "
                    "checkpoint was trained with"
                )
            self.model.load_state_dict(loaded.model_state)
            optimizer.load_state_dict(loaded.optimizer_state)
            self._rng.bit_generator.state = loaded.rng_state
            history.extend(loaded.history)
            health.extend(loaded.health)
            best_rmse = loaded.best_rmse
            best_state = loaded.best_state
            stale = loaded.stale
            start_epoch = loaded.epoch + 1
            self._note_health(health, HealthEvent(
                epoch=loaded.epoch, kind="resume",
                detail=f"resumed from {loaded_path}",
            ))

        self._emit(
            "run_start",
            seed=self.config.seed,
            epochs=epochs,
            start_epoch=start_epoch,
            train_interactions=len(interactions),
            batch_size=self.config.batch_size,
            dtype=self.config.dtype,
            optimizer=self.config.optimizer,
            legacy_path=self.config.legacy_path,
            rng=self._rng_checksum(),
        )
        # The divergence retry budget is training state: a resumed run must
        # not receive a fresh allowance on top of rollbacks it already spent,
        # or kill-and-resume would tolerate more divergences in total than an
        # uninterrupted run. The spent count is recoverable from the
        # checkpointed health log, so no checkpoint-format change is needed.
        spent_retries = sum(1 for event in health if event.kind == "rollback")
        retries_left = max(0, self.config.max_divergence_retries - spent_retries)
        fallback_next = False
        self.model.train()
        previous_fast = nn.set_fast_math(not self.config.legacy_path)
        previous_graph = nn.set_graph_optimizer(
            nn.GraphOptimizer()
            if self.config.graph_opt and not self.config.legacy_path
            else None
        )
        status = "aborted"
        try:
            epoch = start_epoch
            while epoch <= epochs:
                if self.config.early_stopping and stale >= self.config.patience:
                    break
                snapshot = self._capture_state(optimizer)
                use_fallback = fallback_next
                fallback_next = False
                if use_fallback:
                    self._note_health(health, HealthEvent(
                        epoch=epoch, kind="kernel_fallback",
                        detail="retrying epoch on reference (non-fast-math) kernels",
                    ))
                alloc_before = (
                    nn.tensor_stats() if nn.tensor_stats_enabled() else None
                )
                try:
                    # A fallback epoch retries on the reference kernels with
                    # the graph optimizer suspended too: the point is to rule
                    # out the whole fast path, fusion and arena included.
                    was_fast = nn.set_fast_math(False) if use_fallback else None
                    was_graph = (
                        nn.set_graph_optimizer(None) if use_fallback else None
                    )
                    try:
                        with self.tracer.span("epoch"):
                            stats = self._run_epoch(
                                epoch, interactions, optimizer, fault_injector
                            )
                    finally:
                        if use_fallback:
                            nn.set_fast_math(was_fast)
                            nn.set_graph_optimizer(was_graph)
                except _DivergenceDetected as detected:
                    self._note_health(health, HealthEvent(
                        epoch=epoch, kind=detected.kind, batch=detected.batch,
                        value=detected.value,
                    ))
                    self._restore_state(snapshot, optimizer)
                    if retries_left <= 0:
                        raise TrainingDivergedError(
                            f"non-finite numerics at epoch {epoch}, batch "
                            f"{detected.batch} ({detected.kind}="
                            f"{detected.value}); retry budget of "
                            f"{self.config.max_divergence_retries} exhausted"
                        ) from None
                    retries_left -= 1
                    self._note_health(health, HealthEvent(
                        epoch=epoch, kind="rollback", batch=detected.batch,
                        detail="restored start-of-epoch model/optimizer/RNG state",
                    ))
                    optimizer.lr = optimizer.lr * self.config.lr_backoff_factor
                    self._note_health(health, HealthEvent(
                        epoch=epoch, kind="lr_backoff", value=optimizer.lr,
                        detail=f"learning rate scaled by {self.config.lr_backoff_factor}",
                    ))
                    fallback_next = (
                        self.config.divergence_kernel_fallback
                        and not self.config.legacy_path
                    )
                    continue  # retry the same epoch from the snapshot
                want_valid = self.config.early_stopping or (
                    validate_every and epoch % validate_every == 0
                )
                if want_valid:
                    with self._phase("validation"):
                        stats.valid_rmse = self._validation_rmse(result)
                    # Validation flips the model to eval mode; restore train
                    # mode for the next epoch regardless of early stopping.
                    self.model.train()
                history.append(stats)
                rng_digest = self._rng_checksum()
                samples = len(interactions)
                rate = throughput(samples, stats.seconds)
                self.metrics.observe("epoch_seconds", stats.seconds)
                self.metrics.observe("samples_per_sec", rate)
                self.metrics.set_gauge("rng_checksum", rng_digest)
                if stats.valid_rmse is not None:
                    self.metrics.set_gauge("valid_rmse", stats.valid_rmse)
                extra: dict = {}
                if alloc_before is not None:
                    after = nn.tensor_stats()
                    # Per-epoch allocation deltas (peak_bytes is a running
                    # per-step high-water mark, reported as-is). The schema
                    # allows extra fields, so old readers are unaffected.
                    extra["alloc"] = {
                        key: after[key] - alloc_before[key]
                        for key in (
                            "graph_bytes",
                            "backward_bytes",
                            "arena_hits",
                            "arena_misses",
                            "fused_ops",
                        )
                    }
                    extra["alloc"]["peak_bytes"] = after["peak_bytes"]
                self._emit(
                    "epoch",
                    epoch=stats.epoch,
                    seconds=stats.seconds,
                    samples=samples,
                    samples_per_sec=rate,
                    total=stats.total,
                    rating=stats.rating,
                    scl=stats.scl,
                    domain=stats.domain,
                    valid_rmse=stats.valid_rmse,
                    rng=rng_digest,
                    **extra,
                )
                stopping = False
                # Poll for cooperative preemption at the epoch boundary so
                # the stop lands on checkpointable state: resume later is
                # then bit-identical to never having stopped.
                preempted = stop_check is not None and bool(stop_check())
                if preempted:
                    self._note_health(health, HealthEvent(
                        epoch=epoch, kind="preempt",
                        detail="stop_check requested cooperative stop",
                    ))
                if self.config.early_stopping and stats.valid_rmse is not None:
                    if stats.valid_rmse < best_rmse - 1e-6:
                        best_rmse = stats.valid_rmse
                        best_state = self.model.state_dict()
                        stale = 0
                        if checkpoint_every:
                            ckpt_io.write_training_checkpoint(
                                self._make_checkpoint(
                                    optimizer, epoch, best_rmse, stale,
                                    best_state, history, health,
                                ),
                                Path(checkpoint_dir) / "best",
                            )
                    else:
                        stale += 1
                        stopping = stale >= self.config.patience
                if checkpoint_every and (
                    epoch % checkpoint_every == 0 or epoch == epochs
                    or stopping or preempted
                ):
                    target = Path(checkpoint_dir) / ckpt_io.checkpoint_directory_name(epoch)
                    ckpt_io.write_training_checkpoint(
                        self._make_checkpoint(
                            optimizer, epoch, best_rmse, stale, best_state,
                            history, health,
                        ),
                        target,
                    )
                    ckpt_io.prune_checkpoints(checkpoint_dir, keep_last)
                    self._note_health(health, HealthEvent(
                        epoch=epoch, kind="checkpoint", detail=str(target),
                    ))
                if preempted:
                    status = "preempted"
                    break
                if stopping:
                    break
                epoch += 1
            if status == "aborted":
                status = "completed"
        except TrainingDivergedError:
            status = "diverged"
            raise
        finally:
            nn.set_fast_math(previous_fast)
            nn.set_graph_optimizer(previous_graph)
            self._finish_run(status, history)
        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return result

    def _run_epoch(
        self,
        epoch: int,
        interactions: Sequence[Review],
        optimizer: nn.Optimizer,
        injector: "FaultInjector | None",
    ) -> EpochStats:
        """One guarded training epoch; raises on non-finite loss/gradients."""
        start = time.perf_counter()
        sums = {"total": 0.0, "rating": 0.0, "scl": 0.0, "domain": 0.0}
        batches = 0
        for batch_index, arrays in enumerate(self._epoch_batches(interactions)):
            if injector is not None:
                injector.before_batch(epoch, batch_index)
            with self._phase("forward"):
                losses = self.model.compute_losses(*arrays)
            if injector is not None:
                injector.after_forward(epoch, batch_index, losses)
            total = float(losses["total"].item())
            if not np.isfinite(total):
                raise _DivergenceDetected("nonfinite_loss", batch_index, total)
            with self._phase("backward"):
                optimizer.zero_grad()
                losses["total"].backward()
            if injector is not None:
                injector.after_backward(epoch, batch_index, self.model.parameters())
            with self._phase("optimizer"):
                grad_norm = nn.clip_grad_norm(
                    self.model.parameters(), self.config.grad_clip
                )
                if not np.isfinite(grad_norm):
                    raise _DivergenceDetected(
                        "nonfinite_grad", batch_index, grad_norm
                    )
                optimizer.step()
            for key in sums:
                sums[key] += losses[key].item()
            batches += 1
            batch_samples = int(arrays[3].shape[0])
            self.metrics.inc("batches")
            self.metrics.inc("samples", batch_samples)
            self.metrics.observe("batch_loss", total)
            self.metrics.observe("grad_norm", float(grad_norm))
            self.metrics.set_gauge("lr", float(optimizer.lr))
            self._emit(
                "batch",
                epoch=epoch,
                batch=batch_index,
                loss=total,
                grad_norm=float(grad_norm),
                lr=float(optimizer.lr),
                samples=batch_samples,
            )
        seconds = time.perf_counter() - start
        return EpochStats(
            epoch=epoch,
            total=sums["total"] / batches,
            rating=sums["rating"] / batches,
            scl=sums["scl"] / batches,
            domain=sums["domain"] / batches,
            seconds=seconds,
        )

    def _finish_run(self, status: str, history: list[EpochStats]) -> None:
        """Emit the end-of-run summary events and flush the sink.

        Runs from ``fit``'s finally block, so even an aborted run (a crash
        mid-epoch, an exhausted divergence budget) leaves a telemetry file
        that ends with ``span_summary`` / ``metrics_summary`` / ``run_end``.
        """
        summary = self.metrics.snapshot()
        if nn.tensor_stats_enabled():
            summary["gauges"]["tensor_ops"] = repr(nn.tensor_stats())
        self._emit(
            "span_summary",
            totals=self.tracer.totals(),
            spans=self.tracer.summary(),
            perf={
                name: entry["seconds"] for name, entry in self.perf.summary().items()
            },
        )
        self._emit("metrics_summary", **summary)
        self._emit("run_end", status=status, epochs_trained=len(history))
        sink = self.telemetry if self.telemetry is not None else get_active_sink()
        if sink is not None:
            sink.flush()

    # ------------------------------------------------------------------
    # Training-state capture (in-memory rollback + on-disk checkpoints)
    # ------------------------------------------------------------------
    def _capture_state(self, optimizer: nn.Optimizer) -> dict:
        """Copy of everything a bit-identical restart of this epoch needs."""
        return {
            "model": self.model.state_dict(),
            "optimizer": optimizer.state_dict(),
            "rng": self._rng.bit_generator.state,
        }

    def _restore_state(self, snapshot: dict, optimizer: nn.Optimizer) -> None:
        self.model.load_state_dict(snapshot["model"])
        optimizer.load_state_dict(snapshot["optimizer"])
        self._rng.bit_generator.state = snapshot["rng"]

    def _make_checkpoint(
        self,
        optimizer: nn.Optimizer,
        epoch: int,
        best_rmse: float,
        stale: int,
        best_state: dict | None,
        history: list[EpochStats],
        health: list[HealthEvent],
    ):
        from .checkpoint import TrainingCheckpoint  # local import: cycle guard

        return TrainingCheckpoint(
            config=self.config,
            epoch=epoch,
            model_state=self.model.state_dict(),
            optimizer_state=optimizer.state_dict(),
            rng_state=self._rng.bit_generator.state,
            best_rmse=best_rmse,
            stale=stale,
            best_state=best_state,
            history=list(history),
            health=list(health),
        )

    def _load_resume_state(self, resume_from: str | os.PathLike):
        from .checkpoint import (  # local import: cycle guard
            CheckpointError,
            find_latest_checkpoint,
            read_training_checkpoint,
        )

        path = Path(resume_from)
        if (path / "MANIFEST.json").exists() or not path.is_dir():
            return read_training_checkpoint(path), path
        latest = find_latest_checkpoint(path)
        if latest is None:
            raise CheckpointError(
                f"{path}: no valid training checkpoint found (neither a "
                "checkpoint directory nor a run directory with complete "
                "epoch-* checkpoints)"
            )
        return read_training_checkpoint(latest), latest

    def _validation_rmse(self, result: TrainResult) -> float:
        from .predictor import ColdStartPredictor  # local import: cycle guard
        from ..eval.metrics import rmse

        predictor = ColdStartPredictor(result)
        interactions = self.split.eval_interactions(self.dataset, "valid")
        if not interactions:
            return float("nan")
        predicted = predictor.predict_interactions(interactions)
        actual = np.array([r.rating for r in interactions])
        return rmse(actual, predicted)
