"""Domain Adversarial Training Module (paper §4.4).

Two MLP domain classifiers predict whether a user representation came from
the source (label 0) or target (label 1) domain:

* the **invariant classifier** sees the domain-invariant features *through a
  Gradient Reversal Layer* — minimizing its loss w.r.t. classifier weights
  while the reversed gradients push the shared extractor to make invariant
  features indistinguishable across domains (Eq. 14-15);
* the **specific classifier** sees the domain-specific features normally —
  it is *supposed* to succeed, which keeps specific features genuinely
  domain-informative (the shared-private rationale, Eq. 16-17).

``L_domain = L_domain_specific + L_domain_invariant`` (Eq. 20).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .config import OmniMatchConfig

__all__ = ["DomainAdversary", "mmd_rbf"]


def mmd_rbf(x: nn.Tensor, y: nn.Tensor, bandwidth: float | None = None) -> nn.Tensor:
    """RBF-kernel Maximum Mean Discrepancy between two feature batches.

    The paper notes (§4.4) that OmniMatch "is versatile enough to
    accommodate other domain adversarial training methods"; MMD is the
    classic non-adversarial alternative — a differentiable distance between
    the source and target feature distributions that the extractor
    *minimizes directly* (no min-max game, no GRL).

    ``bandwidth`` defaults to the median pairwise squared distance
    (the median heuristic), computed from data as a constant.
    """

    def pairwise_sq_dists(a: nn.Tensor, b: nn.Tensor) -> nn.Tensor:
        a_sq = (a * a).sum(axis=1, keepdims=True)  # (n, 1)
        b_sq = (b * b).sum(axis=1, keepdims=True)  # (m, 1)
        return a_sq + b_sq.T - 2.0 * (a @ b.T)

    if bandwidth is None:
        with nn.no_grad():
            all_d = pairwise_sq_dists(
                nn.Tensor(np.concatenate([x.data, y.data])),
                nn.Tensor(np.concatenate([x.data, y.data])),
            ).data
        positive = all_d[all_d > 1e-12]
        bandwidth = float(np.median(positive)) if positive.size else 1.0

    def kernel_mean(a: nn.Tensor, b: nn.Tensor) -> nn.Tensor:
        return (-(pairwise_sq_dists(a, b)) / bandwidth).exp().mean()

    return kernel_mean(x, x) + kernel_mean(y, y) - 2.0 * kernel_mean(x, y)


class DomainAdversary(nn.Module):
    """GRL-trained invariant classifier + plainly-trained specific classifier."""

    def __init__(self, config: OmniMatchConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.grl_lambda = config.grl_lambda
        self.alignment = config.alignment_method
        hidden = max(16, config.invariant_dim // 2)
        self.invariant_classifier = nn.MLP(
            [config.invariant_dim, hidden, 2], rng, dropout=config.dropout
        )
        self.specific_classifier = nn.MLP(
            [config.specific_dim, hidden, 2], rng, dropout=config.dropout
        )

    def forward(
        self,
        source_invariant: nn.Tensor,
        target_invariant: nn.Tensor,
        source_specific: nn.Tensor,
        target_specific: nn.Tensor,
    ) -> nn.Tensor:
        """Compute L_domain for a batch of paired user representations."""
        if self.alignment == "mmd":
            # Non-adversarial alternative (§4.4): directly minimize the MMD
            # between the source and target invariant distributions.
            loss_invariant = mmd_rbf(source_invariant, target_invariant)
        else:
            invariant = nn.concat(
                [
                    F.gradient_reversal(source_invariant, self.grl_lambda),
                    F.gradient_reversal(target_invariant, self.grl_lambda),
                ],
                axis=0,
            )
            labels_inv = np.concatenate(
                [
                    np.zeros(source_invariant.shape[0], dtype=np.int64),
                    np.ones(target_invariant.shape[0], dtype=np.int64),
                ]
            )
            loss_invariant = nn.cross_entropy(
                self.invariant_classifier(invariant), labels_inv
            )
        specific = nn.concat([source_specific, target_specific], axis=0)
        labels = np.concatenate(
            [
                np.zeros(source_specific.shape[0], dtype=np.int64),
                np.ones(target_specific.shape[0], dtype=np.int64),
            ]
        )
        loss_specific = nn.cross_entropy(self.specific_classifier(specific), labels)
        return loss_invariant + loss_specific

    def domain_accuracy(
        self, invariant: nn.Tensor, domain_labels: np.ndarray
    ) -> float:
        """Diagnostic: how well the invariant classifier separates domains.

        A value near 0.5 means the GRL succeeded (features are invariant).
        """
        with nn.no_grad():
            logits = self.invariant_classifier(invariant)
        predictions = logits.data.argmax(axis=1)
        return float((predictions == np.asarray(domain_labels)).mean())
