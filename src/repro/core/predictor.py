"""Cold-start prediction: auxiliary documents in, expected ratings out.

For a cold-start user the target document does not exist, so the predictor
builds it with the Auxiliary Reviews Generation Module. For a training user
(e.g. when diagnosing on warm users) the real target document is used.

When ``use_auxiliary_reviews`` is disabled (Table 5 ablation), cold users
fall back to their *source* document as the target-extractor input — the
suboptimal strategy §4.1 warns about.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.records import Review
from .trainer import TrainResult

__all__ = ["ColdStartPredictor"]


class ColdStartPredictor:
    """Batch rating prediction over (user, item) pairs."""

    def __init__(self, result: TrainResult, batch_size: int = 256) -> None:
        self.model = result.model
        self.store = result.store
        self.aux_generator = result.aux_generator
        self.batch_size = batch_size
        self._target_doc_cache: dict[str, np.ndarray] = {}
        self._train_users = set(result.store.split.train_users)

    # ------------------------------------------------------------------
    def _target_doc(self, user_id: str) -> np.ndarray:
        """Target-extractor input for ``user_id`` (real, auxiliary, or fallback)."""
        if user_id in self._target_doc_cache:
            return self._target_doc_cache[user_id]
        if user_id in self._train_users:
            doc = self.store.user_target_doc(user_id)
        elif self.model.config.use_auxiliary_reviews:
            reviews = self.aux_generator.generate(user_id)
            if reviews:
                doc = self.store.encode_reviews(reviews)
            else:  # no like-minded user found for any record: source fallback
                doc = self.store.user_source_doc(user_id)
        else:
            doc = self.store.user_source_doc(user_id)
        self._target_doc_cache[user_id] = doc
        return doc

    # ------------------------------------------------------------------
    @nn.no_grad()
    def predict_pairs(self, pairs: list[tuple[str, str]]) -> np.ndarray:
        """Expected ratings for explicit ``(user_id, item_id)`` pairs.

        Runs under :class:`repro.nn.no_grad`: inference never builds tape
        nodes, so prediction allocates no backward closures.
        """
        blend = self.model.config.cold_inference in ("blend", "dual")
        predictions = np.empty(len(pairs))
        for start in range(0, len(pairs), self.batch_size):
            chunk = pairs[start : start + self.batch_size]
            target_docs = np.stack([self._target_doc(u) for u, _ in chunk])
            item_docs = np.stack([self.store.item_doc(i) for _, i in chunk])
            source_docs = (
                np.stack([self.store.user_source_doc(u) for u, _ in chunk])
                if blend
                else None
            )
            predictions[start : start + len(chunk)] = self.model.predict_ratings(
                target_docs, item_docs, source_tokens=source_docs
            )
        return predictions

    def predict_interactions(self, interactions: list[Review]) -> np.ndarray:
        """Expected ratings for held-out interactions (evaluation path)."""
        return self.predict_pairs([(r.user_id, r.item_id) for r in interactions])
