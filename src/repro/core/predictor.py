"""Cold-start prediction: auxiliary documents in, expected ratings out.

For a cold-start user the target document does not exist, so the predictor
builds it with the Auxiliary Reviews Generation Module. For a training user
(e.g. when diagnosing on warm users) the real target document is used.

When ``use_auxiliary_reviews`` is disabled (Table 5 ablation), cold users
fall back to their *source* document as the target-extractor input — the
suboptimal strategy §4.1 warns about.

Since the serving PR, scoring delegates to
:class:`repro.serve.InferenceEngine`: each unique user and item in a pair
batch is encoded exactly once (and kept in the engine's caches across
calls), so evaluation workloads — where one cold user appears in many
pairs — pay for two extractor towers per *entity* instead of per *pair*.
The eval protocol and the trainer's validation loop inherit the speedup
unchanged.
"""

from __future__ import annotations

import numpy as np

from ..data.records import Review
from .trainer import TrainResult

__all__ = ["ColdStartPredictor"]


class ColdStartPredictor:
    """Batch rating prediction over (user, item) pairs."""

    def __init__(self, result: TrainResult, batch_size: int = 256) -> None:
        from ..serve import InferenceEngine  # local import: cycle guard

        self.model = result.model
        self.store = result.store
        self.aux_generator = result.aux_generator
        self.batch_size = batch_size
        self.engine = InferenceEngine(result, batch_size=batch_size)

    # ------------------------------------------------------------------
    def _target_doc(self, user_id: str) -> np.ndarray:
        """Target-extractor input for ``user_id`` (real, auxiliary, or fallback)."""
        return self.engine.docs.target_doc(user_id)

    # ------------------------------------------------------------------
    def predict_pairs(self, pairs: list[tuple[str, str]]) -> np.ndarray:
        """Expected ratings for explicit ``(user_id, item_id)`` pairs.

        Returned in the configured compute dtype (``config.dtype``). Runs
        under ``repro.nn.no_grad``: inference never builds tape nodes.
        """
        return self.engine.score_pairs(pairs)

    def predict_interactions(self, interactions: list[Review]) -> np.ndarray:
        """Expected ratings for held-out interactions (evaluation path)."""
        return self.predict_pairs([(r.user_id, r.item_id) for r in interactions])
