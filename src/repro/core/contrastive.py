"""Contrastive Representation Learning Module (paper §4.3).

User-item pairs are formed by concatenating a user representation (source or
target) with the item representation, projected to a low dimension by an MLP
(Eq. 11), and contrasted with the supervised contrastive loss (Eq. 13):

* the source view ``x_src = Proj(r_src (+) r_item)`` and the target view
  ``x_tgt = Proj(r_tgt (+) r_item)`` of the *same* interaction carry the
  same rating label, so SupCon pulls each user's source and target
  representations together (domain alignment);
* any two interactions with the same rating are positives, so rating groups
  cluster in the projection space (the collaborative-filtering signal).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .config import OmniMatchConfig

__all__ = ["ContrastiveModule"]


class ContrastiveModule(nn.Module):
    """Projection head + supervised contrastive loss over paired views."""

    def __init__(
        self, pair_dim: int, config: OmniMatchConfig, rng: np.random.Generator
    ) -> None:
        super().__init__()
        hidden = max(config.projection_dim * 2, 32)
        self.projection = nn.MLP([pair_dim, hidden, config.projection_dim], rng)
        self.temperature = config.temperature

    def forward(
        self,
        source_repr: nn.Tensor,
        target_repr: nn.Tensor,
        item_repr: nn.Tensor,
        rating_labels: np.ndarray,
    ) -> nn.Tensor:
        """L_SCL over both views of a batch of user-item interactions.

        All three representations are row-aligned: row ``j`` of each belongs
        to the same interaction, whose rating class is ``rating_labels[j]``.
        """
        rating_labels = np.asarray(rating_labels, dtype=np.int64)
        x_source = self.projection(nn.concat([source_repr, item_repr], axis=-1))
        x_target = self.projection(nn.concat([target_repr, item_repr], axis=-1))
        features = nn.concat([x_source, x_target], axis=0)
        labels = np.concatenate([rating_labels, rating_labels])
        return nn.supcon_loss(features, labels, temperature=self.temperature)

    def project_pairs(self, user_repr: nn.Tensor, item_repr: nn.Tensor) -> nn.Tensor:
        """Expose projected pairs for inspection / visualization."""
        return self.projection(nn.concat([user_repr, item_repr], axis=-1))
