"""Auxiliary Reviews Generation Module (paper §4.1, Algorithm 1).

For every cold-start user ``u``:

1. walk u's purchase records in the *source* domain;
2. for each record (item, rating), find the like-minded users — overlapping
   users who gave the *same item* the *same rating* (O(1) via the
   ``like_minded`` dictionary built in :class:`repro.data.DomainData`);
3. keep only like-minded users whose target-domain history is visible;
4. pick one like-minded user at random, then one of their target-domain
   reviews at random, and append it to u's auxiliary document.

The resulting document is a sketch of the cold user's preferences *as they
would appear in the target domain*, and is fed to the Target Feature
Extractor in place of the (non-existent) real target reviews.

:meth:`AuxiliaryReviewGenerator.explain` returns the full selection trace,
reproducing the §5.10 case-study output.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..data.records import CrossDomainDataset, Review

__all__ = ["AuxiliarySelection", "AuxiliaryReviewGenerator"]


@dataclass(frozen=True)
class AuxiliarySelection:
    """One step of Algorithm 1's inner loop — a case-study trace entry."""

    source_item: str
    source_rating: float
    source_review: str
    like_minded_user: str | None
    auxiliary_review: str | None

    @property
    def succeeded(self) -> bool:
        return self.auxiliary_review is not None


class AuxiliaryReviewGenerator:
    """Generates auxiliary target-domain review documents (Algorithm 1)."""

    def __init__(
        self,
        dataset: CrossDomainDataset,
        allowed_users: Iterable[str],
        field: str = "summary",
        seed: int = 0,
    ) -> None:
        """
        Parameters
        ----------
        dataset:
            The cross-domain scenario.
        allowed_users:
            Users whose target-domain reviews may be borrowed — the
            *training* overlapping users. Cold-start users must never appear
            here (their target reviews are hidden by the protocol).
        field:
            Which review field to emit ('summary' or 'text').
        seed:
            Seeds the random like-minded-user / review selection.
        """
        if field not in ("summary", "text"):
            raise ValueError("field must be 'summary' or 'text'")
        self.dataset = dataset
        self.allowed_users = set(allowed_users)
        self.field = field
        self.seed = seed
        self._cache: dict[str, list[str]] = {}

    def _user_rng(self, user_id: str) -> np.random.Generator:
        """Per-user generator: selections are deterministic for each user
        regardless of the order users are processed in (training-time lazy
        generation and a fresh post-hoc generator agree exactly)."""
        return np.random.default_rng((self.seed, zlib.crc32(user_id.encode())))

    # ------------------------------------------------------------------
    def _review_text(self, review: Review) -> str:
        return review.text if self.field == "text" else (review.summary or review.text)

    def _select_for_record(
        self, user_id: str, record: Review, rng: np.random.Generator
    ) -> AuxiliarySelection:
        """Lines 6-16 of Algorithm 1 for a single purchase record."""
        like_minded_s = self.dataset.source.like_minded_users(
            record.item_id, record.rating
        )
        # Line 9-11: keep overlapping users with visible target history.
        like_minded_t = [
            lm for lm in like_minded_s if lm != user_id and lm in self.allowed_users
        ]
        if not like_minded_t:
            return AuxiliarySelection(
                source_item=record.item_id,
                source_rating=record.rating,
                source_review=self._review_text(record),
                like_minded_user=None,
                auxiliary_review=None,
            )
        aux_user = like_minded_t[int(rng.integers(len(like_minded_t)))]
        aux_records = self.dataset.target.reviews_of_user(aux_user)
        aux_record = aux_records[int(rng.integers(len(aux_records)))]
        return AuxiliarySelection(
            source_item=record.item_id,
            source_rating=record.rating,
            source_review=self._review_text(record),
            like_minded_user=aux_user,
            auxiliary_review=self._review_text(aux_record),
        )

    # ------------------------------------------------------------------
    def explain(self, user_id: str) -> list[AuxiliarySelection]:
        """Full per-record selection trace for ``user_id`` (§5.10 case study)."""
        records = self.dataset.source.reviews_of_user(user_id)
        rng = self._user_rng(user_id)
        return [self._select_for_record(user_id, record, rng) for record in records]

    def generate(self, user_id: str) -> list[str]:
        """The auxiliary review document for ``user_id`` — one review per
        source purchase record with at least one eligible like-minded user.

        Results are cached: each user's document is generated once, so the
        training-time augmentation and the evaluation-time prediction see
        the same document.
        """
        if user_id not in self._cache:
            trace = self.explain(user_id)
            self._cache[user_id] = [
                sel.auxiliary_review for sel in trace if sel.succeeded
            ]
        return self._cache[user_id]

    def coverage(self, user_ids: Iterable[str]) -> float:
        """Fraction of users for whom at least one auxiliary review exists."""
        user_ids = list(user_ids)
        if not user_ids:
            return 0.0
        hits = sum(1 for uid in user_ids if self.generate(uid))
        return hits / len(user_ids)
