"""Deterministic fault injection for the robustness test harness.

Production training runs die in three ways the runtime must survive: the
process is killed mid-epoch, the numerics diverge (NaN/Inf losses or
gradients), and checkpoints on disk rot (truncation, bit-flips, tampering).
This module simulates all three **deterministically** — every injector is
driven by explicit coordinates or a seed, so a chaos run that fails is
exactly reproducible.

Injectors plug into :meth:`repro.core.OmniMatchTrainer.fit` via
``fault_injector=...`` and receive three hooks per batch:

* ``before_batch(epoch, batch)`` — may raise :class:`SimulatedCrash` to
  model the process dying mid-epoch;
* ``after_forward(epoch, batch, losses)`` — may overwrite the loss tensors
  (how :class:`NonFiniteLossInjector` plants a NaN/Inf loss);
* ``after_backward(epoch, batch, parameters)`` — may corrupt gradients
  (how :class:`NonFiniteGradientInjector` plants a NaN/Inf gradient).

The file-corruption helpers (:func:`flip_random_bit`, :func:`truncate_file`,
:func:`delete_manifest_entry`) mutate checkpoint artifacts on disk; the
chaos suite asserts that every such corruption is *detected* by
:func:`repro.core.checkpoint.read_training_checkpoint` rather than loaded.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Sequence

import numpy as np

__all__ = [
    "SimulatedCrash",
    "FaultInjector",
    "CompositeInjector",
    "CrashInjector",
    "NonFiniteLossInjector",
    "NonFiniteGradientInjector",
    "WorkerKillPlan",
    "ServeKillPlan",
    "SlowWorkerPlan",
    "POISON_USER",
    "poisoned_request",
    "random_crash_point",
    "flip_random_bit",
    "truncate_file",
    "delete_manifest_entry",
]


class SimulatedCrash(RuntimeError):
    """Stands in for SIGKILL: the training process dies without cleanup."""


class FaultInjector:
    """No-op base class; injectors override only the hooks they need."""

    def before_batch(self, epoch: int, batch: int) -> None:
        """Called before the batch is assembled into a forward pass."""

    def after_forward(self, epoch: int, batch: int, losses: dict) -> None:
        """Called with the loss tensors, before the finiteness guard."""

    def after_backward(
        self, epoch: int, batch: int, parameters: Sequence
    ) -> None:
        """Called with the model parameters after gradients are computed."""


class CompositeInjector(FaultInjector):
    """Fan one hook invocation out to several injectors, in order."""

    def __init__(self, injectors: Sequence[FaultInjector]) -> None:
        self.injectors = list(injectors)

    def before_batch(self, epoch: int, batch: int) -> None:
        for injector in self.injectors:
            injector.before_batch(epoch, batch)

    def after_forward(self, epoch: int, batch: int, losses: dict) -> None:
        for injector in self.injectors:
            injector.after_forward(epoch, batch, losses)

    def after_backward(
        self, epoch: int, batch: int, parameters: Sequence
    ) -> None:
        for injector in self.injectors:
            injector.after_backward(epoch, batch, parameters)


class _ScheduledFault(FaultInjector):
    """Shared firing logic: trigger at (epoch, batch), once or every time.

    ``repeat=False`` (default) models a transient fault — it fires exactly
    once, so the trainer's rollback-and-retry recovers. ``repeat=True``
    models a persistent fault that re-fires on every retry of the epoch,
    which is how the tests exhaust the retry budget.
    """

    def __init__(self, epoch: int, batch: int, repeat: bool = False) -> None:
        self.epoch = epoch
        self.batch = batch
        self.repeat = repeat
        self.fired = 0

    def _should_fire(self, epoch: int, batch: int) -> bool:
        if epoch != self.epoch or batch != self.batch:
            return False
        if self.fired and not self.repeat:
            return False
        self.fired += 1
        return True


class CrashInjector(_ScheduledFault):
    """Raise :class:`SimulatedCrash` at the scheduled (epoch, batch)."""

    def before_batch(self, epoch: int, batch: int) -> None:
        if self._should_fire(epoch, batch):
            raise SimulatedCrash(
                f"injected crash at epoch {epoch}, batch {batch}"
            )


class NonFiniteLossInjector(_ScheduledFault):
    """Overwrite the total loss with ``value`` (default NaN)."""

    def __init__(
        self,
        epoch: int,
        batch: int,
        value: float = float("nan"),
        repeat: bool = False,
    ) -> None:
        super().__init__(epoch, batch, repeat)
        self.value = value

    def after_forward(self, epoch: int, batch: int, losses: dict) -> None:
        if self._should_fire(epoch, batch):
            tensor = losses["total"]
            tensor.data = np.full_like(tensor.data, self.value)


class NonFiniteGradientInjector(_ScheduledFault):
    """Plant ``value`` (default NaN) into one parameter's gradient."""

    def __init__(
        self,
        epoch: int,
        batch: int,
        value: float = float("nan"),
        param_index: int = 0,
        repeat: bool = False,
    ) -> None:
        super().__init__(epoch, batch, repeat)
        self.value = value
        self.param_index = param_index

    def after_backward(
        self, epoch: int, batch: int, parameters: Sequence
    ) -> None:
        if self._should_fire(epoch, batch):
            param = parameters[self.param_index]
            if param.grad is None:
                param.grad = np.zeros_like(param.data)
            param.grad.flat[0] = self.value


class WorkerKillPlan:
    """Deterministic worker-process deaths for the parallel engine.

    ``kills`` is a set of ``(task_index, attempt)`` coordinates: a worker
    about to execute that attempt of that task instead dies on the spot
    via ``os._exit`` — no cleanup, no exception propagation, exactly like
    a SIGKILL'd worker. Because the coordinates include the attempt
    number, the requeued retry (attempt + 1) proceeds normally, so a
    chaos run exercises the death → requeue → recover path with a fully
    reproducible schedule. The plan is picklable and travels to workers
    in their spawn arguments.
    """

    #: Exit code used for injected deaths (distinguishable from real ones).
    EXIT_CODE = 117

    def __init__(self, kills: Sequence[tuple[int, int]]) -> None:
        self.kills = frozenset((int(index), int(attempt)) for index, attempt in kills)

    def should_kill(self, task_index: int, attempt: int) -> bool:
        """Whether this attempt of this task is scheduled to die."""
        return (task_index, attempt) in self.kills

    def maybe_kill(self, task_index: int, attempt: int) -> None:
        """Die via ``os._exit`` if (task_index, attempt) is scheduled.

        Callers that share ``multiprocessing.Queue`` objects with other
        processes should instead check :meth:`should_kill`, drain their
        queue feeder threads, and then exit — dying while a feeder thread
        holds the queue's write lock would wedge every other writer (the
        engine does exactly this dance).
        """
        if self.should_kill(task_index, attempt):
            os._exit(self.EXIT_CODE)


class ServeKillPlan:
    """Deterministic serving-worker deaths for the recommendation daemon.

    ``kills`` is a set of ``(worker_slot, generation, batch_index)``
    coordinates: the worker occupying that slot in that generation dies
    via ``os._exit`` immediately before handling its ``batch_index``-th
    request batch. Because respawns bump the generation, the healed worker
    sails past the same batch count unless the plan also schedules its new
    generation — so a chaos run exercises death → requeue → recover with a
    reproducible schedule, mid-traffic.
    """

    #: Exit code used for injected serving deaths.
    EXIT_CODE = 118

    def __init__(self, kills: Sequence[tuple[int, int, int]]) -> None:
        self.kills = frozenset(
            (int(slot), int(generation), int(batch))
            for slot, generation, batch in kills
        )

    def should_kill(self, slot: int, generation: int, batch_index: int) -> bool:
        """Whether this batch of this worker generation is scheduled to die."""
        return (slot, generation, batch_index) in self.kills


class SlowWorkerPlan:
    """Deterministic worker stalls (the wedged-but-alive failure mode).

    ``stalls`` maps ``(worker_slot, generation, batch_index)`` to a stall
    duration in seconds; the worker sleeps that long before handling the
    batch. The daemon's stall watchdog treats an in-flight batch older
    than its stall budget as a wedge and SIGKILLs the worker, converting
    the stall into the already-handled death path.
    """

    def __init__(self, stalls: dict[tuple[int, int, int], float]) -> None:
        self.stalls = {
            (int(slot), int(generation), int(batch)): float(seconds)
            for (slot, generation, batch), seconds in stalls.items()
        }

    def stall_seconds(self, slot: int, generation: int, batch_index: int) -> float:
        """Scheduled stall for this batch (0.0 when none)."""
        return self.stalls.get((slot, generation, batch_index), 0.0)

    def maybe_stall(self, slot: int, generation: int, batch_index: int) -> None:
        import time

        seconds = self.stall_seconds(slot, generation, batch_index)
        if seconds > 0:
            time.sleep(seconds)


#: Sentinel user id that raises inside a serving worker's execution path
#: (the document store tolerates unknown ids, so the daemon worker checks
#: for the sentinel explicitly), standing in for any malformed or
#: internally-poisoned request. The daemon must answer it with an ``error``
#: response and keep the batch-mates (and the worker) healthy.
POISON_USER = "__repro_poisoned_user__"


def poisoned_request(request_id: int = 0, op: str = "recommend", k: int = 5) -> dict:
    """A protocol request guaranteed to raise inside a serving worker."""
    if op == "recommend":
        return {"id": request_id, "op": "recommend", "user": POISON_USER, "k": k}
    if op == "score":
        return {
            "id": request_id,
            "op": "score",
            "pairs": [[POISON_USER, "no-such-item"]],
        }
    raise ValueError(f"cannot poison op {op!r}")


def random_crash_point(
    seed: int, epochs: int, batches_per_epoch: int, min_epoch: int = 1
) -> tuple[int, int]:
    """Seed-driven (epoch, batch) coordinates for a :class:`CrashInjector`."""
    if epochs < min_epoch or batches_per_epoch < 1:
        raise ValueError("need at least one epoch and one batch to crash in")
    rng = np.random.default_rng(seed)
    epoch = int(rng.integers(min_epoch, epochs + 1))
    batch = int(rng.integers(0, batches_per_epoch))
    return epoch, batch


# ----------------------------------------------------------------------
# On-disk corruption (checkpoint rot simulation)
# ----------------------------------------------------------------------
def flip_random_bit(path: str | os.PathLike, seed: int = 0) -> int:
    """Flip one seed-chosen bit in ``path``; returns the byte offset."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"{path}: cannot flip a bit in an empty file")
    rng = np.random.default_rng(seed)
    offset = int(rng.integers(len(data)))
    data[offset] ^= 1 << int(rng.integers(8))
    path.write_bytes(bytes(data))
    return offset


def truncate_file(path: str | os.PathLike, keep_fraction: float = 0.5) -> int:
    """Chop ``path`` down to ``keep_fraction`` of its bytes; returns new size."""
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError("keep_fraction must be in [0, 1)")
    path = Path(path)
    data = path.read_bytes()
    keep = int(len(data) * keep_fraction)
    path.write_bytes(data[:keep])
    return keep


def delete_manifest_entry(
    checkpoint_dir: str | os.PathLike, filename: str
) -> None:
    """Drop ``filename``'s entry from a checkpoint's MANIFEST (tampering)."""
    manifest_path = Path(checkpoint_dir) / "MANIFEST.json"
    manifest = json.loads(manifest_path.read_text())
    del manifest["files"][filename]
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
