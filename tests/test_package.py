"""Package-level contracts: public API surface and docstring coverage."""

import inspect

import repro
import repro.baselines
import repro.core
import repro.data
import repro.eval
import repro.nn
import repro.text


ALL_PACKAGES = [repro, repro.nn, repro.text, repro.data, repro.core,
                repro.baselines, repro.eval]


class TestPublicSurface:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for package in ALL_PACKAGES:
            for name in package.__all__:
                assert hasattr(package, name), f"{package.__name__}.{name}"

    def test_no_duplicate_exports(self):
        for package in ALL_PACKAGES:
            assert len(package.__all__) == len(set(package.__all__)), package.__name__

    def test_packages_have_docstrings(self):
        for package in ALL_PACKAGES:
            assert package.__doc__, package.__name__


class TestDocstringCoverage:
    def test_every_public_item_documented(self):
        """Every class and function exported from the subpackages carries a
        docstring — the deliverable requires documented public API."""
        undocumented = []
        for package in ALL_PACKAGES[1:]:
            for name in package.__all__:
                obj = getattr(package, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        undocumented.append(f"{package.__name__}.{name}")
        assert not undocumented, undocumented

    def test_public_classes_have_documented_public_methods(self):
        missing = []
        for package in ALL_PACKAGES[1:]:
            for name in package.__all__:
                obj = getattr(package, name)
                if not inspect.isclass(obj):
                    continue
                for method_name, method in inspect.getmembers(obj, inspect.isfunction):
                    if method_name.startswith("_"):
                        continue
                    if not inspect.getdoc(method):
                        missing.append(f"{package.__name__}.{name}.{method_name}")
        assert not missing, missing
