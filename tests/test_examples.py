"""The examples must at least parse and expose a main() — they are part of
the public deliverable. (Executing them is covered by the benchmark-scale
machinery; here we guard against bit-rot cheaply.)"""

import ast
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_at_least_three_examples(self):
        assert len(EXAMPLE_FILES) >= 3

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
    def test_parses(self, path):
        tree = ast.parse(path.read_text())
        assert tree.body, path

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
    def test_has_main_and_guard(self, path):
        source = path.read_text()
        assert "def main()" in source, path
        assert '__name__ == "__main__"' in source, path

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), path

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
    def test_imports_only_public_api(self, path):
        """Examples must demo the public surface, not private internals."""
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro"):
                    parts = node.module.split(".")
                    assert all(not p.startswith("_") for p in parts), node.module
