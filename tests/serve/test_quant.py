"""QuantizedMatrix: symmetric int8 storage with fused-dequant GEMM."""

import numpy as np
import pytest

from repro.serve import QuantizedMatrix


def random_matrix(n=64, d=12, seed=0, dtype=np.float32):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((n, d)) * rng.uniform(0.1, 5.0, size=d)).astype(dtype)


class TestQuantization:
    def test_roundtrip_error_bounded_by_half_scale(self):
        matrix = random_matrix()
        q = QuantizedMatrix(matrix)
        error = np.abs(q.dequantize() - matrix)
        # Per-dimension bound: rounding error is at most scale[j] / 2.
        assert np.all(error <= q.scale / 2.0 + 1e-7)
        assert error.max() <= q.max_abs_error() + 1e-7

    def test_codes_are_symmetric_int8(self):
        matrix = random_matrix()
        q_pos = QuantizedMatrix(matrix)
        q_neg = QuantizedMatrix(-matrix)
        assert q_pos.codes.dtype == np.int8
        # [-127, 127] with -128 unused, so q(-x) == -q(x) exactly.
        np.testing.assert_array_equal(q_neg.codes, -q_pos.codes)
        assert q_pos.codes.min() >= -127

    def test_zero_columns_dequantize_exactly(self):
        matrix = random_matrix()
        matrix[:, 3] = 0.0
        q = QuantizedMatrix(matrix)
        assert q.scale[3] == 1.0
        np.testing.assert_array_equal(q.dequantize()[:, 3], 0.0)

    def test_memory_ratio_near_4x(self):
        matrix = random_matrix(n=256, d=32)
        q = QuantizedMatrix(matrix)
        assert matrix.nbytes / q.nbytes >= 3.5

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            QuantizedMatrix(np.zeros(5, dtype=np.float32))

    def test_empty_matrix(self):
        q = QuantizedMatrix(np.zeros((0, 4), dtype=np.float32))
        assert q.codes.shape == (0, 4)
        assert q.dequantize().shape == (0, 4)


class TestFusedMatmul:
    def test_matches_dequantize_then_matmul(self):
        matrix = random_matrix(n=100, d=16, seed=3)
        q = QuantizedMatrix(matrix)
        operand = random_matrix(n=16, d=7, seed=4)
        fused = q.matmul(operand, block=32)
        reference = q.dequantize() @ operand
        # Fused folds the scale into the operand, so association differs:
        # allclose, not bitwise equality, is the contract.
        np.testing.assert_allclose(fused, reference, rtol=1e-5, atol=1e-5)

    def test_blocking_does_not_change_results(self):
        matrix = random_matrix(n=50, d=8, seed=5)
        q = QuantizedMatrix(matrix)
        operand = random_matrix(n=8, d=3, seed=6)
        np.testing.assert_array_equal(
            q.matmul(operand, block=7), q.matmul(operand, block=1000)
        )

    def test_shape_validation(self):
        q = QuantizedMatrix(random_matrix(n=10, d=4))
        with pytest.raises(ValueError, match="operand rows"):
            q.matmul(np.zeros((5, 2), dtype=np.float32))
        with pytest.raises(ValueError, match="block"):
            q.matmul(np.zeros((4, 2), dtype=np.float32), block=0)
