"""ItemIndex: lazy blocked materialization, overflow items, encode-once."""

import numpy as np

from repro.serve import ItemIndex, encode_blocked, inference_mode


def make_index(trained, **kwargs):
    kwargs.setdefault("block", 8)
    return ItemIndex(trained.model, trained.store, **kwargs)


class TestMaterialization:
    def test_catalog_is_sorted_target_items(self, trained):
        index = make_index(trained)
        assert index.item_ids == sorted(trained.store.dataset.target.items)
        assert len(index) == len(index.item_ids)
        assert index.item_ids[0] in index

    def test_ensure_encodes_only_requested(self, trained):
        index = make_index(trained)
        subset = index.item_ids[:5]
        index.ensure(subset)
        assert index.encoded_count == 5
        assert index.metrics.counter("serve.items_encoded") == 5

    def test_build_is_idempotent_encode_once(self, trained):
        index = make_index(trained)
        first = index.build().copy()
        again = index.build()
        np.testing.assert_array_equal(first, again)
        assert index.metrics.counter("serve.items_encoded") == len(index)

    def test_lazy_rows_match_full_build(self, trained):
        lazy = make_index(trained)
        eager = make_index(trained)
        subset = lazy.item_ids[3:9]
        rows = lazy.rows(subset)
        full = eager.build()
        slots = [eager.slots[i] for i in subset]
        np.testing.assert_array_equal(rows, full[slots])

    def test_rows_align_with_duplicates(self, trained):
        index = make_index(trained)
        ids = [index.item_ids[2], index.item_ids[0], index.item_ids[2]]
        rows = index.rows(ids)
        np.testing.assert_array_equal(rows[0], rows[2])
        assert not np.array_equal(rows[0], rows[1])


class TestOverflow:
    def test_unknown_item_scores_like_its_empty_document(self, trained):
        index = make_index(trained)
        row = index.rows(["ITEM_THAT_DOES_NOT_EXIST"])[0]
        doc = trained.store.item_doc("ITEM_THAT_DOES_NOT_EXIST")
        with inference_mode(trained.model):
            expected = encode_blocked(
                lambda c: trained.model.item_extractor(c).data,
                np.stack([doc]),
                block=8,
            )[0]
        np.testing.assert_array_equal(row, expected)

    def test_overflow_encoded_once(self, trained):
        index = make_index(trained)
        index.rows(["ghost-item"])
        count = index.metrics.counter("serve.items_encoded")
        index.rows(["ghost-item"])
        assert index.metrics.counter("serve.items_encoded") == count

    def test_explicit_catalog_restricts_slots(self, trained):
        catalog = sorted(trained.store.dataset.target.items)[:4]
        index = make_index(trained, catalog=catalog)
        assert len(index) == 4
        assert catalog[-1] in index


class TestEmptyAndDtype:
    def test_empty_catalog_builds_explicit_typed_matrix(self, trained):
        # Regression: with zero slots and an empty overflow table the lazy
        # None used to leak; the build must hand back a concrete (0, d)
        # matrix in the configured compute dtype.
        index = make_index(trained, catalog=[])
        reprs = index.build()
        assert reprs.shape == (0, index.dim)
        assert reprs.dtype == np.dtype(trained.model.config.dtype)
        assert index.reprs.shape == (0, index.dim)

    def test_rows_on_fresh_index_use_configured_dtype(self, trained):
        index = make_index(trained, catalog=[])
        rows = index.rows([])
        assert rows.shape == (0, index.dim)
        assert rows.dtype == index.dtype

    def test_template_prefers_encoder_output(self, trained):
        index = make_index(trained)
        index.build()
        dim, dtype = index._row_template()
        assert (dim, dtype) == (index._reprs.shape[1], index._reprs.dtype)


class TestInvalidation:
    def test_invalidate_all_forces_reencode(self, trained):
        index = make_index(trained)
        first = index.build().copy()
        version = index.version
        assert index.invalidate() == len(index)
        assert index.version > version
        assert index.encoded_count == 0
        np.testing.assert_array_equal(index.build(), first)  # deterministic

    def test_invalidate_subset_and_overflow(self, trained):
        index = make_index(trained)
        index.build()
        index.rows(["ghost-item"])
        encoded = index.metrics.counter("serve.items_encoded")
        targets = [index.item_ids[1], "ghost-item", "never-seen"]
        assert index.invalidate(targets) == 2  # never-seen drops nothing
        index.build()
        index.rows(["ghost-item"])
        assert index.metrics.counter("serve.items_encoded") == encoded + 2

    def test_invalidate_nothing_keeps_version(self, trained):
        index = make_index(trained)
        index.build()
        version = index.version
        assert index.invalidate(["no-such-item"]) == 0
        assert index.version == version

    def test_version_tracks_encodes(self, trained):
        index = make_index(trained)
        start = index.version
        index.ensure(index.item_ids[:2])
        assert index.version > start
