"""Shared fixtures for the serving-engine suite: one small trained world."""

import pytest

from repro.core import OmniMatchTrainer
from repro.data import GeneratorConfig, cold_start_split, generate_domain_pair

from .helpers import tiny_config


@pytest.fixture(scope="package")
def world():
    dataset = generate_domain_pair(
        "books",
        "movies",
        GeneratorConfig(num_users=90, num_items_per_domain=40,
                        reviews_per_user_mean=5.0, seed=21),
    )
    split = cold_start_split(dataset, seed=3)
    return dataset, split


@pytest.fixture(scope="package")
def trained(world):
    dataset, split = world
    return OmniMatchTrainer(dataset, split, tiny_config()).fit()


@pytest.fixture()
def test_pairs(world):
    dataset, split = world
    test = split.eval_interactions(dataset, "test")
    return [(r.user_id, r.item_id) for r in test]
