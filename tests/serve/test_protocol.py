"""Wire-protocol unit tests: framing, validation, and the pipelined client."""

import io
import socket
import threading

import pytest

from repro.serve import ServeClient
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
    read_messages,
    validate_request,
)


class TestFraming:
    def test_round_trip_is_exact(self):
        message = {"id": 7, "op": "recommend", "user": "u12", "k": 10}
        assert decode_message(encode_message(message)) == message

    def test_encoding_is_canonical(self):
        wire = encode_message({"op": "health", "id": 1})
        assert wire == b'{"id":1,"op":"health"}\n'

    def test_scores_round_trip_bit_exact(self):
        import numpy as np

        score = float(np.float32(0.123456789))
        wire = encode_message({"id": 1, "items": [["i3", score]]})
        assert decode_message(wire)["items"][0][1] == score

    def test_oversized_line_rejected_both_ways(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_message({"blob": "x" * MAX_LINE_BYTES})
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_message(b"x" * (MAX_LINE_BYTES + 1))

    def test_malformed_json_and_non_objects_rejected(self):
        with pytest.raises(ProtocolError, match="malformed JSON"):
            decode_message(b"{nope")
        with pytest.raises(ProtocolError, match="must be an object"):
            decode_message(b"[1, 2]")

    def test_read_messages_skips_blank_lines(self):
        stream = io.BytesIO(b'{"id":1}\n\n{"id":2}\n')
        assert [m["id"] for m in read_messages(stream)] == [1, 2]


class TestValidation:
    def test_accepts_every_documented_op(self):
        for request in (
            {"op": "recommend", "user": "u", "k": 3},
            {"op": "recommend", "user": "u"},  # k defaults
            {"op": "score", "pairs": [["u", "i"]]},
            {"op": "warm", "users": ["u"]},
            {"op": "health"},
            {"op": "ready"},
            {"op": "stats"},
        ):
            assert validate_request(request) is request

    @pytest.mark.parametrize(
        "request_, match",
        [
            ({"op": "explode"}, "unknown op"),
            ({}, "unknown op"),
            ({"op": "recommend"}, "string 'user'"),
            ({"op": "recommend", "user": 3}, "string 'user'"),
            ({"op": "recommend", "user": "u", "k": 0}, "positive integer"),
            ({"op": "recommend", "user": "u", "k": True}, "positive integer"),
            ({"op": "recommend", "user": "u", "k": "9"}, "positive integer"),
            ({"op": "score"}, "pairs"),
            ({"op": "score", "pairs": []}, "pairs"),
            ({"op": "score", "pairs": [["u"]]}, "pairs"),
            ({"op": "score", "pairs": [["u", 4]]}, "pairs"),
            ({"op": "warm"}, "users"),
            ({"op": "warm", "users": [1]}, "users"),
            ({"op": "health", "deadline_ms": -1}, "deadline_ms"),
            ({"op": "health", "deadline_ms": "soon"}, "deadline_ms"),
            ({"op": "health", "deadline_ms": True}, "deadline_ms"),
        ],
    )
    def test_rejects_malformed_requests(self, request_, match):
        with pytest.raises(ProtocolError, match=match):
            validate_request(request_)

    def test_deadline_zero_is_legal(self):
        validate_request({"op": "health", "deadline_ms": 0})


def one_shot_server(responder):
    """A TCP server serving a single connection with ``responder(request)``."""
    listener = socket.create_server(("127.0.0.1", 0))
    port = listener.getsockname()[1]

    class Drop(Exception):
        """Raised by a responder to hang up on the client."""

    def serve():
        conn, _ = listener.accept()
        with conn, conn.makefile("rb") as reader:
            try:
                for message in read_messages(reader):
                    for response in responder(message):
                        conn.sendall(encode_message(response))
            except Drop:
                pass

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return listener, port, Drop


class TestServeClient:
    def test_matches_out_of_order_responses_by_id(self):
        held = []

        def responder(request):
            if request["id"] == 1:  # hold the first answer back
                held.append({"id": 1, "status": "ok", "slow": True})
                return []
            return [{"id": request["id"], "status": "ok"}, *held]

        listener, port, _ = one_shot_server(responder)
        try:
            with ServeClient("127.0.0.1", port) as client:
                first = client.send({"op": "health", "id": 1})
                second = client.send({"op": "health", "id": 2})
                assert client.wait(second, timeout=10) == {
                    "id": 2, "status": "ok"
                }
                assert client.wait(first, timeout=10)["slow"] is True
        finally:
            listener.close()

    def test_assigns_fresh_ids_when_missing(self):
        def responder(request):
            return [{"id": request["id"], "status": "ok"}]

        listener, port, _ = one_shot_server(responder)
        try:
            with ServeClient("127.0.0.1", port) as client:
                assert client.health()["status"] == "ok"
                assert client.stats()["status"] == "ok"
        finally:
            listener.close()

    def test_closed_connection_raises_not_hangs(self):
        def responder(request):
            raise drop("server hangs up")

        listener, port, drop = one_shot_server(responder)
        try:
            client = ServeClient("127.0.0.1", port)
            request_id = client.send({"op": "health"})
            with pytest.raises((ConnectionError, TimeoutError)):
                client.wait(request_id, timeout=10)
            client.close()
        finally:
            listener.close()

    def test_wait_timeout_raises_timeout_error(self):
        def responder(request):
            return []  # never answer

        listener, port, _ = one_shot_server(responder)
        try:
            with ServeClient("127.0.0.1", port) as client:
                request_id = client.send({"op": "health"})
                with pytest.raises(TimeoutError):
                    client.wait(request_id, timeout=0.2)
        finally:
            listener.close()
