"""UserReprCache: LRU accounting, eviction determinism, warm pre-encoding."""

import numpy as np
import pytest

from repro.serve import UserReprCache


def deterministic_encoder(calls=None):
    """Maps a user id to fixed vectors derived from its hash — stand-in for
    the engine's blocked encoder (deterministic per user by construction)."""

    def encode(user_ids):
        if calls is not None:
            calls.append(list(user_ids))
        seeds = [abs(hash(u)) % 1000 for u in user_ids]
        invariant = np.array([[s, s + 1.0] for s in seeds])
        user_repr = np.array([[s, s + 1.0, s + 2.0] for s in seeds])
        return invariant, user_repr

    return encode


class TestLookup:
    def test_rows_aligned_with_duplicates(self):
        cache = UserReprCache(deterministic_encoder(), capacity=8)
        invariant, user_repr = cache.get_many(["a", "b", "a"])
        assert invariant.shape == (3, 2)
        assert user_repr.shape == (3, 3)
        np.testing.assert_array_equal(invariant[0], invariant[2])

    def test_misses_per_unique_user_hits_for_the_rest(self):
        cache = UserReprCache(deterministic_encoder(), capacity=8)
        cache.get_many(["a", "b", "a", "a"])
        assert cache.misses == 2  # a, b encoded once each
        assert cache.hits == 2  # the two repeated 'a' occurrences
        cache.get_many(["a", "b"])
        assert cache.misses == 2
        assert cache.hits == 4
        assert cache.hit_rate == pytest.approx(4 / 6)

    def test_misses_encoded_in_one_batch(self):
        calls = []
        cache = UserReprCache(deterministic_encoder(calls), capacity=8)
        cache.get_many(["a", "b", "c", "a"])
        assert calls == [["a", "b", "c"]]


class TestEviction:
    def test_lru_evicts_least_recently_used(self):
        cache = UserReprCache(deterministic_encoder(), capacity=2)
        cache.get_many(["a"])
        cache.get_many(["b"])
        cache.get_many(["a"])  # touch a: b is now LRU
        cache.get_many(["c"])  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_reencode_after_eviction_is_bit_identical(self):
        cache = UserReprCache(deterministic_encoder(), capacity=1)
        first_inv, first_repr = cache.get_many(["a"])
        cache.get_many(["b"])  # evicts a
        again_inv, again_repr = cache.get_many(["a"])
        np.testing.assert_array_equal(first_inv, again_inv)
        np.testing.assert_array_equal(first_repr, again_repr)

    def test_request_wider_than_capacity_still_served(self):
        cache = UserReprCache(deterministic_encoder(), capacity=2)
        invariant, _ = cache.get_many(["a", "b", "c", "d", "a"])
        assert invariant.shape == (5, 2)
        np.testing.assert_array_equal(invariant[0], invariant[4])
        assert len(cache) == 2  # only the tail survives residency

    def test_explicit_evict_and_clear(self):
        cache = UserReprCache(deterministic_encoder(), capacity=4)
        cache.get_many(["a", "b"])
        assert cache.evict("a") is True
        assert cache.evict("a") is False
        cache.clear()
        assert len(cache) == 0


class TestWarm:
    def test_warm_counts_neither_hits_nor_misses(self):
        cache = UserReprCache(deterministic_encoder(), capacity=8)
        assert cache.warm(["a", "b", "a"]) == 2
        assert cache.hits == 0 and cache.misses == 0
        cache.get_many(["a", "b"])
        assert cache.hits == 2 and cache.misses == 0

    def test_warm_skips_resident_users(self):
        calls = []
        cache = UserReprCache(deterministic_encoder(calls), capacity=8)
        cache.warm(["a", "b"])
        assert cache.warm(["a", "b", "c"]) == 1
        assert calls == [["a", "b"], ["c"]]


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            UserReprCache(deterministic_encoder(), capacity=0)
