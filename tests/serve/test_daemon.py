"""Functional tests for the multi-worker recommendation daemon.

The headline guarantee: every ``ok`` response is bit-identical to what a
single-process :class:`InferenceEngine` computes — sharding, batching and
degradation may change *latency* and *availability*, never *content*.
"""

import pytest

from repro.serve import (
    DaemonConfig,
    InferenceEngine,
    RecommendDaemon,
    ServeClient,
)
from repro.serve.daemon import (
    LEVEL_APPROXIMATE,
    LEVEL_CACHED_ONLY,
    LEVEL_NORMAL,
)


@pytest.fixture(scope="module")
def daemon(trained):
    config = DaemonConfig(
        workers=2, nlist=8, nprobe=2, ann_seed=0, max_delay_ms=1.0
    )
    daemon = RecommendDaemon(trained, config).start()
    assert daemon.wait_ready(timeout=60)
    yield daemon
    daemon.stop()


@pytest.fixture(scope="module")
def reference(trained):
    return InferenceEngine(trained, nlist=8, nprobe=2, ann_seed=0)


@pytest.fixture(scope="module")
def users(world):
    dataset, split = world
    test = {r.user_id for r in split.eval_interactions(dataset, "test")}
    return sorted(test)[:6]


@pytest.fixture()
def client(daemon):
    with ServeClient(daemon.config.host, daemon.port) as client:
        yield client


def wire_items(engine, user, k, **kwargs):
    return [[r.item_id, r.score] for r in engine.recommend(user, k, **kwargs)]


class TestLifecycle:
    def test_probes_answer(self, client, daemon):
        health = client.health()
        assert health["alive"] is True
        assert health["workers_alive"] == 2
        assert client.ready()["ready"] is True
        stats = client.stats()["stats"]
        assert stats["workers"] == 2
        assert stats["received"] >= 0

    def test_stop_is_idempotent_and_reports(self, trained):
        daemon = RecommendDaemon(trained, DaemonConfig(workers=1)).start()
        assert daemon.wait_ready(timeout=60)
        first = daemon.stop()
        assert first["workers_alive"] == 0
        assert daemon.stop()["workers_alive"] == 0  # second stop is a no-op

    def test_context_manager_serves_and_stops(self, trained, users, reference):
        with RecommendDaemon(trained, DaemonConfig(workers=1)) as daemon:
            assert daemon.wait_ready(timeout=60)
            with ServeClient(daemon.config.host, daemon.port) as client:
                response = client.recommend(users[0], k=3)
        assert response["status"] == "ok"
        assert response["items"] == wire_items(reference, users[0], 3)


class TestBitIdentity:
    def test_recommend_exact_matches_reference(self, client, reference, users):
        for user in users:
            response = client.recommend(user, k=5)
            assert response["status"] == "ok"
            assert response["retrieval"] == "exact"
            assert response["items"] == wire_items(reference, user, 5)

    def test_recommend_ivf_matches_reference(self, client, reference, users):
        for user in users[:3]:
            response = client.recommend(user, k=5, retrieval="ivf")
            assert response["status"] == "ok"
            assert response["retrieval"] == "ivf"
            assert response["items"] == wire_items(
                reference, user, 5, retrieval="ivf"
            )

    def test_k_beyond_catalog_is_clamped(self, client, reference, users):
        catalog = len(reference.items)
        response = client.recommend(users[0], k=catalog + 50)
        assert response["status"] == "ok"
        assert response["items"] == wire_items(reference, users[0], catalog + 50)

    def test_exclusions_apply_over_the_wire(self, client, reference, users):
        user = users[1]
        exclude = [r.item_id for r in reference.recommend(user, 2)]
        response = client.recommend(user, k=5, exclude=exclude)
        assert response["items"] == wire_items(
            reference, user, 5, exclude_items=exclude
        )
        returned = {item for item, _ in response["items"]}
        assert not returned & set(exclude)

    def test_scores_match_reference_exactly(self, client, reference, users, test_pairs):
        pairs = test_pairs[:8]
        response = client.score(pairs)
        assert response["status"] == "ok"
        assert response["scores"] == [float(s) for s in reference.score_pairs(pairs)]

    def test_warm_then_serve(self, client, reference, users):
        response = client.warm(users)
        assert response["status"] == "ok"
        assert response["warmed"] >= 0
        after = client.recommend(users[2], k=4)
        assert after["items"] == wire_items(reference, users[2], 4)

    def test_pipelined_requests_all_come_back_correct(
        self, client, reference, users
    ):
        sent = {
            client.send({"op": "recommend", "user": user, "k": 3}): user
            for user in users
        }
        for request_id, user in sent.items():
            response = client.wait(request_id, timeout=30)
            assert response["status"] == "ok"
            assert response["items"] == wire_items(reference, user, 3)


class TestRequestErrors:
    def test_malformed_request_errors_without_side_effects(self, client):
        response = client.request({"op": "explode"})
        assert response["status"] == "error"
        assert "unknown op" in response["error"]
        assert client.health()["alive"] is True

    def test_missing_user_rejected(self, client):
        response = client.request({"op": "recommend"})
        assert response["status"] == "error"

    def test_expired_deadline_times_out(self, client, users):
        response = client.recommend(users[0], k=3, deadline_ms=0)
        assert response["status"] == "timeout"

    def test_generous_deadline_succeeds(self, client, reference, users):
        response = client.recommend(users[0], k=3, deadline_ms=30_000)
        assert response["status"] == "ok"
        assert response["items"] == wire_items(reference, users[0], 3)


class TestLoadShedding:
    def test_zero_queue_sheds_compute_but_answers_probes(self, trained, users):
        config = DaemonConfig(workers=1, queue_limit=0)
        with RecommendDaemon(trained, config) as daemon:
            assert daemon.wait_ready(timeout=60)
            with ServeClient(daemon.config.host, daemon.port) as client:
                response = client.recommend(users[0], k=3)
                assert response["status"] == "shed"
                assert response["reason"] == "queue_full"
                assert client.health()["alive"] is True
            stats = daemon.stats()
        assert stats["shed"] == 1
        assert stats["completed"] == 0


class TestDegradationLadder:
    """White-box: the ladder is pure state over (depth, level), so it is
    tested without sockets by shaping the intake directly."""

    @pytest.fixture()
    def idle_daemon(self, trained):
        return RecommendDaemon(
            trained, DaemonConfig(degrade_soft=4, degrade_hard=8)
        )

    def set_depth(self, daemon, depth):
        daemon._intake.clear()
        daemon._intake.extend(object() for _ in range(depth))

    def test_escalates_at_soft_then_hard(self, idle_daemon):
        assert idle_daemon._level == LEVEL_NORMAL
        self.set_depth(idle_daemon, 4)
        idle_daemon._update_level()
        assert idle_daemon._level == LEVEL_APPROXIMATE
        self.set_depth(idle_daemon, 8)
        idle_daemon._update_level()
        assert idle_daemon._level == LEVEL_CACHED_ONLY

    def test_recovers_with_hysteresis(self, idle_daemon):
        self.set_depth(idle_daemon, 8)
        idle_daemon._update_level()
        assert idle_daemon._level == LEVEL_CACHED_ONLY
        # Draining below hard/2 steps down one level, not to normal.
        self.set_depth(idle_daemon, 4)
        idle_daemon._update_level()
        assert idle_daemon._level == LEVEL_CACHED_ONLY  # 4 > hard//2
        self.set_depth(idle_daemon, 3)
        idle_daemon._update_level()
        assert idle_daemon._level == LEVEL_APPROXIMATE
        self.set_depth(idle_daemon, 3)
        idle_daemon._update_level()
        assert idle_daemon._level == LEVEL_APPROXIMATE  # 3 > soft//2
        self.set_depth(idle_daemon, 2)
        idle_daemon._update_level()
        assert idle_daemon._level == LEVEL_NORMAL

    def test_each_transition_counts_one_degrade(self, idle_daemon):
        self.set_depth(idle_daemon, 8)
        idle_daemon._update_level()
        idle_daemon._update_level()  # no change, no count
        self.set_depth(idle_daemon, 0)
        idle_daemon._update_level()
        assert idle_daemon._counters["degrades"] == 2
