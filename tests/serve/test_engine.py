"""InferenceEngine: bit-identity with the re-encoding reference, dedup,
predictor delegation, and the cold-start edge cases."""

import numpy as np
import pytest

from repro.core import ColdStartPredictor, OmniMatchTrainer
from repro.serve import InferenceEngine, naive_score_pairs

from .helpers import tiny_config


@pytest.fixture(scope="module")
def mode_results(world):
    """One 1-epoch TrainResult per (cold_inference, use_auxiliary_reviews)."""
    dataset, split = world
    results = {}
    for mode in ("blend", "dual", "aux_only"):
        for use_aux in (True, False):
            config = tiny_config(
                epochs=1, cold_inference=mode, use_auxiliary_reviews=use_aux
            )
            results[(mode, use_aux)] = OmniMatchTrainer(
                dataset, split, config
            ).fit()
    return results


class TestBitIdentity:
    @pytest.mark.parametrize("mode", ["blend", "dual", "aux_only"])
    @pytest.mark.parametrize("use_aux", [True, False])
    def test_engine_matches_naive_reference(
        self, mode_results, test_pairs, mode, use_aux
    ):
        result = mode_results[(mode, use_aux)]
        engine = InferenceEngine(result, batch_size=32)
        cached = engine.score_pairs(test_pairs)
        naive = naive_score_pairs(result, test_pairs, batch_size=32)
        np.testing.assert_array_equal(cached, naive)

    def test_repeat_scoring_is_stable(self, mode_results, test_pairs):
        engine = InferenceEngine(mode_results[("dual", True)], batch_size=32)
        first = engine.score_pairs(test_pairs)
        second = engine.score_pairs(test_pairs)  # pure cache hits
        np.testing.assert_array_equal(first, second)
        assert engine.users.hits > 0

    def test_dedup_within_one_call(self, mode_results, test_pairs):
        """The dedup satellite: a pair list where one user appears many
        times encodes that user once and still matches the naive path."""
        result = mode_results[("dual", True)]
        user, item = test_pairs[0]
        items = sorted({i for _, i in test_pairs})
        pairs = [(user, i) for i in items] * 3  # heavy duplication
        engine = InferenceEngine(result, batch_size=32)
        cached = engine.score_pairs(pairs)
        np.testing.assert_array_equal(
            cached, naive_score_pairs(result, pairs, batch_size=32)
        )
        assert engine.users.misses == 1  # the single unique user
        assert engine.metrics.counter("serve.items_encoded") == len(items)

    def test_chunking_is_invisible(self, mode_results, test_pairs):
        """Scoring pair-by-pair equals scoring the whole list at once, at
        the same batch size — the caches hide call boundaries."""
        result = mode_results[("dual", True)]
        engine = InferenceEngine(result, batch_size=32)
        whole = engine.score_pairs(test_pairs)
        one_by_one = np.concatenate(
            [engine.score_pairs([pair]) for pair in test_pairs]
        )
        np.testing.assert_array_equal(whole, one_by_one)


class TestPredictorDelegation:
    def test_predict_pairs_matches_engine(self, trained, test_pairs):
        predictor = ColdStartPredictor(trained, batch_size=32)
        engine = InferenceEngine(trained, batch_size=32)
        np.testing.assert_array_equal(
            predictor.predict_pairs(test_pairs), engine.score_pairs(test_pairs)
        )

    def test_predictor_exposes_engine(self, trained):
        predictor = ColdStartPredictor(trained)
        assert isinstance(predictor.engine, InferenceEngine)
        assert predictor.engine.batch_size == predictor.batch_size

    def test_target_doc_compat(self, trained, world):
        dataset, split = world
        predictor = ColdStartPredictor(trained)
        warm_user = split.train_users[0]
        np.testing.assert_array_equal(
            predictor._target_doc(warm_user),
            trained.store.user_target_doc(warm_user),
        )


class TestEdgeCases:
    def test_empty_pair_list(self, trained):
        engine = InferenceEngine(trained)
        out = engine.score_pairs([])
        assert out.shape == (0,)
        assert out.dtype == np.dtype(trained.model.config.dtype)
        assert engine.items.encoded_count == 0  # nothing materialized

    def test_single_pair(self, trained, test_pairs):
        engine = InferenceEngine(trained, batch_size=32)
        out = engine.score_pairs(test_pairs[:1])
        assert out.shape == (1,)
        assert 1.0 <= float(out[0]) <= 5.0

    def test_all_cold_user_batch(self, trained, world):
        dataset, split = world
        cold = list(split.test_users)
        items = sorted(dataset.target.items)[:5]
        pairs = [(u, i) for u in cold for i in items]
        engine = InferenceEngine(trained, batch_size=32)
        out = engine.score_pairs(pairs)
        assert np.isfinite(out).all()
        np.testing.assert_array_equal(
            out, naive_score_pairs(trained, pairs, batch_size=32)
        )

    def test_cold_user_without_neighbors_falls_back_to_source(
        self, world, trained, test_pairs
    ):
        """Source-fallback path: when Algorithm 1 finds no like-minded user,
        the target document *is* the source document."""
        dataset, split = world
        user = split.test_users[0]
        trained.aux_generator._cache[user] = []  # force 'no neighbors'
        engine = InferenceEngine(trained, batch_size=32)
        np.testing.assert_array_equal(
            engine.docs.target_doc(user), trained.store.user_source_doc(user)
        )
        pairs = [(user, i) for _, i in test_pairs[:4]]
        np.testing.assert_array_equal(
            engine.score_pairs(pairs),
            naive_score_pairs(trained, pairs, batch_size=32),
        )
        del trained.aux_generator._cache[user]

    def test_lru_eviction_reencode_determinism(self, trained, test_pairs):
        """A capacity-1 engine thrashes the cache yet scores identically."""
        thrashed = InferenceEngine(trained, batch_size=32, cache_capacity=1)
        roomy = InferenceEngine(trained, batch_size=32)
        first = thrashed.score_pairs(test_pairs)
        np.testing.assert_array_equal(first, roomy.score_pairs(test_pairs))
        np.testing.assert_array_equal(first, thrashed.score_pairs(test_pairs))
        assert thrashed.users.evictions > 0

    def test_output_dtype_follows_config(self, world):
        dataset, split = world
        result64 = OmniMatchTrainer(
            dataset, split, tiny_config(epochs=1, dtype="float64")
        ).fit()
        engine = InferenceEngine(result64, batch_size=32)
        test = split.eval_interactions(dataset, "test")
        out = engine.score_pairs([(r.user_id, r.item_id) for r in test[:3]])
        assert out.dtype == np.float64
