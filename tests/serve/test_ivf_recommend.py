"""IVF retrieval through the engine: bit-identity, recall, edge cases."""

import numpy as np
import pytest

from repro import nn
from repro.serve import InferenceEngine, ItemIndex

from .helpers import tiny_config


@pytest.fixture(scope="module")
def engine(trained):
    return InferenceEngine(trained, batch_size=32, nlist=6, ann_seed=0)


def ranking(recs):
    return [(r.item_id, r.score) for r in recs]


class TestExactDegradation:
    def test_nprobe_at_least_nlist_is_bit_identical(self, engine, world):
        dataset, split = world
        for user in [split.train_users[0], *split.test_users[:2]]:
            exact = engine.recommend(user, k=10, retrieval="exact")
            approx = engine.recommend(user, k=10, retrieval="ivf", nprobe=6)
            assert ranking(exact) == ranking(approx)

    def test_int8_store_keeps_exact_rerank(self, trained, world):
        # Routing over quantized codes may shuffle *which* lists are probed,
        # but with every list probed the candidate set is the full catalog
        # and the float32 re-rank must reproduce brute force bit for bit.
        dataset, split = world
        engine = InferenceEngine(
            trained, batch_size=32, nlist=6, ann_store="int8", ann_seed=0
        )
        user = split.test_users[0]
        exact = engine.recommend(user, k=10, retrieval="exact")
        approx = engine.recommend(user, k=10, retrieval="ivf", nprobe=999)
        assert ranking(exact) == ranking(approx)

    def test_measure_recall_is_one_at_full_probe(self, engine, world):
        dataset, split = world
        recall = engine.measure_recall(split.test_users[:3], k=5, nprobe=6)
        assert recall == 1.0

    def test_partial_probe_recall_is_sane(self, engine, world):
        dataset, split = world
        recall = engine.measure_recall(split.test_users[:3], k=5, nprobe=2)
        assert 0.0 <= recall <= 1.0


class TestEdgeCases:
    def test_k_larger_than_catalog_under_ivf(self, engine, world):
        dataset, split = world
        recs = engine.recommend(
            split.test_users[0], k=10_000, retrieval="ivf", nprobe=999
        )
        assert len(recs) == len(engine.items)
        scores = [r.score for r in recs]
        assert scores == sorted(scores, reverse=True)

    def test_exclusion_under_ivf(self, engine, world):
        dataset, split = world
        user = split.test_users[1]
        full = engine.recommend(user, k=5, retrieval="ivf", nprobe=6)
        excluded = {full[0].item_id, full[2].item_id}
        filtered = engine.recommend(
            user, k=5, exclude_items=excluded, retrieval="ivf", nprobe=6
        )
        assert excluded.isdisjoint({r.item_id for r in filtered})
        survivors = [r.item_id for r in full if r.item_id not in excluded]
        assert [r.item_id for r in filtered[: len(survivors)]] == survivors

    def test_all_cold_catalog(self, trained, world):
        # A catalog of ids with no visible reviews: every item document is
        # all padding, every representation identical. IVF must still rank
        # k of them instead of diverging on the degenerate k-means input.
        dataset, split = world
        ghosts = [f"GHOST{i:03d}" for i in range(12)]
        engine = InferenceEngine(
            trained, batch_size=32, catalog=ghosts, nlist=3, ann_seed=0
        )
        recs = engine.recommend(
            split.test_users[0], k=5, retrieval="ivf", nprobe=3
        )
        assert len(recs) == 5
        assert {r.item_id for r in recs} <= set(ghosts)

    def test_unreviewed_catalog_items_reachable_under_ivf(self, trained, world):
        # Items appended to the catalog *without* any reviews (the overflow
        # regime) land in some inverted list like everything else and stay
        # reachable when their list is probed.
        dataset, split = world
        base = sorted(dataset.target.items)
        ghosts = [f"ZZNEW{i:03d}" for i in range(3)]
        engine = InferenceEngine(
            trained, batch_size=32, catalog=base + ghosts, nlist=5, ann_seed=0
        )
        exact = engine.recommend(
            split.test_users[0], k=len(base) + 3, retrieval="exact"
        )
        approx = engine.recommend(
            split.test_users[0], k=len(base) + 3, retrieval="ivf", nprobe=5
        )
        assert ranking(exact) == ranking(approx)
        assert set(ghosts) <= {r.item_id for r in approx}


class TestIndexLifecycle:
    def test_ann_index_cached_until_invalidation(self, trained):
        engine = InferenceEngine(trained, batch_size=32, nlist=4, ann_seed=0)
        first = engine.ann_index()
        assert engine.ann_index() is first  # same catalog version: cached
        engine.items.invalidate()
        rebuilt = engine.ann_index()
        assert rebuilt is not first
        # Re-encoding the same documents reproduces the same clustering.
        np.testing.assert_array_equal(rebuilt.assignments, first.assignments)

    def test_set_retrieval_reconfigures_default(self, trained, world):
        dataset, split = world
        engine = InferenceEngine(trained, batch_size=32, nlist=6, ann_seed=0)
        assert engine.retrieval == "exact"
        engine.set_retrieval("ivf", nprobe=6)
        user = split.test_users[0]
        assert ranking(engine.recommend(user, k=5)) == ranking(
            engine.recommend(user, k=5, retrieval="exact")
        )
        with pytest.raises(ValueError, match="retrieval"):
            engine.set_retrieval("annoy")
        with pytest.raises(ValueError, match="retrieval"):
            engine.recommend(user, k=5, retrieval="flat")


class TestScratchReuse:
    def test_recommend_reuses_scratch_buffers(self, trained, world):
        dataset, split = world
        engine = InferenceEngine(trained, batch_size=32)
        user = split.test_users[0]
        engine.recommend(user, k=5)
        features = engine._features_scratch
        scores = engine._scores_scratch
        engine.recommend(user, k=5)
        assert engine._features_scratch is features
        assert engine._scores_scratch is scores
        # The feature scratch is batch-sized, not catalog-sized.
        assert features.shape[0] == engine.batch_size
        assert len(scores) == len(engine.items)

    def test_no_per_call_catalog_allocation_regression(self, trained, world):
        # REPRO_TENSOR_STATS counts every autograd-graph tensor. A steady-
        # state recommend call must allocate exactly the blocked head-GEMM
        # working set — identical bytes on every call — and nothing
        # proportional to the catalog beyond those fixed-size blocks.
        dataset, split = world
        engine = InferenceEngine(trained, batch_size=32)
        user = split.test_users[0]
        engine.recommend(user, k=5)  # warm: encodes catalog + user
        previous = nn.set_tensor_stats(True)
        try:
            nn.reset_tensor_stats()
            engine.recommend(user, k=5)
            first = nn.tensor_stats()
            nn.reset_tensor_stats()
            engine.recommend(user, k=5)
            second = nn.tensor_stats()
        finally:
            nn.set_tensor_stats(previous)
            nn.reset_tensor_stats()
        assert first == second
        # Per-block head tensors: every graph tensor is O(batch), so the
        # whole call's graph bytes stay within blocks * batch * head-width
        # float64 budget — a repeat/concatenate feature build would blow
        # well past this.
        blocks = -(-len(engine.items) // engine.batch_size)
        head_width = engine._features_scratch.shape[1]
        per_block_budget = 8 * engine.batch_size * (4 * head_width)
        assert first["graph_bytes"] <= blocks * per_block_budget
