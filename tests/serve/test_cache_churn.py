"""UserReprCache under churn: eviction pressure never changes results.

Property-style suite (satellite): drive a seeded random interleaving of
``get_many`` / ``warm`` / ``evict`` against a cache whose capacity is far
below the working set, and assert every returned row is bit-identical to
an uncached oracle. The daemon leans on exactly this invariant — level-2
degradation serves cached users while the catalog churns through the LRU,
and a row that drifted after re-encoding would silently corrupt rankings.
"""

import numpy as np
import pytest

from repro.serve import InferenceEngine, UserReprCache


def oracle_encoder():
    """Deterministic per-user rows, independent of batch composition."""

    def encode(user_ids):
        seeds = [abs(hash(u)) % 997 for u in user_ids]
        invariant = np.array(
            [[s * 0.5, s * 0.25, s * 0.125] for s in seeds], dtype=np.float64
        )
        user_repr = np.array(
            [[s, s + 1.0, s + 2.0, s + 3.0] for s in seeds], dtype=np.float64
        )
        return invariant, user_repr

    return encode


def expected_rows(user_ids):
    return oracle_encoder()(user_ids)


class TestChurnProperty:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("capacity", [1, 3, 8])
    def test_random_interleaving_matches_oracle(self, seed, capacity):
        rng = np.random.default_rng(seed)
        users = [f"user-{i}" for i in range(capacity * 4)]
        cache = UserReprCache(oracle_encoder(), capacity=capacity)
        for _ in range(120):
            op = rng.choice(["get", "warm", "evict"], p=[0.7, 0.2, 0.1])
            batch = [
                users[i]
                for i in rng.integers(0, len(users), rng.integers(1, 6))
            ]
            if op == "get":
                invariant, user_repr = cache.get_many(batch)
                want_inv, want_repr = expected_rows(batch)
                np.testing.assert_array_equal(invariant, want_inv)
                np.testing.assert_array_equal(user_repr, want_repr)
            elif op == "warm":
                cache.warm(batch)
            else:
                cache.evict(batch[0])
            assert len(cache) <= capacity

    @pytest.mark.parametrize("seed", [0, 7])
    def test_counters_stay_consistent_under_churn(self, seed):
        rng = np.random.default_rng(seed)
        users = [f"user-{i}" for i in range(12)]
        cache = UserReprCache(oracle_encoder(), capacity=3)
        requested = 0
        for _ in range(80):
            batch = [
                users[i]
                for i in rng.integers(0, len(users), rng.integers(1, 5))
            ]
            cache.get_many(batch)
            requested += len(batch)
            # Every requested row was either a hit or a miss, exactly once.
            assert cache.hits + cache.misses == requested
            # Evictions can never outrun insertions (= misses + warms).
            assert cache.evictions <= cache.misses
        assert cache.misses > len(users)  # churn actually re-encoded users

    def test_warm_then_evict_then_get_reencodes_identically(self):
        cache = UserReprCache(oracle_encoder(), capacity=4)
        cache.warm(["a", "b"])
        first = cache.get_many(["a", "b"])
        assert cache.evict("a") is True
        second = cache.get_many(["a", "b"])
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])


class TestEngineUnderChurn:
    """The same property end-to-end: a tiny-cache engine must agree with an
    unconstrained one on every recommendation and score, bit for bit."""

    def test_recommendations_survive_eviction_pressure(self, trained, world):
        dataset, split = world
        users = sorted(
            {r.user_id for r in split.eval_interactions(dataset, "test")}
        )[:8]
        churned = InferenceEngine(trained, cache_capacity=2)
        oracle = InferenceEngine(trained)
        rng = np.random.default_rng(13)
        for _ in range(24):
            user = users[int(rng.integers(len(users)))]
            got = churned.recommend(user, k=5)
            want = oracle.recommend(user, k=5)
            assert [(r.item_id, r.score) for r in got] == [
                (r.item_id, r.score) for r in want
            ]
        assert churned.users.evictions > 0  # the pressure was real

    def test_scores_survive_eviction_pressure(self, trained, test_pairs):
        churned = InferenceEngine(trained, cache_capacity=1)
        oracle = InferenceEngine(trained)
        pairs = test_pairs[:12]
        np.testing.assert_array_equal(
            churned.score_pairs(pairs), oracle.score_pairs(pairs)
        )
        np.testing.assert_array_equal(  # revisit after full churn
            churned.score_pairs(pairs[:4]), oracle.score_pairs(pairs[:4])
        )
