"""Full-catalog recommend: exact top-K of brute-force pair scoring."""

import numpy as np
import pytest

from repro.serve import InferenceEngine, Recommendation


def brute_force_topk(engine, user_id, k):
    """Ground truth: score every catalog item as explicit pairs, then sort
    by (-score, slot) — the engine's documented tie-break."""
    catalog = engine.items.item_ids
    scores = engine.score_pairs([(user_id, item) for item in catalog])
    order = np.lexsort((np.arange(len(scores)), -scores))[:k]
    return [(catalog[slot], scores[slot]) for slot in order]


@pytest.fixture(scope="module")
def engine(trained):
    return InferenceEngine(trained, batch_size=32)


class TestExactness:
    @pytest.mark.parametrize("k", [1, 5, 10])
    def test_topk_matches_brute_force(self, engine, world, k):
        dataset, split = world
        for user in [split.train_users[0], *split.test_users[:2]]:
            recs = engine.recommend(user, k=k)
            expected = brute_force_topk(engine, user, k)
            assert [r.item_id for r in recs] == [i for i, _ in expected]
            np.testing.assert_array_equal(
                np.array([r.score for r in recs], dtype=engine.out_dtype),
                np.array([s for _, s in expected]),
            )

    def test_k_larger_than_catalog_is_clamped(self, engine, world):
        dataset, split = world
        recs = engine.recommend(split.test_users[0], k=10_000)
        assert len(recs) == len(engine.items)
        scores = [r.score for r in recs]
        assert scores == sorted(scores, reverse=True)

    def test_scores_are_expected_ratings(self, engine, world):
        dataset, split = world
        recs = engine.recommend(split.test_users[0], k=3)
        for rec in recs:
            assert isinstance(rec, Recommendation)
            assert 1.0 <= rec.score <= 5.0


class TestExclusion:
    def test_excluded_items_never_ranked(self, engine, world):
        dataset, split = world
        user = split.test_users[1]
        full = engine.recommend(user, k=5)
        excluded = {full[0].item_id, full[2].item_id}
        filtered = engine.recommend(user, k=5, exclude_items=excluded)
        assert excluded.isdisjoint({r.item_id for r in filtered})
        # The survivors keep their relative order from the full ranking.
        survivors = [r.item_id for r in full if r.item_id not in excluded]
        assert [r.item_id for r in filtered[: len(survivors)]] == survivors

    def test_excluding_whole_catalog_returns_empty(self, engine, world):
        dataset, split = world
        recs = engine.recommend(
            split.test_users[0], k=5, exclude_items=engine.items.item_ids
        )
        assert recs == []


class TestCaching:
    def test_repeated_recommends_encode_catalog_once(self, trained, world):
        dataset, split = world
        engine = InferenceEngine(trained, batch_size=32)
        first = engine.recommend(split.test_users[0], k=4)
        encoded = engine.metrics.counter("serve.items_encoded")
        assert encoded == len(engine.items)
        again = engine.recommend(split.test_users[0], k=4)
        assert engine.metrics.counter("serve.items_encoded") == encoded
        assert first == again

    def test_k_must_be_positive(self, engine, world):
        dataset, split = world
        with pytest.raises(ValueError, match="k"):
            engine.recommend(split.test_users[0], k=0)
