"""Serving telemetry: serve_* events, schema validation, report rendering."""

from repro.obs import (
    TelemetrySink,
    load_run_events,
    render_report,
    summarize_run,
    use_sink,
    validate_run_file,
)
from repro.serve import InferenceEngine


def exercise_engine(engine, world, test_pairs):
    dataset, split = world
    engine.warm(split.test_users[:3])
    engine.score_pairs(test_pairs)
    engine.score_pairs(test_pairs)  # second pass: pure cache hits
    engine.recommend(split.test_users[0], k=3)


class TestEventEmission:
    def test_explicit_sink_receives_serve_events(
        self, trained, world, test_pairs, tmp_path
    ):
        with TelemetrySink(tmp_path, run_id="serve-x") as sink:
            engine = InferenceEngine(trained, batch_size=32, telemetry=sink)
            exercise_engine(engine, world, test_pairs)
        kinds = [e["kind"] for e in load_run_events(tmp_path)]
        assert kinds.count("serve_encode_users") == 1
        assert kinds.count("serve_score") == 2
        assert kinds.count("serve_recommend") == 1
        assert kinds.count("serve_index") == 1  # catalog built once

    def test_ambient_sink_used_when_no_explicit_one(
        self, trained, test_pairs, tmp_path
    ):
        with TelemetrySink(tmp_path, run_id="serve-ambient") as sink:
            with use_sink(sink):
                InferenceEngine(trained, batch_size=32).score_pairs(
                    test_pairs[:4]
                )
        kinds = [e["kind"] for e in load_run_events(tmp_path)]
        assert "serve_score" in kinds

    def test_no_sink_is_silent(self, trained, test_pairs):
        engine = InferenceEngine(trained, batch_size=32)
        engine.score_pairs(test_pairs[:4])  # must not raise

    def test_events_validate_against_schema(
        self, trained, world, test_pairs, tmp_path
    ):
        with TelemetrySink(tmp_path, run_id="serve-schema") as sink:
            engine = InferenceEngine(trained, batch_size=32, telemetry=sink)
            exercise_engine(engine, world, test_pairs)
        stats = validate_run_file(tmp_path / "run.jsonl")
        assert stats["events"] >= 5
        assert stats["kinds"]["serve_score"] == 2

    def test_score_event_reports_call_local_cache_deltas(
        self, trained, test_pairs, tmp_path
    ):
        with TelemetrySink(tmp_path, run_id="serve-deltas") as sink:
            engine = InferenceEngine(trained, batch_size=32, telemetry=sink)
            engine.score_pairs(test_pairs)
            engine.score_pairs(test_pairs)
        first, second = [
            e for e in load_run_events(tmp_path) if e["kind"] == "serve_score"
        ]
        unique_users = len({u for u, _ in test_pairs})
        assert first["cache_misses"] == unique_users
        assert second["cache_misses"] == 0
        assert second["cache_hits"] == len(test_pairs)


class TestReport:
    def test_summarize_run_aggregates_serving(
        self, trained, world, test_pairs, tmp_path
    ):
        with TelemetrySink(tmp_path, run_id="serve-summary") as sink:
            engine = InferenceEngine(trained, batch_size=32, telemetry=sink)
            exercise_engine(engine, world, test_pairs)
        serving = summarize_run(load_run_events(tmp_path))["serving"]
        assert serving["score_calls"] == 2
        assert serving["pairs"] == 2 * len(test_pairs)
        assert serving["recommend_calls"] == 1
        assert serving["index_items"] > 0
        assert 0.0 < serving["hit_rate"] <= 1.0
        assert serving["score_p95"] >= serving["score_p50"] > 0.0

    def test_render_report_has_serving_section(
        self, trained, world, test_pairs, tmp_path
    ):
        with TelemetrySink(tmp_path, run_id="serve-render") as sink:
            engine = InferenceEngine(trained, batch_size=32, telemetry=sink)
            exercise_engine(engine, world, test_pairs)
        text = render_report(load_run_events(tmp_path))
        assert "serving engine" in text
        assert "cache hits" in text
        assert "pairs scored" in text

    def test_report_without_serve_events_omits_section(self, tmp_path):
        with TelemetrySink(tmp_path, run_id="no-serve") as sink:
            sink.emit(
                "experiment",
                method="omnimatch", scenario="s", rmse=1.0, mae=0.8, trials=1,
            )
        text = render_report(load_run_events(tmp_path))
        assert "serving engine" not in text
