"""The canonical-block encoding invariant the whole engine stands on."""

import numpy as np
import pytest

import repro.nn as nn
from repro.serve import encode_blocked, inference_mode


class TestEncodeBlocked:
    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="at least one row"):
            encode_blocked(lambda c: c, np.zeros((0, 4), dtype=np.int32))

    def test_bad_block_rejected(self):
        with pytest.raises(ValueError, match="block"):
            encode_blocked(lambda c: c, np.zeros((2, 4), dtype=np.int32), block=0)

    def test_single_output_shape_and_order(self):
        rows = np.arange(28, dtype=np.int32).reshape(7, 4)
        seen = []

        def encode(chunk):
            seen.append(len(chunk))
            return chunk.astype(np.float32) * 2.0

        out = encode_blocked(encode, rows, block=3)
        assert seen == [3, 3, 3]  # final partial block padded to 3
        np.testing.assert_array_equal(out, rows.astype(np.float32) * 2.0)

    def test_tuple_outputs_stacked(self):
        rows = np.ones((5, 4), dtype=np.int32)
        out = encode_blocked(
            lambda c: (c.astype(np.float64), c.sum(axis=1, keepdims=True)),
            rows,
            block=2,
        )
        assert isinstance(out, tuple) and len(out) == 2
        assert out[0].shape == (5, 4)
        assert out[1].shape == (5, 1)

    def test_per_row_results_independent_of_co_resident_rows(self, trained):
        """The measured BLAS property: with the block row-count fixed, a
        document's representation does not depend on what else shares the
        block — the bit-identity contract of the serving caches."""
        model, store = trained.model, trained.store
        items = sorted(store.dataset.target.items)
        docs = np.stack([store.item_doc(i) for i in items])
        encode = lambda chunk: model.item_extractor(chunk).data
        with inference_mode(model):
            all_at_once = encode_blocked(encode, docs, block=8)
            reversed_order = encode_blocked(encode, docs[::-1], block=8)[::-1]
            one_by_one = np.concatenate(
                [encode_blocked(encode, docs[i : i + 1], block=8)
                 for i in range(len(docs))]
            )
        np.testing.assert_array_equal(all_at_once, reversed_order)
        np.testing.assert_array_equal(all_at_once, one_by_one)


class TestInferenceMode:
    def test_restores_training_flag(self, trained):
        model = trained.model
        model.train(True)
        with inference_mode(model):
            assert not model.training
            assert not nn.is_grad_enabled()
        assert model.training
        assert nn.is_grad_enabled()

    def test_restores_eval_state_too(self, trained):
        model = trained.model
        model.eval()
        with inference_mode(model):
            assert not model.training
        assert not model.training
        model.train(True)
