"""IVFIndex: deterministic k-means build, inverted lists, probe unions."""

import numpy as np
import pytest

from repro.serve import IVFIndex, default_nlist


def clustered_matrix(n=200, d=8, clusters=5, seed=0):
    """Points around well-separated centers, so k-means has real structure."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((clusters, d)) * 10.0
    assign = rng.integers(0, clusters, size=n)
    return (centers[assign] + 0.3 * rng.standard_normal((n, d))).astype(np.float32)


class TestBuild:
    def test_same_seed_same_index(self):
        reprs = clustered_matrix()
        a = IVFIndex(reprs, nlist=5, seed=11)
        b = IVFIndex(reprs, nlist=5, seed=11)
        np.testing.assert_array_equal(a.centroids, b.centroids)
        np.testing.assert_array_equal(a.assignments, b.assignments)
        for la, lb in zip(a.lists, b.lists):
            np.testing.assert_array_equal(la, lb)

    def test_lists_partition_all_slots(self):
        reprs = clustered_matrix(n=123)
        index = IVFIndex(reprs, nlist=7, seed=1)
        gathered = np.sort(np.concatenate(index.lists))
        np.testing.assert_array_equal(gathered, np.arange(123))

    def test_assignment_is_nearest_centroid(self):
        reprs = clustered_matrix()
        index = IVFIndex(reprs, nlist=5, seed=2)
        d2 = ((reprs[:, None, :] - index.centroids[None, :, :]) ** 2).sum(axis=2)
        # argmin with ties toward the lower centroid id, same as the build.
        np.testing.assert_array_equal(index.assignments, np.argmin(d2, axis=1))

    def test_nlist_clamped_to_catalog(self):
        reprs = clustered_matrix(n=4)
        index = IVFIndex(reprs, nlist=100, seed=0)
        assert index.nlist == 4

    def test_empty_matrix(self):
        index = IVFIndex(np.zeros((0, 6), dtype=np.float32))
        assert index.nlist == 0
        assert len(index) == 0
        assert index.candidate_slots([], nprobe=3).shape == (0,)

    def test_identical_points_collapse(self):
        # Degenerate catalog (e.g. all-cold items with identical all-padding
        # documents): every D^2 weight is zero, but the build must still
        # terminate and keep every slot reachable.
        reprs = np.ones((30, 4), dtype=np.float32)
        index = IVFIndex(reprs, nlist=4, seed=3)
        gathered = np.sort(np.concatenate(index.lists))
        np.testing.assert_array_equal(gathered, np.arange(30))

    def test_build_stats(self):
        reprs = clustered_matrix()
        index = IVFIndex(reprs, nlist=5, seed=0, store="int8")
        stats = index.stats
        assert stats.items == 200 and stats.nlist == 5
        assert stats.store == "int8"
        assert stats.float32_bytes == reprs.nbytes
        assert stats.float32_bytes / stats.store_bytes >= 3.5
        assert 1 <= stats.iters_run <= 8

    def test_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            IVFIndex(np.zeros(3, dtype=np.float32))
        with pytest.raises(ValueError, match="store"):
            IVFIndex(clustered_matrix(), store="int4")
        with pytest.raises(ValueError, match="iters"):
            IVFIndex(clustered_matrix(), iters=0)


class TestInt8Routing:
    def test_int8_assignments_match_float32_on_separated_clusters(self):
        # Quantization error is far below the cluster separation here, so
        # routing must put every point in the same cell either way.
        reprs = clustered_matrix(seed=7)
        a = IVFIndex(reprs, nlist=5, seed=5, store="float32")
        b = IVFIndex(reprs, nlist=5, seed=5, store="int8")
        same = np.mean(a.assignments == b.assignments)
        assert same >= 0.95


class TestCandidateSlots:
    def test_union_is_sorted_and_deduplicated_sizes(self):
        reprs = clustered_matrix(n=80)
        index = IVFIndex(reprs, nlist=6, seed=4)
        order = np.arange(index.nlist)
        probed = index.candidate_slots(order, nprobe=2)
        assert np.all(np.diff(probed) > 0)  # strictly ascending, no dupes
        expected = np.sort(np.concatenate([index.lists[0], index.lists[1]]))
        np.testing.assert_array_equal(probed, expected)

    def test_nprobe_at_least_nlist_covers_catalog(self):
        reprs = clustered_matrix(n=60)
        index = IVFIndex(reprs, nlist=5, seed=6)
        slots = index.candidate_slots(np.arange(5), nprobe=999)
        np.testing.assert_array_equal(slots, np.arange(60))

    def test_nprobe_must_be_positive(self):
        index = IVFIndex(clustered_matrix(n=20), nlist=3, seed=0)
        with pytest.raises(ValueError, match="nprobe"):
            index.candidate_slots([0], nprobe=0)


def test_default_nlist_heuristic():
    assert default_nlist(0) == 0 or default_nlist(0) == 1  # clamped later anyway
    assert default_nlist(100) == 10
    assert default_nlist(1) == 1
    assert default_nlist(10**6) == 1000
