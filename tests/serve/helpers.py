"""Shared helpers for the serving-engine suite."""

from repro.core import OmniMatchConfig


def tiny_config(**overrides):
    base = dict(embed_dim=16, num_filters=4, kernel_sizes=(2, 3), invariant_dim=8,
                specific_dim=8, projection_dim=6, doc_len=24, dropout=0.1,
                vocab_size=300, epochs=2, batch_size=32, early_stopping=False)
    base.update(overrides)
    return OmniMatchConfig(**base)
