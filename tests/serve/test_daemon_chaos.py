"""Chaos suite for the daemon: scripted deaths, stalls and poison.

Every fault here is deterministic (repro.faults plans keyed on worker
slot/generation/batch coordinates), and the acceptance bar is always the
same: the daemon may spend latency absorbing a fault, but every ``ok``
response stays bit-identical to the single-process reference engine, no
request goes unanswered, and the fleet heals back to full strength.
"""

import os

import pytest

from repro.faults import POISON_USER, ServeKillPlan, SlowWorkerPlan
from repro.obs import load_run_events, render_report, validate_run_file
from repro.serve import (
    DaemonConfig,
    InferenceEngine,
    LoadTestConfig,
    RecommendDaemon,
    ServeClient,
    build_schedule,
    run_loadtest,
)
from repro.serve.daemon import LEVEL_CACHED_ONLY

FAST = bool(os.environ.get("REPRO_CHAOS_FAST"))


@pytest.fixture(scope="module")
def reference(trained):
    return InferenceEngine(trained, nlist=8, nprobe=2, ann_seed=0)


@pytest.fixture(scope="module")
def users(world):
    dataset, split = world
    test = {r.user_id for r in split.eval_interactions(dataset, "test")}
    return sorted(test)


def wire_items(engine, user, k, **kwargs):
    return [[r.item_id, r.score] for r in engine.recommend(user, k, **kwargs)]


def make_daemon(trained, **overrides):
    config = DaemonConfig(
        workers=2, nlist=8, nprobe=2, ann_seed=0, max_delay_ms=1.0, **overrides
    )
    daemon = RecommendDaemon(trained, config).start()
    assert daemon.wait_ready(timeout=60)
    return daemon


class TestScheduledKills:
    def test_worker_death_mid_request_is_absorbed(
        self, trained, reference, users
    ):
        # Slot 0 generation 0 dies on its very first batch: the request is
        # requeued onto the respawned generation and completes exactly.
        plan = ServeKillPlan([(0, 0, 0)])
        daemon = make_daemon(trained, kill_plan=plan)
        try:
            with ServeClient(daemon.config.host, daemon.port) as client:
                response = client.request(
                    {"op": "recommend", "user": users[0], "k": 5}, timeout=60
                )
            assert response["status"] == "ok"
            assert response["items"] == wire_items(reference, users[0], 5)
            stats = daemon.stats()
        finally:
            daemon.stop()
        assert stats["deaths"] == 1
        assert stats["retries"] >= 1
        assert stats["errors"] == 0
        assert stats["workers_alive"] == 2  # the fleet healed

    def test_retry_budget_exhaustion_surfaces_as_error(
        self, trained, users
    ):
        # Slot 0 dies on its first batch in every generation; with one
        # retry allowed the request must fail loudly, not hang.
        plan = ServeKillPlan([(0, g, 0) for g in range(4)])
        daemon = make_daemon(trained, kill_plan=plan, max_retries=1)
        try:
            with ServeClient(daemon.config.host, daemon.port) as client:
                response = client.request(
                    {"op": "recommend", "user": users[0], "k": 5}, timeout=60
                )
            assert response["status"] == "error"
            assert "retry budget exhausted" in response["error"]
            stats = daemon.stats()
        finally:
            daemon.stop()
        assert stats["deaths"] == 2
        assert stats["errors"] == 1

    def test_external_kill_between_requests_is_absorbed(
        self, trained, reference, users
    ):
        daemon = make_daemon(trained)
        try:
            with ServeClient(daemon.config.host, daemon.port) as client:
                before = client.recommend(users[1], k=4)
                assert before["status"] == "ok"
                daemon.kill_worker(0)
                after = client.request(
                    {"op": "recommend", "user": users[2], "k": 4}, timeout=60
                )
            assert after["status"] == "ok"
            assert after["items"] == wire_items(reference, users[2], 4)
            stats = daemon.stats()
        finally:
            daemon.stop()
        assert stats["deaths"] >= 1
        assert stats["workers_alive"] == 2


class TestStalls:
    def test_watchdog_converts_wedge_into_death(
        self, trained, reference, users
    ):
        # Slot 0 generation 0 wedges on its first batch far past the stall
        # budget; the watchdog SIGKILLs it and the respawn completes the
        # request bit-identically.
        plan = SlowWorkerPlan({(0, 0, 0): 60.0})
        daemon = make_daemon(
            trained, slow_plan=plan, stall_timeout_s=0.5
        )
        try:
            with ServeClient(daemon.config.host, daemon.port) as client:
                response = client.request(
                    {"op": "recommend", "user": users[0], "k": 5}, timeout=60
                )
            assert response["status"] == "ok"
            assert response["items"] == wire_items(reference, users[0], 5)
            stats = daemon.stats()
        finally:
            daemon.stop()
        assert stats["stall_kills"] >= 1
        assert stats["deaths"] >= 1
        assert stats["errors"] == 0


class TestPoison:
    def test_poisoned_request_errors_without_collateral(
        self, trained, reference, users
    ):
        daemon = make_daemon(trained)
        try:
            with ServeClient(daemon.config.host, daemon.port) as client:
                # Pipeline the poison between two healthy requests.
                healthy_1 = client.send(
                    {"op": "recommend", "user": users[0], "k": 4}
                )
                poison = client.send(
                    {"op": "recommend", "user": POISON_USER, "k": 4}
                )
                healthy_2 = client.send(
                    {"op": "recommend", "user": users[1], "k": 4}
                )
                poisoned = client.wait(poison, timeout=60)
                assert poisoned["status"] == "error"
                assert "poisoned request" in poisoned["error"]
                for request_id, user in (
                    (healthy_1, users[0]),
                    (healthy_2, users[1]),
                ):
                    response = client.wait(request_id, timeout=60)
                    assert response["status"] == "ok"
                    assert response["items"] == wire_items(reference, user, 4)
            stats = daemon.stats()
        finally:
            daemon.stop()
        # Poison is the request's fault: no worker died absorbing it.
        assert stats["deaths"] == 0
        assert stats["workers_alive"] == 2

    def test_poisoned_score_pairs_error_too(self, trained, users):
        daemon = make_daemon(trained)
        try:
            with ServeClient(daemon.config.host, daemon.port) as client:
                response = client.score([[POISON_USER, "nope"]])
            assert response["status"] == "error"
        finally:
            daemon.stop()


class TestDegradedServing:
    def test_cached_only_level_sheds_cold_users_serves_warm_ones(
        self, trained, reference, users
    ):
        daemon = make_daemon(trained)
        try:
            with ServeClient(daemon.config.host, daemon.port) as client:
                warm_user, cold_user = users[0], users[1]
                assert client.recommend(warm_user, k=4)["status"] == "ok"
                with daemon._lock:
                    daemon._level = LEVEL_CACHED_ONLY
                cold = client.recommend(cold_user, k=4)
                assert cold["status"] == "shed"
                assert cold["reason"] == "cold_user_degraded"
                warm = client.recommend(warm_user, k=4)
                assert warm["status"] == "ok"
                # Level 2 forces approximate retrieval — still bit-exact
                # against the reference engine in the same mode.
                assert warm["retrieval"] == "ivf"
                assert warm["level"] == LEVEL_CACHED_ONLY
                assert warm["items"] == wire_items(
                    reference, warm_user, 4, retrieval="ivf"
                )
                # An explicit retrieval pin still wins over the ladder.
                pinned = client.recommend(warm_user, k=4, retrieval="exact")
                assert pinned["items"] == wire_items(reference, warm_user, 4)
        finally:
            daemon.stop()


class TestLoadSchedule:
    def test_schedule_is_deterministic_per_seed(self, users):
        config = LoadTestConfig(requests=40, seed=7)
        items = [f"i{i}" for i in range(10)]
        assert build_schedule(users, items, config) == build_schedule(
            users, items, config
        )
        other = build_schedule(users, items, LoadTestConfig(requests=40, seed=8))
        assert other != build_schedule(users, items, config)

    def test_zipf_skew_prefers_head_users(self, users):
        config = LoadTestConfig(requests=300, zipf_s=1.5, score_fraction=0.0)
        schedule = build_schedule(users, [], config)
        head = sum(1 for r in schedule if r["user"] == users[0])
        tail = sum(1 for r in schedule if r["user"] == users[-1])
        assert head > tail


class TestLoadUnderChaos:
    """The headline acceptance test: zipf traffic, scripted kills, zero
    incorrect responses, bounded failures, measured recovery."""

    def test_loadtest_with_kills_yields_zero_mismatches(
        self, trained, reference, users, world, tmp_path
    ):
        dataset, _ = world
        requests = 30 if FAST else 80
        daemon = make_daemon(
            trained, telemetry_dir=str(tmp_path), max_retries=3
        )
        config = LoadTestConfig(
            requests=requests,
            concurrency=3,
            k=5,
            score_fraction=0.25,
            seed=11,
        )
        items = sorted(dataset.target.items)[:20]
        kill_at = {requests // 4: 0, requests // 2: 1}
        try:
            result = run_loadtest(
                daemon,
                users,
                items,
                reference=reference,
                config=config,
                kill_at=kill_at,
            )
            stats = daemon.stats()
        finally:
            daemon.stop()

        assert result.mismatches == []  # zero incorrect responses, ever
        assert result.sent == requests
        assert result.ok + result.failed == requests
        # Error budget: worker deaths may cost retries, never silent drops,
        # and with retries available nearly everything completes.
        assert result.ok >= requests * 0.9
        assert stats["deaths"] >= 2
        assert result.recoveries  # each kill's recovery was measured
        assert max(result.recoveries) < 30.0
        summary = result.summary()
        assert summary["mismatches"] == 0
        assert summary["failed_fraction"] <= 0.1

        # The run's telemetry merged into a schema-valid story.
        stats_file = validate_run_file(tmp_path / "run.jsonl")
        assert stats_file["kinds"]["daemon_worker_death"] >= 2
        events = load_run_events(tmp_path / "run.jsonl")
        text = render_report(events)
        assert "serving daemon" in text
        assert "chaos absorbed" in text
