"""Sharded top-K must equal single-process top-K, bit for bit.

This is the correctness backbone of the daemon: each worker ranks one
contiguous slot range and the parent merges partials. Row independence
(fixed-shape blocked scoring) plus the strictly total ``(-score, slot)``
order make the merge exact — these tests pin that equivalence for exact
and IVF retrieval, with exclusions, across shard counts, including the
degenerate empty-shard layouts.
"""

import numpy as np
import pytest

from repro.serve import (
    InferenceEngine,
    merge_topk,
    shard_bounds,
    shard_topk,
)


@pytest.fixture(scope="module")
def engine(trained):
    engine = InferenceEngine(trained, nlist=8, nprobe=2, ann_seed=0)
    engine.build_index()
    return engine


@pytest.fixture(scope="module")
def users(world):
    dataset, split = world
    test = {r.user_id for r in split.eval_interactions(dataset, "test")}
    return sorted(test)[:6]


def reference_topk(engine, user, k, **kwargs):
    return [
        (engine.items.slots[r.item_id], r.score)
        for r in engine.recommend(user, k, **kwargs)
    ]


class TestShardBounds:
    def test_partitions_exactly(self):
        assert shard_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_empty_shards_are_legal(self):
        bounds = shard_bounds(2, 4)
        assert bounds == [(0, 1), (1, 2), (2, 2), (2, 2)]

    @pytest.mark.parametrize("n_items,shards", [(0, 1), (1, 1), (7, 7), (40, 3)])
    def test_covers_every_slot_once(self, n_items, shards):
        bounds = shard_bounds(n_items, shards)
        covered = [s for lo, hi in bounds for s in range(lo, hi)]
        assert covered == list(range(n_items))

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_bounds(10, 0)


class TestMergeTopk:
    def test_orders_by_score_then_slot(self):
        merged = merge_topk([[(3, 0.5), (1, 0.9)], [(0, 0.9), (7, 0.1)]], 3)
        assert merged == [(0, 0.9), (1, 0.9), (3, 0.5)]

    def test_tolerates_empty_shards(self):
        assert merge_topk([[], [(2, 1.0)], []], 5) == [(2, 1.0)]
        assert merge_topk([], 5) == []


class TestShardedExact:
    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    def test_merge_equals_full_catalog_recommend(self, engine, users, shards):
        k = 7
        for user in users:
            partials = [
                shard_topk(engine, user, k, lo, hi)
                for lo, hi in shard_bounds(len(engine.items), shards)
            ]
            assert merge_topk(partials, k) == reference_topk(engine, user, k)

    def test_more_shards_than_items_still_exact(self, engine, users):
        k = 3
        user = users[0]
        partials = [
            shard_topk(engine, user, k, lo, hi)
            for lo, hi in shard_bounds(len(engine.items), len(engine.items) + 9)
        ]
        assert merge_topk(partials, k) == reference_topk(engine, user, k)

    def test_exclusions_apply_per_shard(self, engine, users):
        k = 5
        user = users[1]
        baseline = engine.recommend(user, k)
        exclude_ids = [baseline[0].item_id, baseline[2].item_id]
        exclude_slots = {engine.items.slots[i] for i in exclude_ids}
        partials = [
            shard_topk(engine, user, k, lo, hi, exclude_slots=exclude_slots)
            for lo, hi in shard_bounds(len(engine.items), 3)
        ]
        assert merge_topk(partials, k) == reference_topk(
            engine, user, k, exclude_items=exclude_ids
        )

    def test_scores_are_plain_floats(self, engine, users):
        lo, hi = shard_bounds(len(engine.items), 2)[0]
        for slot, score in shard_topk(engine, users[0], 4, lo, hi):
            assert type(slot) is int and type(score) is float


class TestShardedIVF:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_merge_equals_full_ivf_recommend(self, engine, users, shards):
        k = 7
        for user in users:
            partials = [
                shard_topk(engine, user, k, lo, hi, retrieval="ivf")
                for lo, hi in shard_bounds(len(engine.items), shards)
            ]
            assert merge_topk(partials, k) == reference_topk(
                engine, user, k, retrieval="ivf"
            )

    def test_full_probe_recovers_brute_force(self, engine, users):
        # nprobe >= nlist scores the whole catalog: the sharded IVF path
        # must collapse to the exact ranking.
        k = 7
        for user in users[:3]:
            partials = [
                shard_topk(
                    engine, user, k, lo, hi, retrieval="ivf", nprobe=64
                )
                for lo, hi in shard_bounds(len(engine.items), 3)
            ]
            assert merge_topk(partials, k) == reference_topk(engine, user, k)

    def test_shard_candidates_union_to_global_shortlist(self, engine, users):
        user = users[2]
        index = engine.ann_index()
        invariant, user_repr = engine.users.get_many([user])
        global_slots = engine._probe(index, invariant, user_repr, 2)
        shard_slots = []
        for lo, hi in shard_bounds(len(engine.items), 3):
            candidates = engine._probe(index, invariant, user_repr, 2)
            shard_slots.extend(
                int(s) for s in candidates[(candidates >= lo) & (candidates < hi)]
            )
        assert sorted(shard_slots) == sorted(int(s) for s in global_slots)
