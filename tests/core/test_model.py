"""Unit tests for the assembled OmniMatch model."""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import RATING_VALUES, OmniMatchConfig, OmniMatchModel


def small_config(**overrides):
    base = dict(embed_dim=16, num_filters=4, kernel_sizes=(2, 3), invariant_dim=8,
                specific_dim=8, projection_dim=6, doc_len=12, dropout=0.0,
                vocab_size=40)
    base.update(overrides)
    return OmniMatchConfig(**base)


def make_model(**overrides):
    cfg = small_config(**overrides)
    table = np.random.default_rng(0).normal(0, 0.1, size=(40, cfg.embed_dim))
    table[0] = 0.0
    return OmniMatchModel(table, cfg, np.random.default_rng(1)), cfg


def batch(n=6, seed=2):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(1, 40, size=(n, 12)),
        rng.integers(1, 40, size=(n, 12)),
        rng.integers(1, 40, size=(n, 12)),
        rng.integers(0, 5, size=n),
    )


class TestConstruction:
    def test_embedding_dim_mismatch_rejected(self):
        cfg = small_config()
        with pytest.raises(ValueError):
            OmniMatchModel(np.zeros((40, 99)), cfg)

    def test_embedding_frozen(self):
        model, _ = make_model()
        names = [n for n, _ in model.named_parameters()]
        assert not any("embedding" in n for n in names)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            small_config(field="headline")
        with pytest.raises(ValueError):
            small_config(extractor="lstm")
        with pytest.raises(ValueError):
            small_config(cold_inference="magic")
        with pytest.raises(ValueError):
            small_config(alpha=-1.0)
        with pytest.raises(ValueError):
            small_config(doc_len=1)
        with pytest.raises(ValueError):
            small_config(aux_mix_prob=2.0)


class TestLosses:
    def test_all_terms_finite(self):
        model, _ = make_model()
        losses = model.compute_losses(*batch())
        for key in ("total", "rating", "scl", "domain"):
            assert np.isfinite(losses[key].item()), key

    def test_total_is_weighted_sum(self):
        model, cfg = make_model()
        model.eval()  # deterministic (no dropout)
        losses = model.compute_losses(*batch())
        expected = (
            losses["rating"].item()
            + cfg.alpha * losses["scl"].item()
            + cfg.beta * losses["domain"].item()
        )
        assert losses["total"].item() == pytest.approx(expected)

    def test_scl_toggle_zeroes_term(self):
        model, _ = make_model(use_scl=False)
        assert model.compute_losses(*batch())["scl"].item() == 0.0

    def test_domain_toggle_zeroes_term(self):
        model, _ = make_model(use_domain_adversarial=False)
        assert model.compute_losses(*batch())["domain"].item() == 0.0

    def test_backward_reaches_all_extractors(self):
        model, _ = make_model()
        model.compute_losses(*batch())["total"].backward()
        grads = [
            model.user_extractor.source_encoder.encoder.weight_k2.grad,
            model.user_extractor.target_encoder.encoder.weight_k2.grad,
            model.item_extractor.encoder.encoder.weight_k2.grad,
            model.user_extractor.invariant_head.weight.grad,
        ]
        for grad in grads:
            assert grad is not None and np.abs(grad).sum() > 0


class TestPrediction:
    def test_expected_rating_in_range(self):
        model, _ = make_model()
        src, tgt, item, _ = batch(10)
        preds = model.predict_ratings(tgt, item, source_tokens=src)
        assert preds.shape == (10,)
        assert (preds >= RATING_VALUES.min()).all()
        assert (preds <= RATING_VALUES.max()).all()

    def test_prediction_restores_training_mode(self):
        model, _ = make_model(dropout=0.3)
        model.train()
        src, tgt, item, _ = batch(3)
        model.predict_ratings(tgt, item, source_tokens=src)
        assert model.training

    def test_prediction_deterministic_in_eval(self):
        model, _ = make_model(dropout=0.3)
        src, tgt, item, _ = batch(4)
        a = model.predict_ratings(tgt, item, source_tokens=src)
        b = model.predict_ratings(tgt, item, source_tokens=src)
        np.testing.assert_allclose(a, b)

    @pytest.mark.parametrize("mode", ["blend", "dual", "aux_only"])
    def test_all_inference_modes_work(self, mode):
        model, _ = make_model(cold_inference=mode)
        src, tgt, item, labels = batch(4)
        losses = model.compute_losses(src, tgt, item, labels)
        assert np.isfinite(losses["total"].item())
        source = src if mode != "aux_only" else None
        preds = model.predict_ratings(tgt, item, source_tokens=source)
        assert np.isfinite(preds).all()

    def test_state_dict_roundtrip_preserves_predictions(self):
        model1, cfg = make_model()
        model2, _ = make_model()
        src, tgt, item, _ = batch(4)
        model2.load_state_dict(model1.state_dict())
        np.testing.assert_allclose(
            model1.predict_ratings(tgt, item, source_tokens=src),
            model2.predict_ratings(tgt, item, source_tokens=src),
        )


class TestTransformerVariant:
    def test_bert_style_extractor_trains(self):
        model, _ = make_model(extractor="transformer", transformer_layers=1,
                              transformer_heads=2)
        losses = model.compute_losses(*batch(4))
        losses["total"].backward()
        assert np.isfinite(losses["total"].item())
