"""White-box tests of the trainer's document-augmentation machinery."""

import numpy as np
import pytest

from repro.core import OmniMatchConfig, OmniMatchTrainer
from repro.data import GeneratorConfig, cold_start_split, generate_domain_pair


@pytest.fixture(scope="module")
def world():
    dataset = generate_domain_pair(
        "books",
        "movies",
        GeneratorConfig(num_users=90, num_items_per_domain=40,
                        reviews_per_user_mean=5.0, seed=51),
    )
    split = cold_start_split(dataset, seed=0)
    return dataset, split


def make_trainer(world, **overrides):
    dataset, split = world
    base = dict(embed_dim=16, num_filters=4, kernel_sizes=(2, 3), invariant_dim=8,
                specific_dim=8, projection_dim=6, doc_len=24, vocab_size=300,
                epochs=1, early_stopping=False)
    base.update(overrides)
    return OmniMatchTrainer(dataset, split, OmniMatchConfig(**base))


class TestBatchArrays:
    def test_shapes_aligned(self, world):
        dataset, split = world
        trainer = make_trainer(world)
        batch = split.train_interactions(dataset)[:10]
        src, tgt, item, labels = trainer._batch_arrays(batch)
        assert src.shape == tgt.shape == item.shape == (10, 24)
        assert labels.shape == (10,)
        assert labels.dtype == np.int64

    def test_labels_zero_based(self, world):
        dataset, split = world
        trainer = make_trainer(world)
        batch = split.train_interactions(dataset)[:50]
        _, _, _, labels = trainer._batch_arrays(batch)
        assert labels.min() >= 0 and labels.max() <= 4

    def test_target_dropout_produces_empty_docs(self, world):
        dataset, split = world
        trainer = make_trainer(world, target_dropout_prob=1.0, aux_mix_prob=0.0)
        batch = split.train_interactions(dataset)[:10]
        _, tgt, _, _ = trainer._batch_arrays(batch)
        np.testing.assert_allclose(tgt, 0)

    def test_full_aux_mix_uses_auxiliary_docs(self, world):
        dataset, split = world
        trainer = make_trainer(world, target_dropout_prob=0.0, aux_mix_prob=1.0)
        batch = split.train_interactions(dataset)[:10]
        _, tgt, _, _ = trainer._batch_arrays(batch)
        for interaction, doc in zip(batch, tgt):
            expected = trainer._auxiliary_doc(interaction.user_id)
            np.testing.assert_array_equal(doc, expected)

    def test_no_augmentation_uses_real_docs(self, world):
        dataset, split = world
        trainer = make_trainer(world, target_dropout_prob=0.0, aux_mix_prob=0.0)
        batch = split.train_interactions(dataset)[:10]
        _, tgt, _, _ = trainer._batch_arrays(batch)
        for interaction, doc in zip(batch, tgt):
            np.testing.assert_array_equal(
                doc, trainer.store.user_target_doc(interaction.user_id)
            )

    def test_aux_disabled_never_mixes(self, world):
        dataset, split = world
        trainer = make_trainer(
            world, use_auxiliary_reviews=False, aux_mix_prob=1.0,
            target_dropout_prob=0.0,
        )
        batch = split.train_interactions(dataset)[:10]
        _, tgt, _, _ = trainer._batch_arrays(batch)
        for interaction, doc in zip(batch, tgt):
            np.testing.assert_array_equal(
                doc, trainer.store.user_target_doc(interaction.user_id)
            )

    def test_aux_doc_cached(self, world):
        dataset, split = world
        trainer = make_trainer(world)
        user = split.train_users[0]
        assert trainer._auxiliary_doc(user) is trainer._auxiliary_doc(user)


class TestFastPathEquivalence:
    """The vectorized gather must reproduce the per-sample legacy path."""

    def test_batch_arrays_match_legacy(self, world):
        dataset, split = world
        fast = make_trainer(world)
        legacy = make_trainer(world, legacy_path=True)
        batch = split.train_interactions(dataset)[:32]
        for fast_array, legacy_array in zip(
            fast._batch_arrays(batch), legacy._batch_arrays(batch)
        ):
            np.testing.assert_array_equal(fast_array, legacy_array)

    def test_rng_stream_matches_across_batches(self, world):
        # Same seed, several consecutive batches: the vectorized draws must
        # consume the RNG exactly like the per-sample scalar draws.
        dataset, split = world
        fast = make_trainer(world)
        legacy = make_trainer(world, legacy_path=True)
        interactions = split.train_interactions(dataset)
        for start in range(0, 96, 32):
            batch = interactions[start : start + 32]
            for fast_array, legacy_array in zip(
                fast._batch_arrays(batch), legacy._batch_arrays(batch)
            ):
                np.testing.assert_array_equal(fast_array, legacy_array)


class TestTrainEvalMode:
    def test_train_mode_restored_after_validation(self, world):
        # Regression: train mode was only restored on the early-stopping
        # branch, so a validation pass that leaves the model in eval mode
        # (the trainer must not rely on the predictor restoring it) silently
        # disabled dropout for every later epoch when early stopping is off.
        trainer = make_trainer(world, epochs=2, early_stopping=False, dropout=0.3)
        modes = []
        original = trainer.model.compute_losses

        def spy(*args, **kwargs):
            modes.append(trainer.model.training)
            return original(*args, **kwargs)

        def leaky_validation(result):
            trainer.model.eval()
            return 1.0

        trainer.model.compute_losses = spy
        trainer._validation_rmse = leaky_validation
        trainer.fit(validate_every=1)
        assert modes and all(modes)

    def test_model_in_eval_mode_after_fit(self, world):
        trainer = make_trainer(world, epochs=1)
        trainer.fit()
        assert not trainer.model.training


class TestTrainerErrors:
    def test_empty_train_set_raises(self, world):
        dataset, split = world
        trainer = make_trainer(world)
        # sabotage: a split whose train users have no target reviews
        from repro.data.split import ColdStartSplit

        bad_split = ColdStartSplit(
            train_users=("nonexistent-user",),
            valid_users=split.valid_users,
            test_users=split.test_users,
        )
        trainer.split = bad_split
        with pytest.raises(ValueError):
            trainer.fit()
